//! Whole-stack end-to-end tests through the umbrella crate: many
//! instances, interleaved scripts, generated topologies and a
//! repeat-until-converged property under random seeds.

use flowscript::prelude::*;
use flowscript::samples;
use proptest::prelude::*;

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

#[test]
fn many_concurrent_instances_of_different_scripts() {
    let mut sys = WorkflowSystem::builder().executors(4).seed(77).build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.register_script("si", samples::SERVICE_IMPACT, "serviceImpactApplication")
        .unwrap();

    sys.bind_fn("refPaymentAuthorisation", |ctx| {
        TaskBehavior::outcome("authorised").with_object(
            "paymentInfo",
            ObjectVal::text("PaymentInfo", ctx.input_text("order")),
        )
    });
    sys.bind_fn("refCheckStock", |ctx| {
        TaskBehavior::outcome("stockAvailable").with_object(
            "stockInfo",
            ObjectVal::text("StockInfo", ctx.input_text("order")),
        )
    });
    sys.bind_fn("refDispatch", |ctx| {
        TaskBehavior::outcome("dispatchCompleted").with_object(
            "dispatchNote",
            ObjectVal::text(
                "DispatchNote",
                format!("note-{}", ctx.input_text("stockInfo")),
            ),
        )
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
    sys.bind_fn("refAlarmCorrelator", |_| {
        TaskBehavior::outcome("foundFault").with_object("faultReport", text("FaultReport", "f"))
    });
    sys.bind_fn("refServiceImpactAnalysis", |_| {
        TaskBehavior::outcome("foundImpacts")
            .with_object("serviceImpactReports", text("ServiceImpactReports", "i"))
    });
    sys.bind_fn("refServiceImpactResolution", |_| {
        TaskBehavior::outcome("foundResolution")
            .with_object("resolutionReport", text("ResolutionReport", "r"))
    });

    for i in 0..10 {
        sys.start(
            &format!("order-{i}"),
            "order",
            "main",
            [("order", text("Order", &format!("o{i}")))],
        )
        .unwrap();
        sys.start(
            &format!("incident-{i}"),
            "si",
            "main",
            [("alarmsSource", text("AlarmsSource", &format!("a{i}")))],
        )
        .unwrap();
    }
    sys.run();
    for i in 0..10 {
        let order = sys.outcome(&format!("order-{i}")).expect("order completes");
        assert_eq!(order.name, "orderCompleted");
        assert_eq!(
            order.objects["dispatchNote"].as_text(),
            format!("note-o{i}")
        );
        let incident = sys.outcome(&format!("incident-{i}")).expect("si completes");
        assert_eq!(incident.name, "resolved");
    }
}

#[test]
fn wide_fan_out_fan_in_topology() {
    let width = 24;
    let script = flowscript::lang::builder::fan(width);
    let source = flowscript::lang::fmt::format_script(&script);
    let mut sys = WorkflowSystem::builder().executors(6).seed(78).build();
    sys.register_script("fan", &source, "root").unwrap();
    sys.bind_fn("refSource", |ctx| {
        TaskBehavior::outcome("done")
            .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
    });
    for i in 0..width {
        sys.bind_fn(
            &format!("refW{i}"),
            move |ctx: &flowscript::engine::InvokeCtx| {
                TaskBehavior::outcome("done").with_object(
                    "out",
                    ObjectVal::text("Data", format!("{}:{i}", ctx.input_text("in"))),
                )
            },
        );
    }
    sys.bind_fn("refJoin", |ctx| {
        let joined = ctx.inputs.len();
        TaskBehavior::outcome("done")
            .with_object("out", ObjectVal::text("Data", format!("{joined} joined")))
    });
    sys.start("f1", "fan", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    let outcome = sys.outcome("f1").expect("fan completes");
    assert_eq!(outcome.objects["out"].as_text(), format!("{width} joined"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The business trip converges for any bounded number of hotel
    /// failures and any seed — the Fig. 8 loop always terminates.
    #[test]
    fn business_trip_converges(seed: u64, failures in 0u32..6) {
        use std::cell::Cell;
        use std::rc::Rc;
        let mut sys = WorkflowSystem::builder().executors(4).seed(seed).build();
        sys.register_script("trip", samples::BUSINESS_TRIP, "tripReservation").unwrap();
        sys.bind_fn("refDataAcquisition", |_| {
            TaskBehavior::outcome("acquired")
                .with_object("tripData", ObjectVal::text("TripData", "t"))
        });
        sys.bind_fn("refAirlineQueryA", |_| TaskBehavior::outcome("notFound"));
        sys.bind_fn("refAirlineQueryB", |_| {
            TaskBehavior::outcome("found")
                .with_object("flightList", ObjectVal::text("FlightList", "fl"))
        });
        sys.bind_fn("refAirlineQueryC", |_| TaskBehavior::outcome("notFound"));
        sys.bind_fn("refFlightReservation", |_| {
            TaskBehavior::outcome("reserved")
                .with_object("plane", ObjectVal::text("Plane", "p"))
                .with_object("cost", ObjectVal::text("Cost", "c"))
        });
        let remaining = Rc::new(Cell::new(failures));
        sys.bind_fn("refHotelReservation", move |_| {
            if remaining.get() > 0 {
                remaining.set(remaining.get() - 1);
                TaskBehavior::outcome("failed")
            } else {
                TaskBehavior::outcome("hotelBooked")
                    .with_object("hotel", ObjectVal::text("Hotel", "h"))
            }
        });
        sys.bind_fn("refFlightCancellation", |_| TaskBehavior::outcome("cancelled"));
        sys.bind_fn("refPrintTickets", |_| {
            TaskBehavior::outcome("printed")
                .with_object("tickets", ObjectVal::text("Tickets", "tk"))
        });
        sys.start("t", "trip", "main", [("user", text("User", "u"))]).unwrap();
        sys.run();
        let outcome = sys.outcome("t");
        prop_assert!(outcome.is_some(), "status: {:?}", sys.status("t"));
        prop_assert_eq!(outcome.unwrap().name, "booked");
        prop_assert_eq!(sys.stats().repeats as u32, failures);
    }

    /// Chains of any small length complete and preserve dataflow order
    /// for any seed.
    #[test]
    fn chains_complete_for_any_seed(seed: u64, n in 1usize..12) {
        let script = flowscript::lang::builder::chain(n);
        let source = flowscript::lang::fmt::format_script(&script);
        let mut sys = WorkflowSystem::builder().executors(3).seed(seed).build();
        sys.register_script("chain", &source, "root").unwrap();
        for i in 0..n {
            sys.bind_fn(&format!("ref{i}"), move |ctx: &flowscript::engine::InvokeCtx| {
                TaskBehavior::outcome("done").with_object(
                    "out",
                    ObjectVal::text("Data", format!("{}{i}", ctx.input_text("in"))),
                )
            });
        }
        sys.start("c", "chain", "main", [("seed", text("Data", "·"))]).unwrap();
        sys.run();
        let expected: String =
            std::iter::once("·".to_string()).chain((0..n).map(|i| i.to_string())).collect();
        let outcome = sys.outcome("c");
        prop_assert!(outcome.is_some());
        prop_assert_eq!(outcome.unwrap().objects["out"].as_text(), expected);
    }
}
