//! Cross-crate integration: presumed-abort two-phase commit
//! (`flowscript-tx::dist`) driven over the simulated network
//! (`flowscript-sim`), with participant crashes, in-doubt recovery and
//! coordinator-decision durability.
//!
//! This exercises the substrate the paper's execution service would use
//! when its coordination objects are sharded over several nodes.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use flowscript::sim::{NodeId, SimDuration, SimTime, World};
use flowscript::tx::dist::{CoordAction, Coordinator, DistMsg};
use flowscript::tx::{ObjectUid, SharedStorage, StoreKey, TxId, TxManager};

/// A participant node: a TxManager plus its message handling.
struct Participant {
    mgr: TxManager<SharedStorage>,
}

struct Harness {
    coordinator: Coordinator,
    /// Durable coordinator decisions live in its own TxManager.
    coord_mgr: TxManager<SharedStorage>,
    done: Vec<(TxId, bool)>,
}

type Shared<T> = Rc<RefCell<T>>;

fn uid(s: &str) -> ObjectUid {
    ObjectUid::new(s)
}

/// The same name as a 2PC write-set key.
fn key(s: &str) -> StoreKey {
    StoreKey::Uid(ObjectUid::new(s))
}

/// Everything `setup` wires: coordinator node + harness, participant
/// nodes + state, and the participants' stable storages.
type Cluster = (
    NodeId,
    Shared<Harness>,
    Vec<NodeId>,
    Vec<Shared<Participant>>,
    Vec<SharedStorage>,
);

/// Wires a coordinator node and `n` participant nodes; returns handles.
fn setup(world: &mut World, n: usize) -> Cluster {
    let coord_node = world.add_node("2pc-coordinator");
    let coord_storage = SharedStorage::new();
    let harness = Rc::new(RefCell::new(Harness {
        coordinator: Coordinator::new(coord_node.index() as u32),
        coord_mgr: TxManager::open(coord_node.index() as u32, coord_storage).unwrap(),
        done: Vec::new(),
    }));

    let mut nodes = Vec::new();
    let mut participants = Vec::new();
    let mut storages = Vec::new();
    for i in 0..n {
        let node = world.add_node(format!("participant{i}"));
        let storage = SharedStorage::new();
        let participant = Rc::new(RefCell::new(Participant {
            mgr: TxManager::open(node.index() as u32, storage.clone()).unwrap(),
        }));
        nodes.push(node);
        participants.push(participant);
        storages.push(storage);
    }

    // Participant handlers: Prepare → vote; Decision → resolve + ack.
    for (i, &node) in nodes.iter().enumerate() {
        let participant = participants[i].clone();
        world.set_handler(node, move |world, envelope| {
            let Ok(msg) = flowscript::codec::from_bytes::<DistMsg>(&envelope.payload) else {
                return;
            };
            let mut participant = participant.borrow_mut();
            match msg {
                DistMsg::Prepare {
                    tx,
                    coordinator,
                    writes,
                } => {
                    let yes = participant
                        .mgr
                        .prepare_remote(tx, coordinator, writes)
                        .is_ok();
                    let vote = DistMsg::Vote {
                        tx,
                        from: envelope.dst.index() as u32,
                        yes,
                    };
                    let (src, dst) = (envelope.dst, envelope.src);
                    world.send(src, dst, flowscript::codec::to_bytes(&vote));
                }
                DistMsg::Decision { tx, commit } => {
                    participant.mgr.resolve_remote(tx, commit).unwrap();
                    let ack = DistMsg::Ack {
                        tx,
                        from: envelope.dst.index() as u32,
                    };
                    let (src, dst) = (envelope.dst, envelope.src);
                    world.send(src, dst, flowscript::codec::to_bytes(&ack));
                }
                _ => {}
            }
        });
    }

    // Coordinator handler: routes votes/acks/queries through the state
    // machine and performs the emitted actions.
    let harness2 = harness.clone();
    let node_table: BTreeMap<u32, NodeId> = nodes.iter().map(|n| (n.index() as u32, *n)).collect();
    world.set_handler(coord_node, move |world, envelope| {
        let Ok(msg) = flowscript::codec::from_bytes::<DistMsg>(&envelope.payload) else {
            return;
        };
        let actions = {
            let mut harness = harness2.borrow_mut();
            match msg {
                DistMsg::Vote { tx, from, yes } => harness.coordinator.on_vote(tx, from, yes),
                DistMsg::Ack { tx, from } => harness.coordinator.on_ack(tx, from),
                DistMsg::QueryOutcome { tx, from } => {
                    let persisted = harness.coord_mgr.coordinator_decision(tx);
                    harness.coordinator.on_query(tx, from, persisted)
                }
                _ => Vec::new(),
            }
        };
        perform(world, envelope.dst, &harness2, &node_table, actions);
    });

    (coord_node, harness, nodes, participants, storages)
}

/// Executes coordinator actions: persist-before-send ordering matters.
fn perform(
    world: &mut World,
    coord_node: NodeId,
    harness: &Shared<Harness>,
    node_table: &BTreeMap<u32, NodeId>,
    actions: Vec<CoordAction>,
) {
    for action in actions {
        match action {
            CoordAction::PersistDecision { tx, commit } => {
                harness
                    .borrow_mut()
                    .coord_mgr
                    .log_coordinator_decision(tx, commit)
                    .unwrap();
            }
            CoordAction::Send { to, msg } => {
                let node = node_table[&to];
                world.send(coord_node, node, flowscript::codec::to_bytes(&msg));
            }
            CoordAction::Done { tx, committed } => {
                harness.borrow_mut().done.push((tx, committed));
            }
        }
    }
}

#[test]
fn two_participants_commit_atomically() {
    let mut world = World::new(1);
    let (coord_node, harness, nodes, participants, _) = setup(&mut world, 2);
    let node_table: BTreeMap<u32, NodeId> = nodes.iter().map(|n| (n.index() as u32, *n)).collect();

    let tx = harness.borrow_mut().coord_mgr.mint_dist_tx();
    let writes = vec![
        (nodes[0].index() as u32, vec![(key("a"), Some(vec![1]))]),
        (nodes[1].index() as u32, vec![(key("b"), Some(vec![2]))]),
    ];
    let actions = harness.borrow_mut().coordinator.begin(tx, writes);
    perform(&mut world, coord_node, &harness, &node_table, actions);
    world.run();

    assert_eq!(harness.borrow().done, vec![(tx, true)]);
    assert_eq!(
        participants[0]
            .borrow()
            .mgr
            .read_committed::<u8>(&uid("a"))
            .unwrap(),
        Some(1)
    );
    assert_eq!(
        participants[1]
            .borrow()
            .mgr
            .read_committed::<u8>(&uid("b"))
            .unwrap(),
        Some(2)
    );
}

#[test]
fn conflicting_participant_vetoes_whole_transaction() {
    let mut world = World::new(2);
    let (coord_node, harness, nodes, participants, _) = setup(&mut world, 2);
    let node_table: BTreeMap<u32, NodeId> = nodes.iter().map(|n| (n.index() as u32, *n)).collect();

    // Participant 1 already holds a lock on `b` via a local transaction:
    // its prepare will fail and it votes no.
    let blocker = {
        let mut participant = participants[1].borrow_mut();
        let action = participant.mgr.begin();
        participant.mgr.write(&action, &uid("b"), &9u8).unwrap();
        action
    };

    let tx = harness.borrow_mut().coord_mgr.mint_dist_tx();
    let writes = vec![
        (nodes[0].index() as u32, vec![(key("a"), Some(vec![1]))]),
        (nodes[1].index() as u32, vec![(key("b"), Some(vec![2]))]),
    ];
    let actions = harness.borrow_mut().coordinator.begin(tx, writes);
    perform(&mut world, coord_node, &harness, &node_table, actions);
    world.run();

    assert_eq!(harness.borrow().done, vec![(tx, false)]);
    // Atomicity: neither write applied.
    assert_eq!(
        participants[0]
            .borrow()
            .mgr
            .read_committed::<u8>(&uid("a"))
            .unwrap(),
        None
    );
    assert_eq!(
        participants[1]
            .borrow()
            .mgr
            .read_committed::<u8>(&uid("b"))
            .unwrap(),
        None
    );
    participants[1].borrow_mut().mgr.abort(blocker);
}

#[test]
fn prepared_participant_crash_recovers_in_doubt_and_queries() {
    let mut world = World::new(3);
    let (coord_node, harness, nodes, participants, storages) = setup(&mut world, 2);
    let node_table: BTreeMap<u32, NodeId> = nodes.iter().map(|n| (n.index() as u32, *n)).collect();

    let tx = harness.borrow_mut().coord_mgr.mint_dist_tx();
    let writes = vec![
        (nodes[0].index() as u32, vec![(key("a"), Some(vec![1]))]),
        (nodes[1].index() as u32, vec![(key("b"), Some(vec![2]))]),
    ];
    let actions = harness.borrow_mut().coordinator.begin(tx, writes);
    perform(&mut world, coord_node, &harness, &node_table, actions);

    // Run just long enough for prepares+votes+decision persist, then
    // crash participant 1 before it can apply the decision.
    world.run_until(SimTime::from_nanos(350_000));
    world.crash(nodes[1]);
    world.run();

    // Participant 1 recovers from its log: the transaction is in doubt.
    let recovered = TxManager::open(nodes[1].index() as u32, storages[1].clone()).unwrap();
    let in_doubt = recovered.in_doubt();
    assert_eq!(in_doubt.len(), 1, "prepared tx must be in doubt");
    let (doubt_tx, coordinator_id) = in_doubt[0];
    assert_eq!(doubt_tx, tx);
    assert_eq!(coordinator_id, coord_node.index() as u32);

    // Re-install the recovered participant and restart the node.
    let participant = participants[1].clone();
    participant.borrow_mut().mgr = recovered;
    world.restart(nodes[1]);

    // It queries the coordinator, which answers from its durable record.
    let query = DistMsg::QueryOutcome {
        tx,
        from: nodes[1].index() as u32,
    };
    world.send(nodes[1], coord_node, flowscript::codec::to_bytes(&query));
    world.run();

    // The decision (commit, since both voted yes and the coordinator
    // persisted before sending) reached the recovered participant.
    assert_eq!(
        participants[1]
            .borrow()
            .mgr
            .read_committed::<u8>(&uid("b"))
            .unwrap(),
        Some(2),
        "in-doubt participant must learn the commit"
    );
    assert!(participants[1].borrow().mgr.in_doubt().is_empty());
}

#[test]
fn coordinator_timeout_aborts_unresponsive_vote() {
    let mut world = World::new(4);
    let (coord_node, harness, nodes, participants, _) = setup(&mut world, 2);
    let node_table: BTreeMap<u32, NodeId> = nodes.iter().map(|n| (n.index() as u32, *n)).collect();

    // Participant 1 is down before the prepare arrives.
    world.crash(nodes[1]);

    let tx = harness.borrow_mut().coord_mgr.mint_dist_tx();
    let writes = vec![
        (nodes[0].index() as u32, vec![(key("a"), Some(vec![1]))]),
        (nodes[1].index() as u32, vec![(key("b"), Some(vec![2]))]),
    ];
    let actions = harness.borrow_mut().coordinator.begin(tx, writes);
    perform(&mut world, coord_node, &harness, &node_table, actions);

    // Drive a timeout after one second of silence.
    let harness2 = harness.clone();
    let node_table2 = node_table.clone();
    world.schedule_after(SimDuration::from_secs(1), move |world| {
        let actions = harness2.borrow_mut().coordinator.on_timeout(tx);
        perform(world, coord_node, &harness2, &node_table2, actions);
    });
    // Participant 1 must come back up to receive (and ack) the abort.
    world.schedule_after(SimDuration::from_millis(1500), move |world| {
        world.restart(nodes[1]);
    });
    // Re-deliver the abort decision on a second timeout tick.
    let harness3 = harness.clone();
    let node_table3 = node_table.clone();
    world.schedule_after(SimDuration::from_secs(2), move |world| {
        let actions = harness3.borrow_mut().coordinator.on_timeout(tx);
        perform(world, coord_node, &harness3, &node_table3, actions);
    });
    world.run();

    assert_eq!(harness.borrow().done, vec![(tx, false)]);
    // Participant 0 prepared, then learned the abort: nothing applied,
    // nothing in doubt, lock released.
    let p0 = &participants[0];
    assert_eq!(
        p0.borrow().mgr.read_committed::<u8>(&uid("a")).unwrap(),
        None
    );
    assert!(p0.borrow().mgr.in_doubt().is_empty());
}
