//! Cross-crate language pipeline: text → parse → templates → sema →
//! schema → DOT, plus formatter canonicality, over the paper samples and
//! generated workloads.

use flowscript::lang::builder;
use flowscript::lang::dot;
use flowscript::lang::fmt::format_script;
use flowscript::lang::schema::compile_source;
use flowscript::lang::{parse, sema, template};
use flowscript::samples;
use proptest::prelude::*;

#[test]
fn samples_pass_the_entire_pipeline() {
    for (name, source) in samples::all() {
        let root = samples::root_of(name);
        let script = parse(source).unwrap_or_else(|d| panic!("{name}: {d}"));
        let expanded = template::expand(&script).unwrap();
        let checked = sema::check(&expanded).unwrap_or_else(|d| panic!("{name}: {d}"));
        let schema = flowscript::lang::schema::compile(&checked, root)
            .unwrap_or_else(|d| panic!("{name}: {d}"));
        let rendered = dot::render(&schema);
        assert!(rendered.contains(root), "{name} dot misses root");
        // Formatter canonicality.
        let formatted = format_script(&script);
        let reparsed = parse(&formatted).unwrap_or_else(|d| panic!("{name} reformat: {d}"));
        assert_eq!(format_script(&reparsed), formatted, "{name}");
        // The canonical form compiles to the same schema.
        let schema2 = compile_source(&formatted, root).unwrap();
        assert_eq!(schema, schema2, "{name}: schema differs after formatting");
    }
}

#[test]
fn generated_workloads_compile_at_scale() {
    for n in [1, 10, 100, 400] {
        let script = builder::chain(n);
        let checked = sema::check(&script).unwrap();
        let schema = flowscript::lang::schema::compile(&checked, "root").unwrap();
        assert_eq!(schema.leaf_count(), n);
    }
    for width in [1, 8, 64] {
        let script = builder::fan(width);
        let checked = sema::check(&script).unwrap();
        let schema = flowscript::lang::schema::compile(&checked, "root").unwrap();
        assert_eq!(schema.leaf_count(), width + 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any chain/fan size round-trips text → AST → text and compiles.
    #[test]
    fn builder_outputs_roundtrip(n in 1usize..40) {
        let script = builder::chain(n);
        let text = format_script(&script);
        let reparsed = parse(&text).unwrap();
        prop_assert_eq!(&script, &reparsed);
        let checked = sema::check(&reparsed).unwrap();
        let schema = flowscript::lang::schema::compile(&checked, "root").unwrap();
        prop_assert_eq!(schema.leaf_count(), n);
    }

    /// Mutated sample sources never panic the front end — they either
    /// parse or produce diagnostics.
    #[test]
    fn fuzzed_sources_never_panic(seed in 0usize..1000) {
        let (_, source) = samples::all()[seed % samples::all().len()];
        // Deterministic mutation: delete a slice of the source.
        let start = (seed * 37) % source.len();
        let end = (start + (seed * 13) % 40).min(source.len());
        let mut mutated = String::new();
        mutated.push_str(&source[..start]);
        mutated.push_str(&source[end..]);
        match parse(&mutated) {
            Ok(script) => {
                let _ = template::expand(&script).and_then(|e| {
                    sema::check(&e).map(|_| ())
                });
            }
            Err(diags) => {
                prop_assert!(diags.has_errors());
            }
        }
    }
}
