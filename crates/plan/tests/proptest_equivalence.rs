//! Plan/schema equivalence properties.
//!
//! The plan is only allowed to be a *faster* encoding of the schema,
//! never a different semantics. For randomly chosen scripts (the
//! paper's samples plus generated chains with alternative sources) and
//! randomly driven executions, the schema interpreter
//! (`flowscript_engine::deps`) and the plan evaluator
//! (`flowscript_plan::eval`) must agree at every step on:
//!
//! - which input set every task binds and with which objects,
//! - which scope outputs are satisfied and what they map,
//! - the final quiescent fact state (identical instance outcome).

use std::collections::BTreeMap;

use flowscript_core::ast::OutputKind;
use flowscript_core::samples;
use flowscript_core::schema::{compile_source, CompiledScope, CompiledTask, Schema, TaskBody};
use flowscript_engine::deps::{self, FactView, MemFacts};
use flowscript_engine::ObjectVal;
use flowscript_plan::{eval as plan_eval, Plan, PlanFacts, Probe};
use proptest::prelude::*;

struct PlanMemFacts<'a>(&'a MemFacts);

impl PlanFacts for PlanMemFacts<'_> {
    type Value = ObjectVal;

    fn fact_object(&self, probe: Probe<'_>, object: &str) -> Option<ObjectVal> {
        let fact = if probe.is_input {
            self.0.input_fact(probe.producer, probe.name)
        } else {
            self.0.output_fact(probe.producer, probe.name)
        };
        fact.and_then(|mut objects| objects.remove(object))
    }

    fn fact_fired(&self, probe: Probe<'_>) -> bool {
        if probe.is_input {
            self.0.input_fact(probe.producer, probe.name).is_some()
        } else {
            self.0.output_fact(probe.producer, probe.name).is_some()
        }
    }
}

/// A generated script: `n` chained stages, each with a fallback source
/// to the root input and an abort alternative — enough structure to
/// exercise alternatives, notifications and abort outcomes.
fn generated_script(n: usize) -> String {
    let mut source = String::from(
        r#"class Data;
taskclass Stage {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data }; abort outcome failed { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
"#,
    );
    for i in 0..n {
        let from = if i == 0 {
            "inputobject in from { seed of task root if input main }".to_string()
        } else {
            format!(
                "inputobject in from {{ out of task t{} if output done; seed of task root if input main }}",
                i - 1
            )
        };
        source.push_str(&format!(
            "    task t{i} of taskclass Stage {{\n        implementation {{ \"code\" is \"ref{i}\" }};\n        inputs {{ input main {{ {from} }} }}\n    }};\n"
        ));
    }
    source.push_str(&format!(
        "    outputs {{ outcome done {{ notification from {{ task t{} if output done }} }} }}\n}}\n",
        n.saturating_sub(1)
    ));
    source
}

fn pick_script(selector: usize, n: usize) -> (String, String) {
    let all = samples::all();
    if selector < all.len() {
        let (name, source) = all[selector];
        (source.to_string(), samples::root_of(name).to_string())
    } else {
        (generated_script(n.max(1)), "root".to_string())
    }
}

fn all_tasks(schema: &Schema) -> Vec<(String, &CompiledTask)> {
    fn walk<'a>(scope: &'a CompiledScope, path: &str, out: &mut Vec<(String, &'a CompiledTask)>) {
        for task in &scope.tasks {
            out.push((path.to_string(), task));
            if let TaskBody::Scope(inner) = &task.body {
                walk(inner, &format!("{path}/{}", task.name), out);
            }
        }
    }
    let mut out = Vec::new();
    walk(&schema.root, &schema.root.name, &mut out);
    out
}

fn all_scopes(schema: &Schema) -> Vec<(String, &CompiledScope)> {
    fn walk<'a>(scope: &'a CompiledScope, path: &str, out: &mut Vec<(String, &'a CompiledScope)>) {
        out.push((path.to_string(), scope));
        for task in &scope.tasks {
            if let TaskBody::Scope(inner) = &task.body {
                walk(inner, &format!("{path}/{}", task.name), out);
            }
        }
    }
    let mut out = Vec::new();
    walk(&schema.root, &schema.root.name, &mut out);
    out
}

/// Asserts both evaluators agree on every task's readiness and every
/// scope's satisfied outputs for the given fact state.
fn assert_equivalent(schema: &Schema, plan: &Plan, facts: &MemFacts) {
    let plan_facts = PlanMemFacts(facts);
    for (scope_path, task) in all_tasks(schema) {
        let path = format!("{scope_path}/{}", task.name);
        let task_id = plan
            .task_by_path(&path)
            .unwrap_or_else(|| panic!("plan lacks task {path}"));
        let schema_result = deps::eval_task_inputs(&scope_path, task, facts);
        let plan_result =
            plan_eval::eval_task_inputs(plan, task_id, &plan_facts).map(|(set, bound)| {
                (
                    plan.str(set).to_string(),
                    bound
                        .into_iter()
                        .map(|(name, value)| (plan.str(name).to_string(), value))
                        .collect::<BTreeMap<_, _>>(),
                )
            });
        assert_eq!(schema_result, plan_result, "task {path} readiness differs");
    }
    for (scope_path, scope) in all_scopes(schema) {
        let scope_id = plan.task_by_path(&scope_path).expect("scope in plan");
        let schema_outputs: Vec<(String, OutputKind, BTreeMap<String, ObjectVal>)> =
            deps::eval_scope_outputs(&scope_path, scope, facts)
                .into_iter()
                .map(|(output, objects)| (output.name.clone(), output.kind, objects))
                .collect();
        let plan_outputs: Vec<(String, OutputKind, BTreeMap<String, ObjectVal>)> =
            plan_eval::eval_scope_outputs(plan, scope_id, &plan_facts)
                .into_iter()
                .map(|(out_idx, mapped)| {
                    let output = &plan.outputs[out_idx];
                    (
                        plan.str(output.name).to_string(),
                        output.kind,
                        mapped
                            .into_iter()
                            .map(|(name, value)| (plan.str(name).to_string(), value))
                            .collect(),
                    )
                })
                .collect();
        assert_eq!(
            schema_outputs, plan_outputs,
            "scope {scope_path} outputs differ"
        );
    }
}

/// Drives one wavefront step using the schema interpreter as ground
/// truth. `choices` picks which declared output each leaf takes.
fn advance(schema: &Schema, facts: &mut MemFacts, choices: &[u8]) -> bool {
    let mut progressed = false;
    for (index, (scope_path, task)) in all_tasks(schema).into_iter().enumerate() {
        let path = format!("{scope_path}/{}", task.name);
        if let Some((set, bound)) = deps::eval_task_inputs(&scope_path, task, facts) {
            if facts.input_fact(&path, &set).is_none() {
                facts.add_input(path.clone(), set, bound);
                progressed = true;
            }
            if matches!(task.body, TaskBody::Leaf) {
                let class = schema.task_class(&task.class).expect("class exists");
                // Candidate completions: outcomes and aborts (repeat
                // outcomes would need incarnation resets the wavefront
                // model does not track).
                let candidates: Vec<_> = class
                    .outputs
                    .iter()
                    .filter(|o| matches!(o.kind, OutputKind::Outcome | OutputKind::AbortOutcome))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let choice = choices
                    .get(index % choices.len().max(1))
                    .copied()
                    .unwrap_or(0) as usize;
                let output = candidates[choice % candidates.len()];
                let already_done = candidates
                    .iter()
                    .any(|o| facts.output_fact(&path, &o.name).is_some());
                if !already_done {
                    // Publish only a (choice-driven) subset of the
                    // declared objects: facts that fired without some
                    // object exercise the "commit to the first fired
                    // alternative" semantics of AnyOf sources and
                    // unsatisfied slots.
                    let objects = output
                        .objects
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| (choice >> (j % 7)) & 1 == 0)
                        .map(|(_, o)| (o.name.clone(), ObjectVal::text(o.class.clone(), "v")))
                        .collect();
                    facts.add_output(path, output.name.clone(), objects);
                    progressed = true;
                }
            }
        }
    }
    for (scope_path, scope) in all_scopes(schema) {
        let satisfied: Vec<(String, BTreeMap<String, ObjectVal>)> =
            deps::eval_scope_outputs(&scope_path, scope, facts)
                .into_iter()
                .filter(|(output, _)| {
                    matches!(output.kind, OutputKind::Outcome | OutputKind::AbortOutcome)
                })
                .map(|(output, objects)| (output.name.clone(), objects))
                .collect();
        if let Some((name, objects)) = satisfied.into_iter().next() {
            if facts.output_fact(&scope_path, &name).is_none() {
                facts.add_output(scope_path.clone(), name, objects);
                progressed = true;
            }
        }
    }
    progressed
}

#[test]
fn plan_mirrors_schema_structure_for_all_samples() {
    for (name, source) in samples::all() {
        let schema = compile_source(source, samples::root_of(name)).unwrap();
        let plan = Plan::lower(&schema);
        assert_eq!(plan.task_paths(), schema.task_paths(), "{name}");
        assert_eq!(plan.leaf_count(), schema.leaf_count(), "{name}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both evaluators agree at every wavefront step of a randomly
    /// driven execution of a randomly chosen script, through to the
    /// identical quiescent outcome.
    #[test]
    fn plan_and_schema_evaluate_identically(
        selector in 0usize..7,
        n in 1usize..14,
        choices in proptest::collection::vec(any::<u8>(), 1..8),
        rounds in 1usize..24,
    ) {
        let (source, root) = pick_script(selector, n);
        let schema = compile_source(&source, &root).expect("script compiles");
        let plan = Plan::lower(&schema);

        let mut facts = MemFacts::new();
        assert_equivalent(&schema, &plan, &facts);

        // Bind the root's first input set with its declared objects.
        let root_class = schema.task_class(&schema.root.class).expect("root class");
        let set = &root_class.input_sets[0];
        facts.add_input(
            schema.root.name.clone(),
            set.name.clone(),
            set.objects
                .iter()
                .map(|o| (o.name.clone(), ObjectVal::text(o.class.clone(), "seed")))
                .collect::<BTreeMap<_, _>>(),
        );
        assert_equivalent(&schema, &plan, &facts);

        for _ in 0..rounds {
            let progressed = advance(&schema, &mut facts, &choices);
            assert_equivalent(&schema, &plan, &facts);
            if !progressed {
                break;
            }
        }
    }

    /// Lowering is deterministic: equal schemas lower to equal plans
    /// with equal fingerprints.
    #[test]
    fn lowering_is_deterministic(selector in 0usize..7, n in 1usize..14) {
        let (source, root) = pick_script(selector, n);
        let schema = compile_source(&source, &root).expect("script compiles");
        let plan1 = Plan::lower(&schema);
        let plan2 = Plan::lower(&schema);
        prop_assert_eq!(&plan1, &plan2);
        prop_assert_eq!(plan1.fingerprint, plan2.fingerprint);
    }
}
