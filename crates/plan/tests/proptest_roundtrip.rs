//! Codec properties for plans, mirroring
//! `crates/codec/tests/proptest_roundtrip.rs`: every lowered plan
//! round-trips bit-exactly through `Encode`/`Decode`, encoding is
//! deterministic, and arbitrary bytes never panic the decoder.

use flowscript_core::samples;
use flowscript_core::schema::compile_source;
use flowscript_plan::Plan;
use proptest::prelude::*;

/// A small parameterised fan script so sizes vary beyond the samples.
fn fan_script(width: usize) -> String {
    let mut source = String::from(
        r#"class Data;
taskclass Worker {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
"#,
    );
    for i in 0..width {
        source.push_str(&format!(
            "    task w{i} of taskclass Worker {{\n        implementation {{ \"code\" is \"refW{i}\" }};\n        inputs {{ input main {{ inputobject in from {{ seed of task root if input main }} }} }}\n    }};\n"
        ));
    }
    source.push_str("    outputs { outcome done { notification from {");
    for i in 0..width {
        let sep = if i + 1 < width { ";" } else { "" };
        source.push_str(&format!(" task w{i} if output done{sep}"));
    }
    source.push_str(" } } }\n}\n");
    source
}

fn pick_plan(selector: usize, width: usize) -> Plan {
    let all = samples::all();
    let schema = if selector < all.len() {
        let (name, source) = all[selector];
        compile_source(source, samples::root_of(name)).unwrap()
    } else {
        compile_source(&fan_script(width.max(1)), "root").unwrap()
    };
    Plan::lower(&schema)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plans_roundtrip_through_codec(selector in 0usize..7, width in 1usize..20) {
        let plan = pick_plan(selector, width);
        let bytes = flowscript_codec::to_bytes(&plan);
        let back: Plan = flowscript_codec::from_bytes(&bytes).expect("decode");
        prop_assert_eq!(&back, &plan);
        // Re-encoding the decoded plan is byte-identical (stable wire
        // form for the WAL and the repository RPC).
        prop_assert_eq!(flowscript_codec::to_bytes(&back), bytes);
    }

    #[test]
    fn plan_decoding_never_panics_on_noise(bytes: Vec<u8>) {
        let _ = flowscript_codec::from_bytes::<Plan>(&bytes);
    }

    #[test]
    fn truncated_plans_fail_cleanly(selector in 0usize..7, cut in 1usize..64) {
        let plan = pick_plan(selector, 3);
        let bytes = flowscript_codec::to_bytes(&plan);
        let cut = cut.min(bytes.len());
        let torn = &bytes[..bytes.len() - cut];
        // Must either error or decode to a (different) valid value —
        // never panic. Trailing-byte checks make success impossible
        // here in practice, but the property we need is "no panic".
        let _ = flowscript_codec::from_bytes::<Plan>(torn);
    }
}
