//! The plan data structures and their binary codec.

use std::collections::BTreeMap;

use flowscript_codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};
use flowscript_core::ast::OutputKind;

/// Index into the plan's interned string table.
pub type StrId = u32;
/// Index into [`Plan::tasks`].
pub type TaskId = u32;
/// Index into [`Plan::classes`].
pub type ClassId = u32;

/// A half-open `[start, end)` index range into one of the plan's flat
/// pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Range32 {
    /// First index.
    pub start: u32,
    /// One past the last index.
    pub end: u32,
}

impl Range32 {
    /// An empty range.
    pub const EMPTY: Range32 = Range32 { start: 0, end: 0 };

    /// Number of elements covered (0 for an inverted range, which only
    /// a corrupted decode can produce — see [`Plan::is_well_formed`]).
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start) as usize
    }

    /// Whether the range covers nothing.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterates the covered indices as `usize`.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        (self.start as usize)..(self.end as usize)
    }

    /// The covered `usize` range (for slicing pools).
    pub fn as_range(&self) -> std::ops::Range<usize> {
        (self.start as usize)..(self.end as usize)
    }
}

/// One task instance (leaf or compound scope) in DFS pre-order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanTask {
    /// Instance name within its scope.
    pub name: StrId,
    /// Absolute slash-joined path (e.g. `trip/booking/queryB`).
    pub path: StrId,
    /// The task's class.
    pub class: ClassId,
    /// Enclosing scope's task id (`None` for the root).
    pub parent: Option<TaskId>,
    /// Bound input sets, in binding order (range into [`Plan::sets`]).
    pub sets: Range32,
    /// Implementation pairs (range into [`Plan::impl_kv`]).
    pub impl_kv: Range32,
    /// Direct children (range into [`Plan::child_pool`]); empty for
    /// leaves.
    pub children: Range32,
    /// All descendants: task ids `self+1 .. subtree_end` (DFS pre-order
    /// makes the subtree contiguous).
    pub subtree_end: TaskId,
    /// Output mappings (range into [`Plan::outputs`]); empty for leaves.
    pub outputs: Range32,
    /// Consumers that may become ready when this task publishes a fact
    /// (range into [`Plan::rdep_pool`]).
    pub rdeps: Range32,
    /// Whether this is a compound scope.
    pub is_scope: bool,
    /// Derived: the parsed `"priority"` implementation pair (0 when
    /// absent or unparsable), precomputed so the worklist's hot path
    /// never re-scans `impl_kv`. Not wire content — recomputed at
    /// lowering and after decode, excluded from the codec so
    /// fingerprints are unaffected.
    pub priority: i64,
}

/// A bound input set of a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanInputSet {
    /// Set name.
    pub name: StrId,
    /// Dataflow slots (range into [`Plan::slots`]).
    pub slots: Range32,
    /// Notification dependencies (range into [`Plan::notes`]).
    pub notes: Range32,
    /// Bitmask with one bit per requirement (slots first, then
    /// notifications); all-ones for 64+ requirements, where the
    /// availability mask's bit 63 aggregates the tail conjunction
    /// (see `eval::satisfaction_mask`). A set is satisfied iff the
    /// availability mask equals this.
    pub required_mask: u64,
}

impl PlanInputSet {
    /// Number of requirements (slots + notifications).
    pub fn requirement_count(&self) -> usize {
        self.slots.len() + self.notes.len()
    }
}

/// A dataflow slot: one required object and its ordered alternatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSlot {
    /// Object name in the consumer's signature.
    pub name: StrId,
    /// The object's class.
    pub class: StrId,
    /// Ordered alternative sources (range into [`Plan::sources`]);
    /// first available wins.
    pub sources: Range32,
    /// Derived: the ordinal of `name` among the declared objects of the
    /// fact this slot's value is stored under — the owning task's class
    /// input-set signature for binding slots, the owning scope's class
    /// output for mapping slots (`None` when the name is undeclared
    /// there, so the value lands in the fact's presence record). This
    /// is the dense sub-key the engine writes bound objects at. Not
    /// wire content — recomputed at lowering and after decode, excluded
    /// from the codec so fingerprints are unaffected.
    pub obj_ordinal: Option<u32>,
}

/// A notification dependency: satisfied when any source fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNotification {
    /// Ordered alternative sources (range into [`Plan::sources`]).
    pub sources: Range32,
}

/// When a source's fact becomes available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanCond {
    /// The producer bound the named input set.
    Input(StrId),
    /// The producer produced the named output.
    Output(StrId),
    /// The producer produced any of these outputs (range into
    /// [`Plan::any_pool`]).
    AnyOf(Range32),
}

/// One resolved alternative source with its producer's absolute path
/// precomputed (no per-probe string building).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanSource {
    /// Absolute path of the producing task (the enclosing scope itself
    /// for `self` sources).
    pub producer_path: StrId,
    /// Producing task's id, when it exists in the plan (a reconfig can
    /// reference tasks that were since removed).
    pub producer: Option<TaskId>,
    /// The object taken (`None` for notifications).
    pub object: Option<StrId>,
    /// Availability condition.
    pub cond: PlanCond,
    /// Derived: the ordinal of `object` among the declared objects of
    /// the probed fact (the producer class's input-set signature for
    /// [`PlanCond::Input`], its output declaration for
    /// [`PlanCond::Output`]; per-candidate ordinals of `AnyOf`
    /// conditions live in [`Plan::any_obj_ordinals`]). `None` when the
    /// producer is gone, the source is a notification, or the object is
    /// undeclared there. A fact store with per-object sub-keys probes
    /// `(producer, fact, ordinal)` as one dense key. Not wire content —
    /// recomputed at lowering and after decode.
    pub object_ordinal: Option<u32>,
}

/// One output mapping of a compound scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanOutput {
    /// Output name.
    pub name: StrId,
    /// Output kind.
    pub kind: OutputKind,
    /// Object mappings (range into [`Plan::slots`]).
    pub slots: Range32,
    /// Notification conditions (range into [`Plan::notes`]).
    pub notes: Range32,
}

/// A resolved task class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanClass {
    /// Class name.
    pub name: StrId,
    /// Input-set signatures in declaration order (range into
    /// [`Plan::class_sets`]).
    pub sets: Range32,
    /// Possible outputs (range into [`Plan::class_outputs`]).
    pub outputs: Range32,
    /// Whether the class declares an abort outcome.
    pub atomic: bool,
}

/// An input-set signature of a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanClassSet {
    /// Set name.
    pub name: StrId,
    /// Required objects (range into [`Plan::class_objects`]).
    pub objects: Range32,
}

/// A declared output of a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanClassOutput {
    /// Output name.
    pub name: StrId,
    /// Output kind.
    pub kind: OutputKind,
    /// Objects produced with it (range into [`Plan::class_objects`]).
    pub objects: Range32,
}

/// An object signature: name and class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanObjectSig {
    /// Object reference name.
    pub name: StrId,
    /// Its object class.
    pub class: StrId,
}

/// A compiled, executable workflow plan. Built by [`Plan::lower`];
/// addressed exclusively through `u32` ids into flat pools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Interned strings; every `StrId` indexes here.
    pub strings: Vec<String>,
    /// Object class names declared by the script.
    pub object_classes: Vec<StrId>,
    /// Task classes, sorted by name.
    pub classes: Vec<PlanClass>,
    /// Pool: class input-set signatures.
    pub class_sets: Vec<PlanClassSet>,
    /// Pool: class outputs.
    pub class_outputs: Vec<PlanClassOutput>,
    /// Pool: class object signatures.
    pub class_objects: Vec<PlanObjectSig>,
    /// Tasks in DFS pre-order; id 0 is the root scope.
    pub tasks: Vec<PlanTask>,
    /// Pool: bound input sets.
    pub sets: Vec<PlanInputSet>,
    /// Pool: dataflow slots (input sets and output mappings share it).
    pub slots: Vec<PlanSlot>,
    /// Pool: notification dependencies.
    pub notes: Vec<PlanNotification>,
    /// Pool: alternative sources.
    pub sources: Vec<PlanSource>,
    /// Pool: candidate output names of `AnyOf` conditions.
    pub any_pool: Vec<StrId>,
    /// Derived, parallel to [`Plan::any_pool`]: the owning source's
    /// object ordinal within each candidate output's declared objects
    /// (see [`PlanSource::object_ordinal`]). Not wire content —
    /// recomputed at lowering and after decode.
    pub any_obj_ordinals: Vec<Option<u32>>,
    /// Pool: compound output mappings.
    pub outputs: Vec<PlanOutput>,
    /// Pool: implementation key/value pairs.
    pub impl_kv: Vec<(StrId, StrId)>,
    /// Pool: direct-children task ids.
    pub child_pool: Vec<TaskId>,
    /// Pool: reverse-dependency consumer task ids.
    pub rdep_pool: Vec<TaskId>,
    /// Absolute path → task id.
    pub path_index: BTreeMap<String, TaskId>,
    /// Class name → class id.
    pub class_index: BTreeMap<String, ClassId>,
    /// FNV-64 fingerprint of the structural content (strings + pools),
    /// for cheap identity checks between repository and coordinator.
    pub fingerprint: u64,
}

impl Plan {
    /// The interned string behind `id`.
    ///
    /// # Panics
    ///
    /// Panics on an id not produced for this plan.
    pub fn str(&self, id: StrId) -> &str {
        &self.strings[id as usize]
    }

    /// The task behind `id`.
    ///
    /// # Panics
    ///
    /// Panics on an id not produced for this plan.
    pub fn task(&self, id: TaskId) -> &PlanTask {
        &self.tasks[id as usize]
    }

    /// The root scope task.
    pub fn root(&self) -> &PlanTask {
        &self.tasks[0]
    }

    /// Resolves an absolute slash path to a task id.
    pub fn task_by_path(&self, path: &str) -> Option<TaskId> {
        self.path_index.get(path).copied()
    }

    /// The class of a task.
    pub fn class_of(&self, task: &PlanTask) -> &PlanClass {
        &self.classes[task.class as usize]
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<&PlanClass> {
        self.class_index
            .get(name)
            .map(|id| &self.classes[*id as usize])
    }

    /// A class's declared output by name.
    pub fn class_output(&self, class: &PlanClass, name: &str) -> Option<&PlanClassOutput> {
        self.class_outputs[class.outputs.as_range()]
            .iter()
            .find(|output| self.str(output.name) == name)
    }

    /// A class's input-set signature by name.
    pub fn class_set(&self, class: &PlanClass, name: &str) -> Option<&PlanClassSet> {
        self.class_sets[class.sets.as_range()]
            .iter()
            .find(|set| self.str(set.name) == name)
    }

    /// The ordinal of a class's declared output by name — the dense
    /// `item` component of a structured fact key. Stable across tasks
    /// of the same class and across plan re-lowerings that leave the
    /// class declaration untouched.
    pub fn class_output_ordinal(&self, class: &PlanClass, name: &str) -> Option<u32> {
        self.class_outputs[class.outputs.as_range()]
            .iter()
            .position(|output| self.str(output.name) == name)
            .map(|i| i as u32)
    }

    /// [`Plan::class_output_ordinal`] comparing by interned id instead
    /// of by string (both ids must come from this plan's intern table).
    pub fn class_output_ordinal_by_id(&self, class: &PlanClass, name: StrId) -> Option<u32> {
        self.class_outputs[class.outputs.as_range()]
            .iter()
            .position(|output| output.name == name)
            .map(|i| i as u32)
    }

    /// The ordinal of a class's input-set signature by name — the dense
    /// `item` component of an input-binding fact key.
    pub fn class_set_ordinal(&self, class: &PlanClass, name: &str) -> Option<u32> {
        self.class_sets[class.sets.as_range()]
            .iter()
            .position(|set| self.str(set.name) == name)
            .map(|i| i as u32)
    }

    /// [`Plan::class_set_ordinal`] comparing by interned id.
    pub fn class_set_ordinal_by_id(&self, class: &PlanClass, name: StrId) -> Option<u32> {
        self.class_sets[class.sets.as_range()]
            .iter()
            .position(|set| set.name == name)
            .map(|i| i as u32)
    }

    /// The declared objects of a class's input-set signature, by
    /// interned set name (bounds-tolerant: callers run before
    /// [`Plan::is_well_formed`] during decode).
    fn decl_objects_of_set(&self, class: &PlanClass, name: StrId) -> Option<Range32> {
        self.class_sets
            .get(class.sets.as_range())?
            .iter()
            .find(|set| set.name == name)
            .map(|set| set.objects)
    }

    /// The declared objects of a class's output, by interned name.
    fn decl_objects_of_output(&self, class: &PlanClass, name: StrId) -> Option<Range32> {
        self.class_outputs
            .get(class.outputs.as_range())?
            .iter()
            .find(|output| output.name == name)
            .map(|output| output.objects)
    }

    /// The ordinal of an interned object name within a declared-objects
    /// range (the dense sub-key component of a per-object fact store).
    pub fn object_ordinal_in(&self, objects: Range32, name: StrId) -> Option<u32> {
        self.class_objects
            .get(objects.as_range())?
            .iter()
            .position(|sig| sig.name == name)
            .map(|i| i as u32)
    }

    /// The declared objects of the fact `(task, kind, item)` — the
    /// input-binding fact of `task`'s `item`-th declared input set when
    /// `is_input`, its `item`-th declared output's fact otherwise.
    /// Per-object fact stores name sub-keys by position in this range.
    pub fn fact_decl_objects(&self, task: TaskId, is_input: bool, item: u32) -> Option<Range32> {
        let task = self.tasks.get(task as usize)?;
        let class = self.classes.get(task.class as usize)?;
        if is_input {
            self.class_sets
                .get(class.sets.as_range())?
                .get(item as usize)
                .map(|set| set.objects)
        } else {
            self.class_outputs
                .get(class.outputs.as_range())?
                .get(item as usize)
                .map(|output| output.objects)
        }
    }

    /// Direct children of a scope task, in declaration order.
    pub fn children(&self, id: TaskId) -> &[TaskId] {
        &self.child_pool[self.tasks[id as usize].children.as_range()]
    }

    /// All descendants of a task (DFS pre-order, contiguous).
    pub fn subtree(&self, id: TaskId) -> impl Iterator<Item = TaskId> + '_ {
        (id + 1)..self.tasks[id as usize].subtree_end
    }

    /// Tasks and scopes that may become ready when `producer` publishes
    /// a fact (precomputed reverse dependency edges).
    pub fn consumers(&self, producer: TaskId) -> &[TaskId] {
        &self.rdep_pool[self.tasks[producer as usize].rdeps.as_range()]
    }

    /// The task's implementation pairs as owned strings (dispatch path).
    pub fn implementation_map(&self, task: &PlanTask) -> BTreeMap<String, String> {
        self.impl_kv[task.impl_kv.as_range()]
            .iter()
            .map(|(k, v)| (self.str(*k).to_string(), self.str(*v).to_string()))
            .collect()
    }

    /// The task's `code` implementation binding, if present.
    pub fn code(&self, task: &PlanTask) -> Option<&str> {
        self.impl_kv[task.impl_kv.as_range()]
            .iter()
            .find(|(k, _)| self.str(*k) == "code")
            .map(|(_, v)| self.str(*v))
    }

    /// The task's declared scheduling priority (`"priority"` in the
    /// implementation clause): higher-priority ready tasks dispatch
    /// first when contending for busy executors. Absent or unparsable
    /// values mean 0, so undeclared tasks keep declaration order.
    pub fn task_priority(&self, id: TaskId) -> i64 {
        self.tasks[id as usize].priority
    }

    /// Recomputes one task's derived priority from its implementation
    /// pairs. Bounds-tolerant rather than panicking: decode runs this
    /// *before* the caller gets to [`Plan::is_well_formed`], so a
    /// hostile range must degrade to the default.
    fn derived_priority(&self, task: &PlanTask) -> i64 {
        self.impl_kv
            .get(task.impl_kv.as_range())
            .into_iter()
            .flatten()
            .find(|(k, _)| self.strings.get(*k as usize).map(String::as_str) == Some("priority"))
            .and_then(|(_, v)| self.strings.get(*v as usize)?.parse().ok())
            .unwrap_or(0)
    }

    /// Fills every task's derived [`PlanTask::priority`] (lowering and
    /// decode both end with this).
    pub(crate) fn finish_priorities(&mut self) {
        let priorities: Vec<i64> = self
            .tasks
            .iter()
            .map(|task| self.derived_priority(task))
            .collect();
        for (task, priority) in self.tasks.iter_mut().zip(priorities) {
            task.priority = priority;
        }
    }

    /// Interns every dependency source's and every dataflow slot's
    /// object name to its dense declared-object ordinal
    /// ([`PlanSource::object_ordinal`], [`Plan::any_obj_ordinals`],
    /// [`PlanSlot::obj_ordinal`]). Lowering and decode both end with
    /// this; like the priorities it is bounds-tolerant, because decode
    /// runs it before the caller gets to [`Plan::is_well_formed`].
    pub(crate) fn finish_object_ordinals(&mut self) {
        let mut src_ordinals: Vec<Option<u32>> = vec![None; self.sources.len()];
        let mut any_ordinals: Vec<Option<u32>> = vec![None; self.any_pool.len()];
        for (idx, source) in self.sources.iter().enumerate() {
            let (Some(producer), Some(object)) = (source.producer, source.object) else {
                continue;
            };
            let Some(class) = self
                .tasks
                .get(producer as usize)
                .and_then(|task| self.classes.get(task.class as usize))
            else {
                continue;
            };
            match &source.cond {
                PlanCond::Input(set) => {
                    src_ordinals[idx] = self
                        .decl_objects_of_set(class, *set)
                        .and_then(|objects| self.object_ordinal_in(objects, object));
                }
                PlanCond::Output(output) => {
                    src_ordinals[idx] = self
                        .decl_objects_of_output(class, *output)
                        .and_then(|objects| self.object_ordinal_in(objects, object));
                }
                PlanCond::AnyOf(range) => {
                    for cand in range.iter().filter(|&c| c < self.any_pool.len()) {
                        let name = self.any_pool[cand];
                        any_ordinals[cand] = self
                            .decl_objects_of_output(class, name)
                            .and_then(|objects| self.object_ordinal_in(objects, object));
                    }
                }
            }
        }
        for (source, ordinal) in self.sources.iter_mut().zip(src_ordinals) {
            source.object_ordinal = ordinal;
        }
        self.any_obj_ordinals = any_ordinals;

        // Slots: binding slots resolve against the owning task's class
        // input-set signature, mapping slots against the owning scope's
        // class output declaration.
        let mut slot_ordinals: Vec<Option<u32>> = vec![None; self.slots.len()];
        for task in &self.tasks {
            let Some(class) = self.classes.get(task.class as usize) else {
                continue;
            };
            for set in self.sets.get(task.sets.as_range()).into_iter().flatten() {
                let decl = self.decl_objects_of_set(class, set.name);
                for slot_idx in set.slots.iter().filter(|&s| s < self.slots.len()) {
                    slot_ordinals[slot_idx] = decl.and_then(|objects| {
                        self.object_ordinal_in(objects, self.slots[slot_idx].name)
                    });
                }
            }
            for output in self
                .outputs
                .get(task.outputs.as_range())
                .into_iter()
                .flatten()
            {
                let decl = self.decl_objects_of_output(class, output.name);
                for slot_idx in output.slots.iter().filter(|&s| s < self.slots.len()) {
                    slot_ordinals[slot_idx] = decl.and_then(|objects| {
                        self.object_ordinal_in(objects, self.slots[slot_idx].name)
                    });
                }
            }
        }
        for (slot, ordinal) in self.slots.iter_mut().zip(slot_ordinals) {
            slot.obj_ordinal = ordinal;
        }
    }

    /// Slash-joined paths of every task instance, depth first (same
    /// order and content as `Schema::task_paths`).
    pub fn task_paths(&self) -> Vec<String> {
        self.tasks[1..]
            .iter()
            .map(|task| self.str(task.path).to_string())
            .collect()
    }

    /// Number of leaf (externally implemented) tasks.
    pub fn leaf_count(&self) -> usize {
        self.tasks.iter().filter(|t| !t.is_scope).count()
    }

    /// Structural well-formedness of a (possibly untrusted, freshly
    /// decoded) plan: every id and range stays inside its pool, so
    /// evaluation cannot index out of bounds. `Decode` checks wire
    /// syntax only; callers accepting plans from outside (the
    /// coordinator taking a repository-served plan, WAL recovery) must
    /// check this before executing and fall back to local lowering
    /// otherwise.
    pub fn is_well_formed(&self) -> bool {
        let strings = self.strings.len() as u32;
        let str_ok = |id: StrId| id < strings;
        let range_ok = |r: Range32, pool: usize| r.start <= r.end && (r.end as usize) <= pool;
        let task_ok = |id: TaskId| (id as usize) < self.tasks.len();
        let source_ok = |source: &PlanSource| {
            str_ok(source.producer_path)
                && source.producer.is_none_or(task_ok)
                && source.object.is_none_or(str_ok)
                && match &source.cond {
                    PlanCond::Input(set) => str_ok(*set),
                    PlanCond::Output(output) => str_ok(*output),
                    PlanCond::AnyOf(range) => {
                        range_ok(*range, self.any_pool.len())
                            && self.any_pool[range.as_range()].iter().copied().all(str_ok)
                    }
                }
        };
        !self.tasks.is_empty()
            && self.tasks.iter().enumerate().all(|(id, task)| {
                str_ok(task.name)
                    && str_ok(task.path)
                    && (task.class as usize) < self.classes.len()
                    && task.parent.is_none_or(task_ok)
                    && range_ok(task.sets, self.sets.len())
                    && range_ok(task.impl_kv, self.impl_kv.len())
                    && range_ok(task.children, self.child_pool.len())
                    && task.subtree_end > id as TaskId
                    && (task.subtree_end as usize) <= self.tasks.len()
                    && range_ok(task.outputs, self.outputs.len())
                    && range_ok(task.rdeps, self.rdep_pool.len())
            })
            && self.sets.iter().all(|set| {
                str_ok(set.name)
                    && range_ok(set.slots, self.slots.len())
                    && range_ok(set.notes, self.notes.len())
            })
            && self.slots.iter().all(|slot| {
                str_ok(slot.name)
                    && str_ok(slot.class)
                    && range_ok(slot.sources, self.sources.len())
            })
            && self
                .notes
                .iter()
                .all(|note| range_ok(note.sources, self.sources.len()))
            && self.sources.iter().all(source_ok)
            && self.any_pool.iter().copied().all(str_ok)
            && self.outputs.iter().all(|output| {
                str_ok(output.name)
                    && range_ok(output.slots, self.slots.len())
                    && range_ok(output.notes, self.notes.len())
            })
            && self.classes.iter().all(|class| {
                str_ok(class.name)
                    && range_ok(class.sets, self.class_sets.len())
                    && range_ok(class.outputs, self.class_outputs.len())
            })
            && self
                .class_sets
                .iter()
                .all(|set| str_ok(set.name) && range_ok(set.objects, self.class_objects.len()))
            && self.class_outputs.iter().all(|output| {
                str_ok(output.name) && range_ok(output.objects, self.class_objects.len())
            })
            && self
                .class_objects
                .iter()
                .all(|sig| str_ok(sig.name) && str_ok(sig.class))
            && self.impl_kv.iter().all(|(k, v)| str_ok(*k) && str_ok(*v))
            && self.child_pool.iter().copied().all(task_ok)
            && self.rdep_pool.iter().copied().all(task_ok)
            && self.object_classes.iter().copied().all(str_ok)
            && self.path_index.values().copied().all(task_ok)
            && self
                .class_index
                .values()
                .all(|id| (*id as usize) < self.classes.len())
    }

    /// Whether the stored fingerprint matches a recomputation over the
    /// structural content — detects tampered or corrupted plans whose
    /// bytes still decode.
    pub fn verify_fingerprint(&self) -> bool {
        crate::lower::fingerprint_of(self) == self.fingerprint
    }
}

// ---------------------------------------------------------------------
// Binary codec.
// ---------------------------------------------------------------------

fn kind_discriminant(kind: OutputKind) -> u8 {
    match kind {
        OutputKind::Outcome => 0,
        OutputKind::AbortOutcome => 1,
        OutputKind::RepeatOutcome => 2,
        OutputKind::Mark => 3,
    }
}

fn kind_from(discriminant: u8) -> Result<OutputKind, CodecError> {
    Ok(match discriminant {
        0 => OutputKind::Outcome,
        1 => OutputKind::AbortOutcome,
        2 => OutputKind::RepeatOutcome,
        3 => OutputKind::Mark,
        other => {
            return Err(CodecError::InvalidDiscriminant {
                ty: "OutputKind",
                value: u64::from(other),
            })
        }
    })
}

impl Encode for Range32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_var_u64(u64::from(self.start));
        w.put_var_u64(u64::from(self.end));
    }
}

impl Decode for Range32 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let start = r.get_var_u64()? as u32;
        let end = r.get_var_u64()? as u32;
        Ok(Range32 { start, end })
    }
}

impl Encode for PlanTask {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.name);
        w.put_u32(self.path);
        w.put_u32(self.class);
        self.parent.encode(w);
        self.sets.encode(w);
        self.impl_kv.encode(w);
        self.children.encode(w);
        w.put_u32(self.subtree_end);
        self.outputs.encode(w);
        self.rdeps.encode(w);
        w.put_bool(self.is_scope);
    }
}

impl Decode for PlanTask {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PlanTask {
            name: r.get_u32()?,
            path: r.get_u32()?,
            class: r.get_u32()?,
            parent: Option::decode(r)?,
            sets: Range32::decode(r)?,
            impl_kv: Range32::decode(r)?,
            children: Range32::decode(r)?,
            subtree_end: r.get_u32()?,
            outputs: Range32::decode(r)?,
            rdeps: Range32::decode(r)?,
            is_scope: r.get_bool()?,
            // Derived, not wire content: Plan::decode recomputes it.
            priority: 0,
        })
    }
}

impl Encode for PlanInputSet {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.name);
        self.slots.encode(w);
        self.notes.encode(w);
        w.put_u64(self.required_mask);
    }
}

impl Decode for PlanInputSet {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PlanInputSet {
            name: r.get_u32()?,
            slots: Range32::decode(r)?,
            notes: Range32::decode(r)?,
            required_mask: r.get_u64()?,
        })
    }
}

impl Encode for PlanSlot {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.name);
        w.put_u32(self.class);
        self.sources.encode(w);
    }
}

impl Decode for PlanSlot {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PlanSlot {
            name: r.get_u32()?,
            class: r.get_u32()?,
            sources: Range32::decode(r)?,
            // Derived, not wire content: Plan::decode recomputes it.
            obj_ordinal: None,
        })
    }
}

impl Encode for PlanNotification {
    fn encode(&self, w: &mut ByteWriter) {
        self.sources.encode(w);
    }
}

impl Decode for PlanNotification {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PlanNotification {
            sources: Range32::decode(r)?,
        })
    }
}

impl Encode for PlanCond {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            PlanCond::Input(set) => {
                w.put_u8(0);
                w.put_u32(*set);
            }
            PlanCond::Output(output) => {
                w.put_u8(1);
                w.put_u32(*output);
            }
            PlanCond::AnyOf(range) => {
                w.put_u8(2);
                range.encode(w);
            }
        }
    }
}

impl Decode for PlanCond {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(match r.get_u8()? {
            0 => PlanCond::Input(r.get_u32()?),
            1 => PlanCond::Output(r.get_u32()?),
            2 => PlanCond::AnyOf(Range32::decode(r)?),
            other => {
                return Err(CodecError::InvalidDiscriminant {
                    ty: "PlanCond",
                    value: u64::from(other),
                })
            }
        })
    }
}

impl Encode for PlanSource {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.producer_path);
        self.producer.encode(w);
        self.object.encode(w);
        self.cond.encode(w);
    }
}

impl Decode for PlanSource {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PlanSource {
            producer_path: r.get_u32()?,
            producer: Option::decode(r)?,
            object: Option::decode(r)?,
            cond: PlanCond::decode(r)?,
            // Derived, not wire content: Plan::decode recomputes it.
            object_ordinal: None,
        })
    }
}

impl Encode for PlanOutput {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.name);
        w.put_u8(kind_discriminant(self.kind));
        self.slots.encode(w);
        self.notes.encode(w);
    }
}

impl Decode for PlanOutput {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PlanOutput {
            name: r.get_u32()?,
            kind: kind_from(r.get_u8()?)?,
            slots: Range32::decode(r)?,
            notes: Range32::decode(r)?,
        })
    }
}

impl Encode for PlanClass {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.name);
        self.sets.encode(w);
        self.outputs.encode(w);
        w.put_bool(self.atomic);
    }
}

impl Decode for PlanClass {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PlanClass {
            name: r.get_u32()?,
            sets: Range32::decode(r)?,
            outputs: Range32::decode(r)?,
            atomic: r.get_bool()?,
        })
    }
}

impl Encode for PlanClassSet {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.name);
        self.objects.encode(w);
    }
}

impl Decode for PlanClassSet {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PlanClassSet {
            name: r.get_u32()?,
            objects: Range32::decode(r)?,
        })
    }
}

impl Encode for PlanClassOutput {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.name);
        w.put_u8(kind_discriminant(self.kind));
        self.objects.encode(w);
    }
}

impl Decode for PlanClassOutput {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PlanClassOutput {
            name: r.get_u32()?,
            kind: kind_from(r.get_u8()?)?,
            objects: Range32::decode(r)?,
        })
    }
}

impl Encode for PlanObjectSig {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(self.name);
        w.put_u32(self.class);
    }
}

impl Decode for PlanObjectSig {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(PlanObjectSig {
            name: r.get_u32()?,
            class: r.get_u32()?,
        })
    }
}

impl Encode for Plan {
    fn encode(&self, w: &mut ByteWriter) {
        self.strings.encode(w);
        self.object_classes.encode(w);
        self.classes.encode(w);
        self.class_sets.encode(w);
        self.class_outputs.encode(w);
        self.class_objects.encode(w);
        self.tasks.encode(w);
        self.sets.encode(w);
        self.slots.encode(w);
        self.notes.encode(w);
        self.sources.encode(w);
        self.any_pool.encode(w);
        self.outputs.encode(w);
        self.impl_kv.encode(w);
        self.child_pool.encode(w);
        self.rdep_pool.encode(w);
        self.path_index.encode(w);
        self.class_index.encode(w);
        w.put_u64(self.fingerprint);
    }
}

impl Decode for Plan {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mut plan = Plan {
            strings: Vec::decode(r)?,
            object_classes: Vec::decode(r)?,
            classes: Vec::decode(r)?,
            class_sets: Vec::decode(r)?,
            class_outputs: Vec::decode(r)?,
            class_objects: Vec::decode(r)?,
            tasks: Vec::decode(r)?,
            sets: Vec::decode(r)?,
            slots: Vec::decode(r)?,
            notes: Vec::decode(r)?,
            sources: Vec::decode(r)?,
            any_pool: Vec::decode(r)?,
            // Derived, not wire content: recomputed below.
            any_obj_ordinals: Vec::new(),
            outputs: Vec::decode(r)?,
            impl_kv: Vec::decode(r)?,
            child_pool: Vec::decode(r)?,
            rdep_pool: Vec::decode(r)?,
            path_index: BTreeMap::decode(r)?,
            class_index: BTreeMap::decode(r)?,
            fingerprint: r.get_u64()?,
        };
        plan.finish_priorities();
        plan.finish_object_ordinals();
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order_plan() -> Plan {
        let schema = flowscript_core::schema::compile_source(
            flowscript_core::samples::ORDER_PROCESSING,
            "processOrderApplication",
        )
        .unwrap();
        Plan::lower(&schema)
    }

    #[test]
    fn lowered_plans_are_well_formed_and_fingerprinted() {
        let plan = order_plan();
        assert!(plan.is_well_formed());
        assert!(plan.verify_fingerprint());
    }

    #[test]
    fn lowering_interns_object_ordinals() {
        let plan = order_plan();
        // Every dataflow source that survives to a live producer has its
        // probed object interned to a declared ordinal; notifications
        // never do.
        for source in &plan.sources {
            match (&source.cond, source.object, source.producer) {
                (PlanCond::AnyOf(_), _, _) => {}
                (_, Some(_), Some(_)) => assert!(
                    source.object_ordinal.is_some(),
                    "unresolved ordinal for {}",
                    plan.str(source.producer_path)
                ),
                (_, None, _) => assert_eq!(source.object_ordinal, None),
                _ => {}
            }
        }
        assert_eq!(plan.any_obj_ordinals.len(), plan.any_pool.len());
        // Binding/mapping slots intern too, and the ordinal names the
        // same object the declaration does.
        for slot in &plan.slots {
            let ordinal = slot.obj_ordinal.expect("slot names a declared object");
            let _ = ordinal;
        }
        // A decoded plan recomputes identical ordinals.
        let decoded =
            flowscript_codec::from_bytes::<Plan>(&flowscript_codec::to_bytes(&plan)).unwrap();
        assert_eq!(decoded, plan);
    }

    #[test]
    fn fact_decl_objects_names_sub_keys() {
        let plan = order_plan();
        let check = plan
            .task_by_path("processOrderApplication/checkStock")
            .unwrap();
        let class = plan.class_of(plan.task(check));
        let item = plan.class_output_ordinal(class, "stockAvailable").unwrap();
        let objects = plan.fact_decl_objects(check, false, item).unwrap();
        let names: Vec<&str> = objects
            .iter()
            .map(|i| plan.str(plan.class_objects[i].name))
            .collect();
        assert_eq!(names, vec!["stockInfo"]);
        // Out-of-range queries degrade to None instead of panicking.
        assert_eq!(plan.fact_decl_objects(check, false, 10_000), None);
        assert_eq!(plan.fact_decl_objects(10_000, true, 0), None);
    }

    #[test]
    fn corruption_is_detected_not_panicked_on() {
        // Out-of-range string id.
        let mut plan = order_plan();
        plan.tasks[2].name = plan.strings.len() as StrId + 7;
        assert!(!plan.is_well_formed());

        // Inverted range (would underflow a naive len / panic a slice).
        let mut plan = order_plan();
        plan.sets[0].slots = Range32 { start: 5, end: 2 };
        assert_eq!(plan.sets[0].slots.len(), 0);
        assert!(!plan.is_well_formed());

        // Range running past its pool.
        let mut plan = order_plan();
        plan.tasks[1].sets.end = plan.sets.len() as u32 + 1;
        assert!(!plan.is_well_formed());

        // Tampered content with a stale fingerprint.
        let mut plan = order_plan();
        plan.strings[0] = "tampered".to_string();
        assert!(!plan.verify_fingerprint());
    }

    #[test]
    fn decoded_noise_fails_validation_cleanly() {
        // A syntactically decodable but structurally bogus plan.
        let plan = Plan {
            strings: vec!["a".into()],
            object_classes: vec![9],
            classes: Vec::new(),
            class_sets: Vec::new(),
            class_outputs: Vec::new(),
            class_objects: Vec::new(),
            tasks: Vec::new(),
            sets: Vec::new(),
            slots: Vec::new(),
            notes: Vec::new(),
            sources: Vec::new(),
            any_pool: Vec::new(),
            any_obj_ordinals: Vec::new(),
            outputs: Vec::new(),
            impl_kv: Vec::new(),
            child_pool: Vec::new(),
            rdep_pool: Vec::new(),
            path_index: std::collections::BTreeMap::new(),
            class_index: std::collections::BTreeMap::new(),
            fingerprint: 0,
        };
        assert!(!plan.is_well_formed());
    }
}
