//! Lowering: `Schema` → [`Plan`].
//!
//! One pass interns every name, flattens the scope tree into DFS
//! pre-order, precomputes absolute producer paths for every dependency
//! source, then back-links reverse dependency edges.

use std::collections::BTreeMap;

use flowscript_core::schema::{
    CompiledCond, CompiledInputSet, CompiledNotification, CompiledObjectSlot, CompiledScope,
    CompiledSource, CompiledTask, Schema, TaskBody,
};

use crate::ir::{
    ClassId, Plan, PlanClass, PlanClassOutput, PlanClassSet, PlanCond, PlanInputSet,
    PlanNotification, PlanObjectSig, PlanOutput, PlanSlot, PlanSource, PlanTask, Range32, StrId,
    TaskId,
};

#[derive(Default)]
struct Interner {
    strings: Vec<String>,
    lookup: BTreeMap<String, StrId>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> StrId {
        if let Some(id) = self.lookup.get(s) {
            return *id;
        }
        let id = self.strings.len() as StrId;
        self.strings.push(s.to_string());
        self.lookup.insert(s.to_string(), id);
        id
    }
}

struct Lowerer {
    interner: Interner,
    plan: Plan,
}

impl Plan {
    /// Lowers a compiled schema into a dense execution plan.
    ///
    /// Lowering is total for any schema the front end accepts: unknown
    /// classes or unresolvable sources were already rejected by
    /// `schema::compile`.
    pub fn lower(schema: &Schema) -> Plan {
        let mut lowerer = Lowerer {
            interner: Interner::default(),
            plan: Plan {
                strings: Vec::new(),
                object_classes: Vec::new(),
                classes: Vec::new(),
                class_sets: Vec::new(),
                class_outputs: Vec::new(),
                class_objects: Vec::new(),
                tasks: Vec::new(),
                sets: Vec::new(),
                slots: Vec::new(),
                notes: Vec::new(),
                sources: Vec::new(),
                any_pool: Vec::new(),
                any_obj_ordinals: Vec::new(),
                outputs: Vec::new(),
                impl_kv: Vec::new(),
                child_pool: Vec::new(),
                rdep_pool: Vec::new(),
                path_index: BTreeMap::new(),
                class_index: BTreeMap::new(),
                fingerprint: 0,
            },
        };
        lowerer.lower_classes(schema);
        lowerer.lower_root(&schema.root);
        lowerer.link_rdeps();
        let mut plan = lowerer.plan;
        plan.strings = lowerer.interner.strings;
        plan.finish_priorities();
        plan.finish_object_ordinals();
        plan.fingerprint = fingerprint_of(&plan);
        plan
    }
}

impl Lowerer {
    fn lower_classes(&mut self, schema: &Schema) {
        for class in &schema.classes {
            let id = self.interner.intern(class);
            self.plan.object_classes.push(id);
        }
        for (name, info) in &schema.task_classes {
            let sets_start = self.plan.class_sets.len() as u32;
            for set in &info.input_sets {
                let objects = self.lower_object_sigs(&set.objects);
                let name = self.interner.intern(&set.name);
                self.plan.class_sets.push(PlanClassSet { name, objects });
            }
            let sets = Range32 {
                start: sets_start,
                end: self.plan.class_sets.len() as u32,
            };
            let outputs_start = self.plan.class_outputs.len() as u32;
            for output in &info.outputs {
                let objects = self.lower_object_sigs(&output.objects);
                let name = self.interner.intern(&output.name);
                self.plan.class_outputs.push(PlanClassOutput {
                    name,
                    kind: output.kind,
                    objects,
                });
            }
            let outputs = Range32 {
                start: outputs_start,
                end: self.plan.class_outputs.len() as u32,
            };
            let class_id = self.plan.classes.len() as ClassId;
            let name_id = self.interner.intern(name);
            self.plan.classes.push(PlanClass {
                name: name_id,
                sets,
                outputs,
                atomic: info.atomic,
            });
            self.plan.class_index.insert(name.clone(), class_id);
        }
    }

    fn lower_object_sigs(&mut self, sigs: &[flowscript_core::schema::ObjectInfo]) -> Range32 {
        let start = self.plan.class_objects.len() as u32;
        for sig in sigs {
            let name = self.interner.intern(&sig.name);
            let class = self.interner.intern(&sig.class);
            self.plan.class_objects.push(PlanObjectSig { name, class });
        }
        Range32 {
            start,
            end: self.plan.class_objects.len() as u32,
        }
    }

    fn class_id(&self, name: &str) -> ClassId {
        // `schema::compile` guarantees every referenced class exists;
        // tolerate absent ones (defensive) by pointing past the end.
        self.plan
            .class_index
            .get(name)
            .copied()
            .unwrap_or(self.plan.classes.len() as ClassId)
    }

    fn lower_root(&mut self, root: &CompiledScope) {
        let name = self.interner.intern(&root.name);
        let class = self.class_id(&root.class);
        self.plan.tasks.push(PlanTask {
            name,
            path: name,
            class,
            parent: None,
            sets: Range32::EMPTY,
            impl_kv: Range32::EMPTY,
            children: Range32::EMPTY,
            subtree_end: 1,
            outputs: Range32::EMPTY,
            rdeps: Range32::EMPTY,
            is_scope: true,
            priority: 0, // derived; filled by finish_priorities
        });
        self.plan.path_index.insert(root.name.clone(), 0);
        self.lower_scope_body(0, root, &root.name.clone());
    }

    /// Lowers a scope's constituents and output mappings into the task
    /// at `scope_id` (whose `name`/`path`/`class`/`sets` were already
    /// filled by the caller).
    fn lower_scope_body(&mut self, scope_id: TaskId, scope: &CompiledScope, scope_path: &str) {
        // Constituents: reserve one slot per child in DFS pre-order.
        let mut child_ids = Vec::with_capacity(scope.tasks.len());
        for task in &scope.tasks {
            let child_id = self.lower_task(scope_id, task, scope_path);
            child_ids.push(child_id);
        }
        let children = self.push_children(&child_ids);
        // Output mappings are evaluated against the scope's own path.
        let outputs_start = self.plan.outputs.len() as u32;
        for output in &scope.outputs {
            let slots = self.lower_slots(&output.objects, scope_path);
            let notes = self.lower_notes(&output.notifications, scope_path);
            let name = self.interner.intern(&output.name);
            self.plan.outputs.push(PlanOutput {
                name,
                kind: output.kind,
                slots,
                notes,
            });
        }
        let outputs_end = self.plan.outputs.len() as u32;
        let subtree_end = self.plan.tasks.len() as TaskId;
        let task = &mut self.plan.tasks[scope_id as usize];
        task.children = children;
        task.outputs = Range32 {
            start: outputs_start,
            end: outputs_end,
        };
        task.subtree_end = subtree_end;
    }

    fn lower_task(&mut self, parent: TaskId, task: &CompiledTask, scope_path: &str) -> TaskId {
        let path = format!("{scope_path}/{}", task.name);
        let name = self.interner.intern(&task.name);
        let path_id = self.interner.intern(&path);
        let class = self.class_id(&task.class);
        // The task's own input sets are evaluated against the
        // *enclosing* scope's path.
        let sets = self.lower_input_sets(&task.input_sets, scope_path);
        let impl_start = self.plan.impl_kv.len() as u32;
        for (key, value) in &task.implementation {
            let key = self.interner.intern(key);
            let value = self.interner.intern(value);
            self.plan.impl_kv.push((key, value));
        }
        let impl_kv = Range32 {
            start: impl_start,
            end: self.plan.impl_kv.len() as u32,
        };
        let id = self.plan.tasks.len() as TaskId;
        self.plan.tasks.push(PlanTask {
            name,
            path: path_id,
            class,
            parent: Some(parent),
            sets,
            impl_kv,
            children: Range32::EMPTY,
            subtree_end: id + 1,
            outputs: Range32::EMPTY,
            rdeps: Range32::EMPTY,
            is_scope: matches!(task.body, TaskBody::Scope(_)),
            priority: 0, // derived; filled by finish_priorities
        });
        self.plan.path_index.insert(path.clone(), id);
        if let TaskBody::Scope(inner) = &task.body {
            self.lower_scope_body(id, inner, &path);
        }
        id
    }

    fn lower_input_sets(&mut self, sets: &[CompiledInputSet], scope_path: &str) -> Range32 {
        // Slots and notes are appended per set, then the set records its
        // ranges; sets themselves must stay contiguous per task, so
        // lower slot/note pools first and sets after.
        let mut lowered = Vec::with_capacity(sets.len());
        for set in sets {
            let slots = self.lower_slots(&set.objects, scope_path);
            let notes = self.lower_notes(&set.notifications, scope_path);
            let name = self.interner.intern(&set.name);
            lowered.push(PlanInputSet {
                name,
                slots,
                notes,
                required_mask: required_mask(slots.len() + notes.len()),
            });
        }
        let start = self.plan.sets.len() as u32;
        self.plan.sets.extend(lowered);
        Range32 {
            start,
            end: self.plan.sets.len() as u32,
        }
    }

    fn lower_slots(&mut self, slots: &[CompiledObjectSlot], scope_path: &str) -> Range32 {
        let mut lowered = Vec::with_capacity(slots.len());
        for slot in slots {
            let sources = self.lower_sources(&slot.sources, scope_path);
            let name = self.interner.intern(&slot.name);
            let class = self.interner.intern(&slot.class);
            lowered.push(PlanSlot {
                name,
                class,
                sources,
                obj_ordinal: None, // derived; filled by finish_object_ordinals
            });
        }
        let start = self.plan.slots.len() as u32;
        self.plan.slots.extend(lowered);
        Range32 {
            start,
            end: self.plan.slots.len() as u32,
        }
    }

    fn lower_notes(&mut self, notes: &[CompiledNotification], scope_path: &str) -> Range32 {
        let mut lowered = Vec::with_capacity(notes.len());
        for note in notes {
            let sources = self.lower_sources(&note.sources, scope_path);
            lowered.push(PlanNotification { sources });
        }
        let start = self.plan.notes.len() as u32;
        self.plan.notes.extend(lowered);
        Range32 {
            start,
            end: self.plan.notes.len() as u32,
        }
    }

    fn lower_sources(&mut self, sources: &[CompiledSource], scope_path: &str) -> Range32 {
        let start = self.plan.sources.len() as u32;
        for source in sources {
            let producer_path = if source.is_self {
                scope_path.to_string()
            } else {
                format!("{scope_path}/{}", source.task)
            };
            let cond = match &source.cond {
                CompiledCond::Input(set) => PlanCond::Input(self.interner.intern(set)),
                CompiledCond::Output(output) => PlanCond::Output(self.interner.intern(output)),
                CompiledCond::AnyOf(outputs) => {
                    let pool_start = self.plan.any_pool.len() as u32;
                    for output in outputs {
                        let id = self.interner.intern(output);
                        self.plan.any_pool.push(id);
                    }
                    PlanCond::AnyOf(Range32 {
                        start: pool_start,
                        end: self.plan.any_pool.len() as u32,
                    })
                }
            };
            let producer_path_id = self.interner.intern(&producer_path);
            let object = source.object.as_ref().map(|o| self.interner.intern(o));
            self.plan.sources.push(PlanSource {
                producer_path: producer_path_id,
                // Resolved in `link_rdeps` once every task id exists.
                producer: None,
                object,
                cond,
                object_ordinal: None, // derived; filled by finish_object_ordinals
            });
        }
        Range32 {
            start,
            end: self.plan.sources.len() as u32,
        }
    }

    fn push_children(&mut self, child_ids: &[TaskId]) -> Range32 {
        let start = self.plan.child_pool.len() as u32;
        self.plan.child_pool.extend_from_slice(child_ids);
        Range32 {
            start,
            end: self.plan.child_pool.len() as u32,
        }
    }

    /// Resolves every source's producer id and builds the reverse
    /// dependency edges (producer → consumers to re-check).
    fn link_rdeps(&mut self) {
        // Source index → consuming task (the task whose input sets, or
        // whose scope outputs, the source belongs to).
        let mut consumer_of_source: Vec<Option<TaskId>> = vec![None; self.plan.sources.len()];
        let mark = |consumer_of_source: &mut Vec<Option<TaskId>>,
                    plan: &Plan,
                    slots: Range32,
                    notes: Range32,
                    consumer: TaskId| {
            for slot_idx in slots.iter() {
                for src_idx in plan.slots[slot_idx].sources.iter() {
                    consumer_of_source[src_idx] = Some(consumer);
                }
            }
            for note_idx in notes.iter() {
                for src_idx in plan.notes[note_idx].sources.iter() {
                    consumer_of_source[src_idx] = Some(consumer);
                }
            }
        };
        for id in 0..self.plan.tasks.len() as TaskId {
            let task = &self.plan.tasks[id as usize];
            let (sets, outputs) = (task.sets, task.outputs);
            for set_idx in sets.iter() {
                let (slots, notes) = {
                    let set = &self.plan.sets[set_idx];
                    (set.slots, set.notes)
                };
                mark(&mut consumer_of_source, &self.plan, slots, notes, id);
            }
            for out_idx in outputs.iter() {
                let (slots, notes) = {
                    let output = &self.plan.outputs[out_idx];
                    (output.slots, output.notes)
                };
                mark(&mut consumer_of_source, &self.plan, slots, notes, id);
            }
        }
        // Resolve producers and collect edges.
        let mut edges: Vec<Vec<TaskId>> = vec![Vec::new(); self.plan.tasks.len()];
        for (src_idx, consumer) in consumer_of_source.iter().enumerate() {
            let producer_path = self.plan.sources[src_idx].producer_path;
            let producer = self
                .plan
                .path_index
                .get(self.interner.strings[producer_path as usize].as_str())
                .copied();
            self.plan.sources[src_idx].producer = producer;
            if let (Some(producer), Some(consumer)) = (producer, consumer) {
                edges[producer as usize].push(*consumer);
            }
        }
        for (producer, mut consumers) in edges.into_iter().enumerate() {
            consumers.sort_unstable();
            consumers.dedup();
            let start = self.plan.rdep_pool.len() as u32;
            self.plan.rdep_pool.extend(consumers);
            self.plan.tasks[producer].rdeps = Range32 {
                start,
                end: self.plan.rdep_pool.len() as u32,
            };
        }
    }
}

/// One bit per requirement, saturated past 64.
fn required_mask(requirements: usize) -> u64 {
    if requirements >= 64 {
        u64::MAX
    } else {
        (1u64 << requirements) - 1
    }
}

/// FNV-64 over the structural content (everything but the fingerprint
/// field itself).
pub(crate) fn fingerprint_of(plan: &Plan) -> u64 {
    let mut unstamped = plan.clone();
    unstamped.fingerprint = 0;
    let bytes = flowscript_codec::to_bytes(&unstamped);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
