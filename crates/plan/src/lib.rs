#![warn(missing_docs)]
//! Compiled execution plans: a dense, index-based IR lowered from
//! [`flowscript_core::schema::Schema`].
//!
//! The schema is the right shape for diagnostics and reconfiguration —
//! hierarchical, name-keyed, close to the source text — but a hostile
//! shape for the coordinator's hot loop: every dispatch decision walks
//! nested `Vec`s by string comparison and rebuilds `scope/task` path
//! strings per probe. Following REL's split between fault-tolerance
//! *specification* and compact runtime *configuration* (De Florio &
//! Deconinck) and the check-once/execute-lowered component model of
//! Griffin et al., this crate lowers a validated schema **once** into a
//! [`Plan`]:
//!
//! - every task (leaf or compound scope) is a `u32` [`TaskId`] into one
//!   flat, DFS-pre-ordered `Vec` — a scope's descendants are a
//!   contiguous id range, so subtree cancellation/reset is a linear
//!   scan,
//! - all names (task paths, input sets, outputs, objects, classes) are
//!   interned [`StrId`]s; absolute producer paths are precomputed per
//!   dependency source, so readiness probes never format strings,
//! - input sets carry precomputed satisfaction bitmasks
//!   ([`PlanInputSet::required_mask`]) for cheap partial-readiness
//!   introspection,
//! - reverse dependency edges ([`Plan::consumers`]) record, per
//!   producer task, which tasks and scopes may become ready when it
//!   publishes a fact,
//! - the whole plan implements `flowscript_codec::{Encode, Decode}`, so
//!   it persists through the existing frame/WAL machinery and the
//!   repository can serve compiled plans to coordinators.
//!
//! [`eval`] evaluates input-set satisfaction and compound output
//! mappings off the plan with semantics identical to
//! `flowscript_engine::deps` (property-tested for equivalence in
//! `tests/`).
//!
//! # Examples
//!
//! ```
//! use flowscript_core::schema::compile_source;
//! use flowscript_plan::Plan;
//!
//! let schema = compile_source(
//!     flowscript_core::samples::ORDER_PROCESSING,
//!     "processOrderApplication",
//! )?;
//! let plan = Plan::lower(&schema);
//! assert_eq!(plan.task_paths(), schema.task_paths());
//! let dispatch = plan.task_by_path("processOrderApplication/dispatch").unwrap();
//! assert_eq!(plan.str(plan.task(dispatch).name), "dispatch");
//! // Round-trips through the binary codec.
//! let bytes = flowscript_codec::to_bytes(&plan);
//! assert_eq!(flowscript_codec::from_bytes::<Plan>(&bytes).unwrap(), plan);
//! # Ok::<(), flowscript_core::Diagnostics>(())
//! ```

pub mod eval;
mod ir;
mod lower;

pub use eval::{PlanFacts, Probe, Worklist};
pub use ir::{
    ClassId, Plan, PlanClass, PlanClassOutput, PlanClassSet, PlanCond, PlanInputSet,
    PlanNotification, PlanObjectSig, PlanOutput, PlanSlot, PlanSource, PlanTask, Range32, StrId,
    TaskId,
};
