//! Plan-based dependency evaluation.
//!
//! Semantics are identical to `flowscript_engine::deps` (property-tested
//! against it): an input set is satisfied when every object slot has an
//! available source and every notification has fired; alternatives are
//! tried in declaration order; the first-declared satisfied input set
//! wins; compound outputs are evaluated in declaration order and an
//! empty mapping never fires. The difference is mechanical: every
//! producer path is a precomputed interned string, so a readiness probe
//! is id arithmetic plus fact lookups — no string formatting, no scope
//! tree walking.

use crate::ir::{Plan, PlanCond, PlanInputSet, PlanOutput, PlanSlot, StrId, TaskId};

/// Bound objects: `(slot name id, value)` pairs in declaration order.
pub type Bound<F> = Vec<(StrId, <F as PlanFacts>::Value)>;

/// Read access to published facts, keyed by absolute producer path.
///
/// Mirrors the engine's `FactView`, but asks for one object at a time:
/// an implementation *may* fetch just the requested entry. (The
/// engine's tx-backed view still decodes the whole fact record and
/// extracts one entry — teaching the store partial reads is a ROADMAP
/// item; the plan's win here is eliminating the per-probe path
/// formatting and scope walking around these calls.)
pub trait PlanFacts {
    /// The object value type (the engine's `ObjectVal`).
    type Value;

    /// The named object of an output fact, if that fact was published
    /// and carries the object.
    fn output_object(&self, producer: &str, output: &str, object: &str) -> Option<Self::Value>;

    /// The named object of an input-binding fact.
    fn input_object(&self, producer: &str, set: &str, object: &str) -> Option<Self::Value>;

    /// Whether an output fact exists.
    fn output_fired(&self, producer: &str, output: &str) -> bool;

    /// Whether an input-binding fact exists.
    fn input_fired(&self, producer: &str, set: &str) -> bool;
}

/// Resolves one slot: the first available alternative's value.
pub fn resolve_slot<F: PlanFacts>(plan: &Plan, slot: &PlanSlot, facts: &F) -> Option<F::Value> {
    for src_idx in slot.sources.iter() {
        let source = &plan.sources[src_idx];
        let producer = plan.str(source.producer_path);
        let Some(object) = source.object else {
            continue;
        };
        let object = plan.str(object);
        let value = match &source.cond {
            PlanCond::Input(set) => facts.input_object(producer, plan.str(*set), object),
            PlanCond::Output(output) => facts.output_object(producer, plan.str(*output), object),
            // Reference semantics (deps::resolve_object_source): the
            // first *fired* candidate is committed to, even when that
            // fact does not carry the object — later candidates must
            // not be consulted.
            PlanCond::AnyOf(candidates) => candidates
                .iter()
                .map(|cand_idx| plan.str(plan.any_pool[cand_idx]))
                .find(|candidate| facts.output_fired(producer, candidate))
                .and_then(|candidate| facts.output_object(producer, candidate, object)),
        };
        if value.is_some() {
            return value;
        }
    }
    None
}

/// Whether any source of a notification has fired.
pub fn notification_fired<F: PlanFacts>(
    plan: &Plan,
    sources: crate::ir::Range32,
    facts: &F,
) -> bool {
    sources.iter().any(|src_idx| {
        let source = &plan.sources[src_idx];
        let producer = plan.str(source.producer_path);
        match &source.cond {
            PlanCond::Input(set) => facts.input_fired(producer, plan.str(*set)),
            PlanCond::Output(output) => facts.output_fired(producer, plan.str(*output)),
            PlanCond::AnyOf(candidates) => candidates
                .iter()
                .any(|cand_idx| facts.output_fired(producer, plan.str(plan.any_pool[cand_idx]))),
        }
    })
}

/// Tries to satisfy one input set; `Some(bound (name, value) pairs)` on
/// success (slot declaration order).
pub fn eval_input_set<F: PlanFacts>(
    plan: &Plan,
    set: &PlanInputSet,
    facts: &F,
) -> Option<Bound<F>> {
    let mut bound = Vec::with_capacity(set.slots.len());
    for slot_idx in set.slots.iter() {
        let slot = &plan.slots[slot_idx];
        let value = resolve_slot(plan, slot, facts)?;
        bound.push((slot.name, value));
    }
    for note_idx in set.notes.iter() {
        if !notification_fired(plan, plan.notes[note_idx].sources, facts) {
            return None;
        }
    }
    Some(bound)
}

/// The first satisfied input set of a task, in declaration order.
/// Returns the set's name id and bound objects.
pub fn eval_task_inputs<F: PlanFacts>(
    plan: &Plan,
    task: TaskId,
    facts: &F,
) -> Option<(StrId, Bound<F>)> {
    let task = plan.task(task);
    for set_idx in task.sets.iter() {
        let set = &plan.sets[set_idx];
        if let Some(bound) = eval_input_set(plan, set, facts) {
            return Some((set.name, bound));
        }
    }
    None
}

/// The availability bitmask of an input set: bit `i` set when the
/// `i`-th requirement (slots first, then notifications) is currently
/// met. The set is satisfied **iff** this equals
/// [`PlanInputSet::required_mask`]: for sets with more than 64
/// requirements, bit 63 aggregates the conjunction of requirements
/// `63..n`, keeping the equality contract exact. Unlike
/// [`eval_input_set`] this does not short-circuit — it reports *which*
/// requirements are pending, for diagnostics (the coordinator's stuck
/// reports) and monitoring. For an exact met-count of a large set use
/// [`met_requirements`].
pub fn satisfaction_mask<F: PlanFacts>(plan: &Plan, set: &PlanInputSet, facts: &F) -> u64 {
    let total = set.requirement_count();
    let mut mask = 0u64;
    let mut tail_all_met = true;
    for (bit, met) in requirement_availability(plan, set, facts).enumerate() {
        if total <= 64 || bit < 63 {
            if met {
                mask |= 1 << bit;
            }
        } else {
            tail_all_met &= met;
        }
    }
    if total > 64 && tail_all_met {
        mask |= 1 << 63;
    }
    mask
}

/// How many of an input set's requirements are currently met, exactly
/// (no 64-bit cap) — the diagnostics companion to
/// [`satisfaction_mask`].
pub fn met_requirements<F: PlanFacts>(plan: &Plan, set: &PlanInputSet, facts: &F) -> usize {
    requirement_availability(plan, set, facts)
        .filter(|met| *met)
        .count()
}

/// Per-requirement availability (slots first, then notifications) in
/// declaration order.
fn requirement_availability<'a, F: PlanFacts>(
    plan: &'a Plan,
    set: &PlanInputSet,
    facts: &'a F,
) -> impl Iterator<Item = bool> + 'a {
    let slots = set.slots;
    let notes = set.notes;
    slots
        .iter()
        .map(move |slot_idx| resolve_slot(plan, &plan.slots[slot_idx], facts).is_some())
        .chain(
            notes
                .iter()
                .map(move |note_idx| notification_fired(plan, plan.notes[note_idx].sources, facts)),
        )
}

/// Evaluates one output mapping (an empty mapping never fires).
pub fn eval_output<F: PlanFacts>(plan: &Plan, output: &PlanOutput, facts: &F) -> Option<Bound<F>> {
    if output.slots.is_empty() && output.notes.is_empty() {
        return None;
    }
    let mut mapped = Vec::with_capacity(output.slots.len());
    for slot_idx in output.slots.iter() {
        let slot = &plan.slots[slot_idx];
        let value = resolve_slot(plan, slot, facts)?;
        mapped.push((slot.name, value));
    }
    for note_idx in output.notes.iter() {
        if !notification_fired(plan, plan.notes[note_idx].sources, facts) {
            return None;
        }
    }
    Some(mapped)
}

/// All currently satisfied outputs of a scope task, in declaration
/// order, as `(output pool index, mapped objects)`.
pub fn eval_scope_outputs<F: PlanFacts>(
    plan: &Plan,
    scope: TaskId,
    facts: &F,
) -> Vec<(usize, Bound<F>)> {
    let scope = plan.task(scope);
    scope
        .outputs
        .iter()
        .filter_map(|out_idx| {
            eval_output(plan, &plan.outputs[out_idx], facts).map(|mapped| (out_idx, mapped))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A tiny string-keyed fact store for unit tests.
    #[derive(Default)]
    pub struct MemFacts {
        outputs: BTreeMap<(String, String), BTreeMap<String, String>>,
        inputs: BTreeMap<(String, String), BTreeMap<String, String>>,
    }

    impl MemFacts {
        fn add_output(&mut self, path: &str, output: &str, objects: &[(&str, &str)]) {
            self.outputs.insert(
                (path.into(), output.into()),
                objects
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                    .collect(),
            );
        }

        fn add_input(&mut self, path: &str, set: &str, objects: &[(&str, &str)]) {
            self.inputs.insert(
                (path.into(), set.into()),
                objects
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                    .collect(),
            );
        }
    }

    impl PlanFacts for MemFacts {
        type Value = String;

        fn output_object(&self, producer: &str, output: &str, object: &str) -> Option<String> {
            self.outputs
                .get(&(producer.to_string(), output.to_string()))
                .and_then(|objects| objects.get(object).cloned())
        }

        fn input_object(&self, producer: &str, set: &str, object: &str) -> Option<String> {
            self.inputs
                .get(&(producer.to_string(), set.to_string()))
                .and_then(|objects| objects.get(object).cloned())
        }

        fn output_fired(&self, producer: &str, output: &str) -> bool {
            self.outputs
                .contains_key(&(producer.to_string(), output.to_string()))
        }

        fn input_fired(&self, producer: &str, set: &str) -> bool {
            self.inputs
                .contains_key(&(producer.to_string(), set.to_string()))
        }
    }

    fn order_plan() -> Plan {
        let schema = flowscript_core::schema::compile_source(
            flowscript_core::samples::ORDER_PROCESSING,
            "processOrderApplication",
        )
        .unwrap();
        Plan::lower(&schema)
    }

    #[test]
    fn readiness_progression_matches_paper_pipeline() {
        let plan = order_plan();
        let scope = "processOrderApplication";
        let auth = plan
            .task_by_path(&format!("{scope}/paymentAuthorisation"))
            .unwrap();
        let dispatch = plan.task_by_path(&format!("{scope}/dispatch")).unwrap();
        let mut facts = MemFacts::default();

        assert!(eval_task_inputs(&plan, auth, &facts).is_none());
        facts.add_input(scope, "main", &[("order", "o-1")]);
        let (set, bound) = eval_task_inputs(&plan, auth, &facts).unwrap();
        assert_eq!(plan.str(set), "main");
        assert_eq!(bound.len(), 1);
        assert_eq!(plan.str(bound[0].0), "order");
        assert_eq!(bound[0].1, "o-1");

        // dispatch needs checkStock's output AND auth's notification.
        assert!(eval_task_inputs(&plan, dispatch, &facts).is_none());
        facts.add_output(
            "processOrderApplication/checkStock",
            "stockAvailable",
            &[("stockInfo", "s")],
        );
        assert!(eval_task_inputs(&plan, dispatch, &facts).is_none());
        facts.add_output(
            "processOrderApplication/paymentAuthorisation",
            "authorised",
            &[("paymentInfo", "p")],
        );
        let (_, bound) = eval_task_inputs(&plan, dispatch, &facts).unwrap();
        assert_eq!(bound[0].1, "s");
    }

    #[test]
    fn satisfaction_masks_report_partial_readiness() {
        let plan = order_plan();
        let scope = "processOrderApplication";
        let dispatch = plan.task_by_path(&format!("{scope}/dispatch")).unwrap();
        let task = plan.task(dispatch);
        let set = &plan.sets[task.sets.as_range()][0];
        // dispatch: 1 slot (stockInfo) + 1 notification (authorised).
        assert_eq!(set.requirement_count(), 2);
        assert_eq!(set.required_mask, 0b11);

        let mut facts = MemFacts::default();
        assert_eq!(satisfaction_mask(&plan, set, &facts), 0);
        facts.add_output(
            "processOrderApplication/checkStock",
            "stockAvailable",
            &[("stockInfo", "s")],
        );
        assert_eq!(satisfaction_mask(&plan, set, &facts), 0b01);
        facts.add_output(
            "processOrderApplication/paymentAuthorisation",
            "authorised",
            &[("paymentInfo", "p")],
        );
        assert_eq!(satisfaction_mask(&plan, set, &facts), set.required_mask);
    }

    #[test]
    fn scope_outputs_in_declaration_order_and_empty_never_fires() {
        let plan = order_plan();
        let root = 0;
        let mut facts = MemFacts::default();
        facts.add_output(
            "processOrderApplication/checkStock",
            "stockNotAvailable",
            &[],
        );
        let satisfied = eval_scope_outputs(&plan, root, &facts);
        assert_eq!(satisfied.len(), 1);
        assert_eq!(
            plan.str(plan.outputs[satisfied[0].0].name),
            "orderCancelled"
        );
    }

    #[test]
    fn reverse_edges_cover_the_dispatch_join() {
        let plan = order_plan();
        let scope = "processOrderApplication";
        let check = plan.task_by_path(&format!("{scope}/checkStock")).unwrap();
        let dispatch = plan.task_by_path(&format!("{scope}/dispatch")).unwrap();
        // checkStock feeds dispatch (dataflow) and the root scope's
        // cancellation output (notification).
        let consumers = plan.consumers(check);
        assert!(consumers.contains(&dispatch), "{consumers:?}");
        assert!(consumers.contains(&0), "{consumers:?}");
    }
}
