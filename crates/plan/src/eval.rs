//! Plan-based dependency evaluation and the worklist evaluator.
//!
//! Semantics are identical to `flowscript_engine::deps` (property-tested
//! against it): an input set is satisfied when every object slot has an
//! available source and every notification has fired; alternatives are
//! tried in declaration order; the first-declared satisfied input set
//! wins; compound outputs are evaluated in declaration order and an
//! empty mapping never fires. The difference is mechanical: every fact
//! probe is identified by a *plan index* ([`Probe`]) with its producer
//! path and fact name pre-interned, so an indexed fact store resolves
//! probes with integer lookups and a name-keyed store with borrowed
//! strings — neither formats a string or walks the scope tree.
//!
//! [`Worklist`] is the event-driven half: instead of re-scanning every
//! task after each committed fact, the coordinator seeds a worklist
//! from the plan's reverse dependency edges ([`Plan::consumers`]) plus
//! the compound-boundary edges (a freshly activated scope enables its
//! constituents), and drains it to quiescence. Per-commit work then
//! scales with the fan-out of the changed task, not the instance size.

use std::collections::BTreeSet;

use crate::ir::{Plan, PlanCond, PlanInputSet, PlanOutput, PlanSlot, Range32, StrId, TaskId};

/// Bound objects: `(slot name id, value)` pairs in declaration order.
pub type Bound<F> = Vec<(StrId, <F as PlanFacts>::Value)>;

/// One fact probe, identified both densely and by name.
///
/// `source` (and `candidate`, for `AnyOf` conditions) pin down exactly
/// which plan dependency edge is being tested — an indexed fact store
/// precomputes one storage key per source index and never touches the
/// strings. `producer` and `name` carry the same identity for
/// name-keyed stores (tests, benches, the schema-interpreting oracle);
/// both are borrowed from the plan's intern table, never formatted.
#[derive(Debug, Clone, Copy)]
pub struct Probe<'p> {
    /// Index into [`Plan::sources`] of the probed dependency edge.
    pub source: u32,
    /// Index into [`Plan::any_pool`] when probing one `AnyOf` candidate.
    pub candidate: Option<u32>,
    /// The producing task's absolute path (interned).
    pub producer: &'p str,
    /// The probed input-set or output name (interned).
    pub name: &'p str,
    /// `true` for an input-binding fact, `false` for an output fact.
    pub is_input: bool,
}

/// Read access to published facts.
///
/// Mirrors the engine's `FactView`, but asks for one object at a time:
/// an implementation *may* fetch just the requested entry. (The
/// engine's tx-backed view still decodes the whole fact record and
/// extracts one entry — teaching the store partial reads is a ROADMAP
/// item; the plan's win here is that probes arrive pre-resolved, so
/// the store can go straight to a dense key.)
pub trait PlanFacts {
    /// The object value type (the engine's `ObjectVal`).
    type Value;

    /// The named object of the probed fact, if that fact was published
    /// and carries the object.
    fn fact_object(&self, probe: Probe<'_>, object: &str) -> Option<Self::Value>;

    /// Whether the probed fact exists.
    fn fact_fired(&self, probe: Probe<'_>) -> bool;
}

/// Builds the probe for one source (with no `AnyOf` candidate chosen).
fn source_probe<'p>(plan: &'p Plan, src_idx: usize, name: StrId, is_input: bool) -> Probe<'p> {
    let source = &plan.sources[src_idx];
    Probe {
        source: src_idx as u32,
        candidate: None,
        producer: plan.str(source.producer_path),
        name: plan.str(name),
        is_input,
    }
}

/// Resolves one slot: the first available alternative's value.
pub fn resolve_slot<F: PlanFacts>(plan: &Plan, slot: &PlanSlot, facts: &F) -> Option<F::Value> {
    for src_idx in slot.sources.iter() {
        let source = &plan.sources[src_idx];
        let Some(object) = source.object else {
            continue;
        };
        let object = plan.str(object);
        let value = match &source.cond {
            PlanCond::Input(set) => {
                facts.fact_object(source_probe(plan, src_idx, *set, true), object)
            }
            PlanCond::Output(output) => {
                facts.fact_object(source_probe(plan, src_idx, *output, false), object)
            }
            // Reference semantics (deps::resolve_object_source): the
            // first *fired* candidate is committed to, even when that
            // fact does not carry the object — later candidates must
            // not be consulted.
            PlanCond::AnyOf(candidates) => candidates
                .iter()
                .map(|cand_idx| Probe {
                    source: src_idx as u32,
                    candidate: Some(cand_idx as u32),
                    producer: plan.str(source.producer_path),
                    name: plan.str(plan.any_pool[cand_idx]),
                    is_input: false,
                })
                .find(|probe| facts.fact_fired(*probe))
                .and_then(|probe| facts.fact_object(probe, object)),
        };
        if value.is_some() {
            return value;
        }
    }
    None
}

/// Whether any source of a notification has fired.
pub fn notification_fired<F: PlanFacts>(plan: &Plan, sources: Range32, facts: &F) -> bool {
    sources.iter().any(|src_idx| {
        let source = &plan.sources[src_idx];
        match &source.cond {
            PlanCond::Input(set) => facts.fact_fired(source_probe(plan, src_idx, *set, true)),
            PlanCond::Output(output) => {
                facts.fact_fired(source_probe(plan, src_idx, *output, false))
            }
            PlanCond::AnyOf(candidates) => candidates.iter().any(|cand_idx| {
                facts.fact_fired(Probe {
                    source: src_idx as u32,
                    candidate: Some(cand_idx as u32),
                    producer: plan.str(source.producer_path),
                    name: plan.str(plan.any_pool[cand_idx]),
                    is_input: false,
                })
            }),
        }
    })
}

/// Tries to satisfy one input set; `Some(bound (name, value) pairs)` on
/// success (slot declaration order).
pub fn eval_input_set<F: PlanFacts>(
    plan: &Plan,
    set: &PlanInputSet,
    facts: &F,
) -> Option<Bound<F>> {
    let mut bound = Vec::with_capacity(set.slots.len());
    for slot_idx in set.slots.iter() {
        let slot = &plan.slots[slot_idx];
        let value = resolve_slot(plan, slot, facts)?;
        bound.push((slot.name, value));
    }
    for note_idx in set.notes.iter() {
        if !notification_fired(plan, plan.notes[note_idx].sources, facts) {
            return None;
        }
    }
    Some(bound)
}

/// The first satisfied input set of a task, in declaration order.
/// Returns the set's name id and bound objects.
pub fn eval_task_inputs<F: PlanFacts>(
    plan: &Plan,
    task: TaskId,
    facts: &F,
) -> Option<(StrId, Bound<F>)> {
    let task = plan.task(task);
    for set_idx in task.sets.iter() {
        let set = &plan.sets[set_idx];
        if let Some(bound) = eval_input_set(plan, set, facts) {
            return Some((set.name, bound));
        }
    }
    None
}

/// The availability bitmask of an input set: bit `i` set when the
/// `i`-th requirement (slots first, then notifications) is currently
/// met. The set is satisfied **iff** this equals
/// [`PlanInputSet::required_mask`]: for sets with more than 64
/// requirements, bit 63 aggregates the conjunction of requirements
/// `63..n`, keeping the equality contract exact. Unlike
/// [`eval_input_set`] this does not short-circuit — it reports *which*
/// requirements are pending, for diagnostics (the coordinator's stuck
/// reports) and monitoring. For an exact met-count of a large set use
/// [`met_requirements`].
pub fn satisfaction_mask<F: PlanFacts>(plan: &Plan, set: &PlanInputSet, facts: &F) -> u64 {
    let total = set.requirement_count();
    let mut mask = 0u64;
    let mut tail_all_met = true;
    for (bit, met) in requirement_availability(plan, set, facts).enumerate() {
        if total <= 64 || bit < 63 {
            if met {
                mask |= 1 << bit;
            }
        } else {
            tail_all_met &= met;
        }
    }
    if total > 64 && tail_all_met {
        mask |= 1 << 63;
    }
    mask
}

/// How many of an input set's requirements are currently met, exactly
/// (no 64-bit cap) — the diagnostics companion to
/// [`satisfaction_mask`].
pub fn met_requirements<F: PlanFacts>(plan: &Plan, set: &PlanInputSet, facts: &F) -> usize {
    requirement_availability(plan, set, facts)
        .filter(|met| *met)
        .count()
}

/// Per-requirement availability (slots first, then notifications) in
/// declaration order.
fn requirement_availability<'a, F: PlanFacts>(
    plan: &'a Plan,
    set: &PlanInputSet,
    facts: &'a F,
) -> impl Iterator<Item = bool> + 'a {
    let slots = set.slots;
    let notes = set.notes;
    slots
        .iter()
        .map(move |slot_idx| resolve_slot(plan, &plan.slots[slot_idx], facts).is_some())
        .chain(
            notes
                .iter()
                .map(move |note_idx| notification_fired(plan, plan.notes[note_idx].sources, facts)),
        )
}

/// Evaluates one output mapping (an empty mapping never fires).
pub fn eval_output<F: PlanFacts>(plan: &Plan, output: &PlanOutput, facts: &F) -> Option<Bound<F>> {
    if output.slots.is_empty() && output.notes.is_empty() {
        return None;
    }
    let mut mapped = Vec::with_capacity(output.slots.len());
    for slot_idx in output.slots.iter() {
        let slot = &plan.slots[slot_idx];
        let value = resolve_slot(plan, slot, facts)?;
        mapped.push((slot.name, value));
    }
    for note_idx in output.notes.iter() {
        if !notification_fired(plan, plan.notes[note_idx].sources, facts) {
            return None;
        }
    }
    Some(mapped)
}

/// All currently satisfied outputs of a scope task, in declaration
/// order, as `(output pool index, mapped objects)`.
pub fn eval_scope_outputs<F: PlanFacts>(
    plan: &Plan,
    scope: TaskId,
    facts: &F,
) -> Vec<(usize, Bound<F>)> {
    let scope = plan.task(scope);
    scope
        .outputs
        .iter()
        .filter_map(|out_idx| {
            eval_output(plan, &plan.outputs[out_idx], facts).map(|mapped| (out_idx, mapped))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Worklist re-evaluation.
// ---------------------------------------------------------------------

/// The re-evaluation worklist driving event-driven commits.
///
/// Two ordered agendas:
///
/// - **start**: task ids whose input-set satisfaction must be
///   re-tested (they may have become startable),
/// - **outputs**: scope ids whose output mappings must be re-tested
///   (a mark, repeat or terminal outcome may have become satisfied).
///
/// Seeding rules encode the plan's dependency structure:
///
/// - [`Worklist::seed_commit`]: a task published a fact (bound an
///   input set or produced an output) — every consumer on its reverse
///   dependency edges is re-checked; consumers that are scopes also
///   re-check their outputs (a scope consumes either through a
///   constituent's input set or through its own output mapping, and
///   the edges do not distinguish the two),
/// - [`Worklist::seed_children`]: a compound activated (or
///   re-activated after a repeat) — the compound boundary enables its
///   direct constituents, including those with *empty* input sets
///   that no reverse edge will ever point at; nested compounds enable
///   their own constituents when they activate in turn,
/// - [`Worklist::seed_all`]: the full scan, kept for instance start,
///   crash recovery and reconfiguration re-entry (where the plan
///   itself changed under the instance).
///
/// Draining pops **all** start work before any output work (a
/// constituent that can start must start before its scope considers
/// terminating, matching the engine's fixpoint precedence), and output
/// work deepest-scope-first (an inner compound's outcome feeds outer
/// mappings). Start work is ordered by declared **priority** (highest
/// first; the implementation clause's `"priority"` pair), ties by
/// ascending id — so when several ready tasks contend for busy
/// executors, the high-priority one dispatches first.
#[derive(Debug, Default, Clone)]
pub struct Worklist {
    /// Keyed `(Reverse(priority), id)`: iteration order is the
    /// dispatch order.
    start: BTreeSet<(std::cmp::Reverse<i64>, TaskId)>,
    outputs: BTreeSet<TaskId>,
}

impl Worklist {
    /// An empty worklist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether no work remains.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty() && self.outputs.is_empty()
    }

    /// Queued entries (diagnostics).
    pub fn len(&self) -> usize {
        self.start.len() + self.outputs.len()
    }

    /// Re-check one task's input sets (and outputs, for a scope).
    pub fn push_task(&mut self, plan: &Plan, task: TaskId) {
        if plan.task(task).parent.is_some() {
            self.start
                .insert((std::cmp::Reverse(plan.task_priority(task)), task));
        }
        if plan.task(task).is_scope {
            self.outputs.insert(task);
        }
    }

    /// Seeds every consumer that may become ready now that `changed`
    /// has published a fact (reverse dependency + notification edges).
    pub fn seed_commit(&mut self, plan: &Plan, changed: TaskId) {
        for &consumer in plan.consumers(changed) {
            self.push_task(plan, consumer);
        }
    }

    /// Seeds the compound boundary of a freshly (re)activated scope:
    /// its direct constituents, and the scope's own outputs.
    pub fn seed_children(&mut self, plan: &Plan, scope: TaskId) {
        for &child in plan.children(scope) {
            self.start
                .insert((std::cmp::Reverse(plan.task_priority(child)), child));
        }
        self.outputs.insert(scope);
    }

    /// Seeds everything — the full scan for instance start, recovery
    /// and reconfiguration.
    pub fn seed_all(&mut self, plan: &Plan) {
        for id in 0..plan.tasks.len() as TaskId {
            self.push_task(plan, id);
        }
    }

    /// Next task whose input sets need re-testing: highest declared
    /// priority first, ties by ascending id (DFS pre-order, so
    /// declaration order within a scope).
    pub fn pop_start(&mut self) -> Option<TaskId> {
        let key = *self.start.iter().next()?;
        self.start.remove(&key);
        Some(key.1)
    }

    /// Next scope whose outputs need re-testing, deepest first: a
    /// scope is deferred while any queued scope lies inside its
    /// subtree (DFS pre-order makes that one ordered range probe).
    pub fn pop_output(&mut self, plan: &Plan) -> Option<TaskId> {
        let mut current = *self.outputs.iter().next()?;
        loop {
            let end = plan.task(current).subtree_end;
            match self.outputs.range(current + 1..end).next() {
                Some(&deeper) => current = deeper,
                None => break,
            }
        }
        self.outputs.remove(&current);
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// A tiny string-keyed fact store for unit tests.
    #[derive(Default)]
    pub struct MemFacts {
        outputs: BTreeMap<(String, String), BTreeMap<String, String>>,
        inputs: BTreeMap<(String, String), BTreeMap<String, String>>,
    }

    impl MemFacts {
        fn add_output(&mut self, path: &str, output: &str, objects: &[(&str, &str)]) {
            self.outputs.insert(
                (path.into(), output.into()),
                objects
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                    .collect(),
            );
        }

        fn add_input(&mut self, path: &str, set: &str, objects: &[(&str, &str)]) {
            self.inputs.insert(
                (path.into(), set.into()),
                objects
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                    .collect(),
            );
        }
    }

    impl PlanFacts for MemFacts {
        type Value = String;

        fn fact_object(&self, probe: Probe<'_>, object: &str) -> Option<String> {
            let map = if probe.is_input {
                &self.inputs
            } else {
                &self.outputs
            };
            map.get(&(probe.producer.to_string(), probe.name.to_string()))
                .and_then(|objects| objects.get(object).cloned())
        }

        fn fact_fired(&self, probe: Probe<'_>) -> bool {
            let map = if probe.is_input {
                &self.inputs
            } else {
                &self.outputs
            };
            map.contains_key(&(probe.producer.to_string(), probe.name.to_string()))
        }
    }

    fn order_plan() -> Plan {
        let schema = flowscript_core::schema::compile_source(
            flowscript_core::samples::ORDER_PROCESSING,
            "processOrderApplication",
        )
        .unwrap();
        Plan::lower(&schema)
    }

    #[test]
    fn readiness_progression_matches_paper_pipeline() {
        let plan = order_plan();
        let scope = "processOrderApplication";
        let auth = plan
            .task_by_path(&format!("{scope}/paymentAuthorisation"))
            .unwrap();
        let dispatch = plan.task_by_path(&format!("{scope}/dispatch")).unwrap();
        let mut facts = MemFacts::default();

        assert!(eval_task_inputs(&plan, auth, &facts).is_none());
        facts.add_input(scope, "main", &[("order", "o-1")]);
        let (set, bound) = eval_task_inputs(&plan, auth, &facts).unwrap();
        assert_eq!(plan.str(set), "main");
        assert_eq!(bound.len(), 1);
        assert_eq!(plan.str(bound[0].0), "order");
        assert_eq!(bound[0].1, "o-1");

        // dispatch needs checkStock's output AND auth's notification.
        assert!(eval_task_inputs(&plan, dispatch, &facts).is_none());
        facts.add_output(
            "processOrderApplication/checkStock",
            "stockAvailable",
            &[("stockInfo", "s")],
        );
        assert!(eval_task_inputs(&plan, dispatch, &facts).is_none());
        facts.add_output(
            "processOrderApplication/paymentAuthorisation",
            "authorised",
            &[("paymentInfo", "p")],
        );
        let (_, bound) = eval_task_inputs(&plan, dispatch, &facts).unwrap();
        assert_eq!(bound[0].1, "s");
    }

    #[test]
    fn satisfaction_masks_report_partial_readiness() {
        let plan = order_plan();
        let scope = "processOrderApplication";
        let dispatch = plan.task_by_path(&format!("{scope}/dispatch")).unwrap();
        let task = plan.task(dispatch);
        let set = &plan.sets[task.sets.as_range()][0];
        // dispatch: 1 slot (stockInfo) + 1 notification (authorised).
        assert_eq!(set.requirement_count(), 2);
        assert_eq!(set.required_mask, 0b11);

        let mut facts = MemFacts::default();
        assert_eq!(satisfaction_mask(&plan, set, &facts), 0);
        facts.add_output(
            "processOrderApplication/checkStock",
            "stockAvailable",
            &[("stockInfo", "s")],
        );
        assert_eq!(satisfaction_mask(&plan, set, &facts), 0b01);
        facts.add_output(
            "processOrderApplication/paymentAuthorisation",
            "authorised",
            &[("paymentInfo", "p")],
        );
        assert_eq!(satisfaction_mask(&plan, set, &facts), set.required_mask);
    }

    #[test]
    fn scope_outputs_in_declaration_order_and_empty_never_fires() {
        let plan = order_plan();
        let root = 0;
        let mut facts = MemFacts::default();
        facts.add_output(
            "processOrderApplication/checkStock",
            "stockNotAvailable",
            &[],
        );
        let satisfied = eval_scope_outputs(&plan, root, &facts);
        assert_eq!(satisfied.len(), 1);
        assert_eq!(
            plan.str(plan.outputs[satisfied[0].0].name),
            "orderCancelled"
        );
    }

    #[test]
    fn reverse_edges_cover_the_dispatch_join() {
        let plan = order_plan();
        let scope = "processOrderApplication";
        let check = plan.task_by_path(&format!("{scope}/checkStock")).unwrap();
        let dispatch = plan.task_by_path(&format!("{scope}/dispatch")).unwrap();
        // checkStock feeds dispatch (dataflow) and the root scope's
        // cancellation output (notification).
        let consumers = plan.consumers(check);
        assert!(consumers.contains(&dispatch), "{consumers:?}");
        assert!(consumers.contains(&0), "{consumers:?}");
    }

    #[test]
    fn worklist_seeds_consumers_and_compound_boundary() {
        let plan = order_plan();
        let scope = "processOrderApplication";
        let check = plan.task_by_path(&format!("{scope}/checkStock")).unwrap();
        let dispatch = plan.task_by_path(&format!("{scope}/dispatch")).unwrap();

        let mut worklist = Worklist::new();
        assert!(worklist.is_empty());
        worklist.seed_commit(&plan, check);
        // dispatch is re-checked for starting; the root (a consumer via
        // the cancellation notification) re-checks its outputs but never
        // its (non-existent) parent-bound input sets.
        let mut started = Vec::new();
        while let Some(id) = worklist.pop_start() {
            started.push(id);
        }
        assert!(started.contains(&dispatch));
        assert!(!started.contains(&0));
        assert_eq!(worklist.pop_output(&plan), Some(0));
        assert!(worklist.is_empty());

        // Compound boundary: activation enables every direct child.
        worklist.seed_children(&plan, 0);
        let children: Vec<TaskId> = std::iter::from_fn(|| worklist.pop_start()).collect();
        assert_eq!(children, plan.children(0).to_vec());
    }

    #[test]
    fn worklist_pops_deepest_scope_outputs_first() {
        let schema = flowscript_core::schema::compile_source(
            flowscript_core::samples::BUSINESS_TRIP,
            "tripReservation",
        )
        .unwrap();
        let plan = Plan::lower(&schema);
        let inner = plan
            .task_by_path("tripReservation/businessReservation/checkFlightReservation")
            .unwrap();
        let mid = plan
            .task_by_path("tripReservation/businessReservation")
            .unwrap();
        let mut worklist = Worklist::new();
        worklist.push_task(&plan, 0);
        worklist.push_task(&plan, mid);
        worklist.push_task(&plan, inner);
        // Drain start agenda first; output order is inner → mid → root.
        while worklist.pop_start().is_some() {}
        assert_eq!(worklist.pop_output(&plan), Some(inner));
        assert_eq!(worklist.pop_output(&plan), Some(mid));
        assert_eq!(worklist.pop_output(&plan), Some(0));
        assert_eq!(worklist.pop_output(&plan), None);
        assert_eq!(worklist.len(), 0);
    }

    #[test]
    fn seed_all_covers_every_task_once() {
        let plan = order_plan();
        let mut worklist = Worklist::new();
        worklist.seed_all(&plan);
        let mut starts = 0;
        while worklist.pop_start().is_some() {
            starts += 1;
        }
        // Every non-root task is a start candidate.
        assert_eq!(starts, plan.tasks.len() - 1);
        let mut outputs = 0;
        while worklist.pop_output(&plan).is_some() {
            outputs += 1;
        }
        assert_eq!(outputs, plan.tasks.iter().filter(|t| t.is_scope).count());
    }
}
