//! The paper's example applications as complete, parseable scripts.
//!
//! The paper's listings (§5) omit several task class declarations and have
//! one inconsistency (the `Dispatch` task class is declared with input
//! `order of class Order` but its instance binds `inputobject stockInfo`);
//! these scripts complete and reconcile them. Each constant is used by the
//! examples, the integration tests and the per-figure benchmarks.

/// A minimal two-task pipeline used by the quickstart example.
pub const QUICKSTART: &str = r#"
class Message;

taskclass Produce {
    inputs { input main { seed of class Message } };
    outputs { outcome produced { message of class Message } }
}

taskclass Consume {
    inputs { input main { message of class Message } };
    outputs { outcome consumed { result of class Message }; outcome rejected { } }
}

taskclass Pipeline {
    inputs { input main { seed of class Message } };
    outputs { outcome done { result of class Message }; outcome failed { } }
}

compoundtask pipeline of taskclass Pipeline {
    task produce of taskclass Produce {
        implementation { "code" is "refProduce" };
        inputs {
            input main {
                inputobject seed from { seed of task pipeline if input main }
            }
        }
    };
    task consume of taskclass Consume {
        implementation { "code" is "refConsume" };
        inputs {
            input main {
                inputobject message from { message of task produce if output produced }
            }
        }
    };
    outputs {
        outcome done {
            outputobject result from { result of task consume if output consumed }
        };
        outcome failed {
            notification from { task consume if output rejected }
        }
    }
}
"#;

/// Fig. 1's four-task diamond: t1 → {t2, t3} → t4, with a notification
/// dependency t1→t2 (dotted in the paper) and dataflow elsewhere.
pub const FIG1_DIAMOND: &str = r#"
class Data;

taskclass Source {
    inputs { input main { seed of class Data } };
    outputs { outcome done { out of class Data } }
}

taskclass Stage {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}

taskclass NotifiedStage {
    inputs { input main { } };
    outputs { outcome done { out of class Data } }
}

taskclass Join {
    inputs { input main { left of class Data; right of class Data } };
    outputs { outcome done { out of class Data } }
}

taskclass Diamond {
    inputs { input main { seed of class Data } };
    outputs { outcome done { out of class Data } }
}

compoundtask diamond of taskclass Diamond {
    task t1 of taskclass Source {
        implementation { "code" is "refT1" };
        inputs {
            input main { inputobject seed from { seed of task diamond if input main } }
        }
    };
    task t2 of taskclass NotifiedStage {
        implementation { "code" is "refT2" };
        inputs {
            input main {
                notification from { task t1 if output done }
            }
        }
    };
    task t3 of taskclass Stage {
        implementation { "code" is "refT3" };
        inputs {
            input main { inputobject in from { out of task t1 if output done } }
        }
    };
    task t4 of taskclass Join {
        implementation { "code" is "refT4" };
        inputs {
            input main {
                inputobject left from { out of task t2 if output done };
                inputobject right from { out of task t3 if output done }
            }
        }
    };
    outputs {
        outcome done { outputobject out from { out of task t4 if output done } }
    }
}
"#;

/// §5.1 / Fig. 6: the network-management service impact application.
pub const SERVICE_IMPACT: &str = r#"
class AlarmsSource;
class FaultReport;
class ServiceImpactReports;
class ResolutionReport;

taskclass ServiceImpactApplication {
    inputs {
        input main { alarmsSource of class AlarmsSource }
    };
    outputs {
        outcome resolved { resolutionReport of class ResolutionReport };
        outcome notResolved { };
        outcome serviceImpactApplicationFailure { }
    }
}

taskclass AlarmCorrelator {
    inputs { input main { alarmSource of class AlarmsSource } };
    outputs {
        outcome foundFault { faultReport of class FaultReport };
        outcome alarmCorrelatorFailure { }
    }
}

taskclass ServiceImpactAnalysis {
    inputs { input main { faultReport of class FaultReport } };
    outputs {
        outcome foundImpacts { serviceImpactReports of class ServiceImpactReports };
        outcome serviceImpactAnalysisFailure { }
    }
}

taskclass ServiceImpactResolution {
    inputs { input main { serviceImpactReports of class ServiceImpactReports } };
    outputs {
        outcome foundResolution { resolutionReport of class ResolutionReport };
        outcome foundNoResolution { };
        outcome serviceImpactResolutionFailure { }
    }
}

compoundtask serviceImpactApplication of taskclass ServiceImpactApplication {
    task alarmCorrelator of taskclass AlarmCorrelator {
        implementation { "code" is "refAlarmCorrelator" };
        inputs {
            input main {
                inputobject alarmSource from {
                    alarmsSource of task serviceImpactApplication if input main
                }
            }
        }
    };
    task serviceImpactAnalysis of taskclass ServiceImpactAnalysis {
        implementation { "code" is "refServiceImpactAnalysis" };
        inputs {
            input main {
                inputobject faultReport from {
                    faultReport of task alarmCorrelator if output foundFault
                }
            }
        }
    };
    task serviceImpactResolution of taskclass ServiceImpactResolution {
        implementation { "code" is "refServiceImpactResolution" };
        inputs {
            input main {
                inputobject serviceImpactReports from {
                    serviceImpactReports of task serviceImpactAnalysis
                }
            }
        }
    };
    outputs {
        outcome resolved {
            outputobject resolutionReport from {
                resolutionReport of task serviceImpactResolution if output foundResolution
            }
        };
        outcome notResolved {
            notification from {
                task serviceImpactResolution if output foundNoResolution
            }
        };
        outcome serviceImpactApplicationFailure {
            notification from {
                task alarmCorrelator if output alarmCorrelatorFailure;
                task serviceImpactAnalysis if output serviceImpactAnalysisFailure;
                task serviceImpactResolution if output serviceImpactResolutionFailure
            }
        }
    }
}
"#;

/// §5.2 / Fig. 7: electronic order processing.
pub const ORDER_PROCESSING: &str = r#"
class Order;
class DispatchNote;
class StockInfo;
class PaymentInfo;

taskclass ProcessOrderApplication {
    inputs { input main { order of class Order } };
    outputs {
        outcome orderCompleted { dispatchNote of class DispatchNote };
        outcome orderCancelled { }
    }
}

taskclass PaymentAuthorisation {
    inputs { input main { order of class Order } };
    outputs {
        outcome authorised { paymentInfo of class PaymentInfo };
        outcome notAuthorised { }
    }
}

taskclass CheckStock {
    inputs { input main { order of class Order } };
    outputs {
        outcome stockAvailable { stockInfo of class StockInfo };
        outcome stockNotAvailable { }
    }
}

taskclass Dispatch {
    inputs { input main { stockInfo of class StockInfo } };
    outputs {
        outcome dispatchCompleted { dispatchNote of class DispatchNote };
        abort outcome dispatchFailed { }
    }
}

taskclass PaymentCapture {
    inputs { input main { paymentInfo of class PaymentInfo } };
    outputs {
        outcome done { };
        abort outcome captureFailed { }
    }
}

compoundtask processOrderApplication of taskclass ProcessOrderApplication {
    task paymentAuthorisation of taskclass PaymentAuthorisation {
        implementation { "code" is "refPaymentAuthorisation" };
        inputs {
            input main {
                inputobject order from {
                    order of task processOrderApplication if input main
                }
            }
        }
    };
    task checkStock of taskclass CheckStock {
        implementation { "code" is "refCheckStock" };
        inputs {
            input main {
                inputobject order from {
                    order of task processOrderApplication if input main
                }
            }
        }
    };
    task dispatch of taskclass Dispatch {
        implementation { "code" is "refDispatch" };
        inputs {
            input main {
                notification from {
                    task paymentAuthorisation if output authorised
                };
                inputobject stockInfo from {
                    stockInfo of task checkStock if output stockAvailable
                }
            }
        }
    };
    task paymentCapture of taskclass PaymentCapture {
        implementation { "code" is "refPaymentCapture" };
        inputs {
            input main {
                notification from {
                    task dispatch if output dispatchCompleted
                };
                inputobject paymentInfo from {
                    paymentInfo of task paymentAuthorisation if output authorised
                }
            }
        }
    };
    outputs {
        outcome orderCompleted {
            notification from {
                task paymentCapture if output done
            };
            outputobject dispatchNote from {
                dispatchNote of task dispatch if output dispatchCompleted
            }
        };
        outcome orderCancelled {
            notification from {
                task paymentAuthorisation if output notAuthorised;
                task checkStock if output stockNotAvailable;
                task dispatch if output dispatchFailed
            }
        }
    }
}
"#;

/// §5.3 / Figs. 8–9: the business trip application — redundant airline
/// queries, a compound repeat loop, compensation and a mark output.
pub const BUSINESS_TRIP: &str = r#"
class User;
class TripData;
class FlightList;
class Plane;
class Hotel;
class Cost;
class Tickets;

taskclass TripReservation {
    inputs { input main { user of class User } };
    outputs {
        outcome booked { tickets of class Tickets };
        outcome notBooked { };
        mark toPay { cost of class Cost }
    }
}

taskclass BusinessReservation {
    inputs { input main { user of class User } };
    outputs {
        outcome success { plane of class Plane; hotel of class Hotel; cost of class Cost };
        outcome failed { };
        repeat outcome retry { user of class User }
    }
}

taskclass DataAcquisition {
    inputs { input main { user of class User } };
    outputs {
        outcome acquired { tripData of class TripData };
        outcome dataFailure { }
    }
}

taskclass CheckFlightReservation {
    inputs { input main { tripData of class TripData } };
    outputs {
        outcome flightFound { flightList of class FlightList };
        outcome noFlight { }
    }
}

taskclass AirlineQuery {
    inputs { input main { tripData of class TripData } };
    outputs {
        outcome found { flightList of class FlightList };
        outcome notFound { }
    }
}

taskclass FlightReservation {
    inputs { input main { flightList of class FlightList } };
    outputs {
        outcome reserved { plane of class Plane; cost of class Cost };
        outcome reservationFailed { }
    }
}

taskclass HotelReservation {
    inputs { input main { plane of class Plane } };
    outputs {
        outcome hotelBooked { hotel of class Hotel };
        outcome failed { }
    }
}

taskclass FlightCancellation {
    inputs { input main { plane of class Plane } };
    outputs {
        outcome cancelled { }
    }
}

taskclass PrintTickets {
    inputs { input main { plane of class Plane; hotel of class Hotel } };
    outputs {
        outcome printed { tickets of class Tickets }
    }
}

compoundtask tripReservation of taskclass TripReservation {
    compoundtask businessReservation of taskclass BusinessReservation {
        inputs {
            input main {
                inputobject user from {
                    user of task tripReservation if input main;
                    user of task businessReservation if output retry
                }
            }
        };
        task dataAcquisition of taskclass DataAcquisition {
            implementation { "code" is "refDataAcquisition" };
            inputs {
                input main {
                    inputobject user from {
                        user of task businessReservation if input main
                    }
                }
            }
        };
        compoundtask checkFlightReservation of taskclass CheckFlightReservation {
            inputs {
                input main {
                    inputobject tripData from {
                        tripData of task dataAcquisition if output acquired
                    }
                }
            };
            task airlineQueryA of taskclass AirlineQuery {
                implementation { "code" is "refAirlineQueryA" };
                inputs {
                    input main {
                        inputobject tripData from {
                            tripData of task checkFlightReservation if input main
                        }
                    }
                }
            };
            task airlineQueryB of taskclass AirlineQuery {
                implementation { "code" is "refAirlineQueryB" };
                inputs {
                    input main {
                        inputobject tripData from {
                            tripData of task checkFlightReservation if input main
                        }
                    }
                }
            };
            task airlineQueryC of taskclass AirlineQuery {
                implementation { "code" is "refAirlineQueryC" };
                inputs {
                    input main {
                        inputobject tripData from {
                            tripData of task checkFlightReservation if input main
                        }
                    }
                }
            };
            outputs {
                outcome flightFound {
                    outputobject flightList from {
                        flightList of task airlineQueryA if output found;
                        flightList of task airlineQueryB if output found;
                        flightList of task airlineQueryC if output found
                    }
                };
                outcome noFlight {
                    notification from { task airlineQueryA if output notFound };
                    notification from { task airlineQueryB if output notFound };
                    notification from { task airlineQueryC if output notFound }
                }
            }
        };
        task flightReservation of taskclass FlightReservation {
            implementation { "code" is "refFlightReservation" };
            inputs {
                input main {
                    inputobject flightList from {
                        flightList of task checkFlightReservation if output flightFound
                    }
                }
            }
        };
        task hotelReservation of taskclass HotelReservation {
            implementation { "code" is "refHotelReservation" };
            inputs {
                input main {
                    inputobject plane from {
                        plane of task flightReservation if output reserved
                    }
                }
            }
        };
        task flightCancellation of taskclass FlightCancellation {
            implementation { "code" is "refFlightCancellation" };
            inputs {
                input main {
                    notification from {
                        task hotelReservation if output failed
                    };
                    inputobject plane from {
                        plane of task flightReservation
                    }
                }
            }
        };
        outputs {
            outcome success {
                outputobject plane from {
                    plane of task flightReservation if output reserved
                };
                outputobject hotel from {
                    hotel of task hotelReservation if output hotelBooked
                };
                outputobject cost from {
                    cost of task flightReservation if output reserved
                }
            };
            outcome failed {
                notification from {
                    task dataAcquisition if output dataFailure;
                    task checkFlightReservation if output noFlight;
                    task flightReservation if output reservationFailed
                }
            };
            repeat outcome retry {
                outputobject user from {
                    user of task businessReservation if input main
                };
                notification from {
                    task flightCancellation if output cancelled
                }
            }
        }
    };
    task printTickets of taskclass PrintTickets {
        implementation { "code" is "refPrintTickets" };
        inputs {
            input main {
                inputobject plane from {
                    plane of task businessReservation if output success
                };
                inputobject hotel from {
                    hotel of task businessReservation if output success
                }
            }
        }
    };
    outputs {
        outcome booked {
            outputobject tickets from {
                tickets of task printTickets if output printed
            }
        };
        outcome notBooked {
            notification from {
                task businessReservation if output failed
            }
        };
        mark toPay {
            outputobject cost from {
                cost of task businessReservation if output success
            }
        }
    }
}
"#;

/// All named samples, for data-driven tests.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        ("quickstart", QUICKSTART),
        ("fig1_diamond", FIG1_DIAMOND),
        ("service_impact", SERVICE_IMPACT),
        ("order_processing", ORDER_PROCESSING),
        ("business_trip", BUSINESS_TRIP),
    ]
}

/// The root compound task name for each sample.
pub fn root_of(sample: &str) -> &'static str {
    match sample {
        "quickstart" => "pipeline",
        "fig1_diamond" => "diamond",
        "service_impact" => "serviceImpactApplication",
        "order_processing" => "processOrderApplication",
        "business_trip" => "tripReservation",
        other => panic!("unknown sample {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn every_sample_parses() {
        for (name, source) in all() {
            match parse(source) {
                Ok(script) => assert!(!script.items.is_empty(), "{name} is empty"),
                Err(diags) => panic!("{name} failed to parse:\n{}", diags.render(source)),
            }
        }
    }

    #[test]
    fn roots_exist_in_samples() {
        for (name, source) in all() {
            let script = parse(source).unwrap();
            let root = root_of(name);
            assert!(
                script.find_compound(root).is_some(),
                "{name}: root {root} missing"
            );
        }
    }
}
