//! Compiled schemas: the resolved, hierarchical form the engine executes.
//!
//! [`compile`] lowers a checked script to a [`Schema`]: template-free,
//! name-resolved, with every `Any` source condition expanded to the
//! concrete candidate outputs. The convenience [`compile_source`] runs the
//! whole front end (parse → template expansion → sema → compile).

use std::collections::BTreeMap;

use crate::ast::{self, Constituent, InputElem, OutputElem, OutputKind, SourceCond};
use crate::diag::{Diagnostic, Diagnostics};
use crate::sema::{self, Checked};
use crate::template;

/// An object reference signature: name and class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Object reference name.
    pub name: String,
    /// Its object class.
    pub class: String,
}

/// A resolved input set signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSetInfo {
    /// Set name.
    pub name: String,
    /// Required objects.
    pub objects: Vec<ObjectInfo>,
}

/// A resolved output signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputInfo {
    /// Output name.
    pub name: String,
    /// Output kind.
    pub kind: OutputKind,
    /// Objects produced with it.
    pub objects: Vec<ObjectInfo>,
}

/// A resolved task class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskClassInfo {
    /// Class name.
    pub name: String,
    /// Input sets in declaration order (the runtime's deterministic
    /// preference order).
    pub input_sets: Vec<InputSetInfo>,
    /// Possible outputs.
    pub outputs: Vec<OutputInfo>,
    /// Whether the class is atomic (declares an abort outcome).
    pub atomic: bool,
}

impl TaskClassInfo {
    /// Finds an input set by name.
    pub fn input_set(&self, name: &str) -> Option<&InputSetInfo> {
        self.input_sets.iter().find(|s| s.name == name)
    }

    /// Finds an output by name.
    pub fn output(&self, name: &str) -> Option<&OutputInfo> {
        self.outputs.iter().find(|o| o.name == name)
    }
}

/// How a source condition is satisfied at run time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledCond {
    /// The producer bound the named input set.
    Input(String),
    /// The producer produced the named output.
    Output(String),
    /// The producer produced any of these outputs (an unconditioned
    /// source, expanded at compile time).
    AnyOf(Vec<String>),
}

/// One resolved alternative source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledSource {
    /// Producing task's instance name within the scope.
    pub task: String,
    /// Whether `task` is the enclosing compound itself.
    pub is_self: bool,
    /// The object taken (None for notifications).
    pub object: Option<String>,
    /// When the source becomes available.
    pub cond: CompiledCond,
}

/// A dataflow slot: one required input (or output) object and its ordered
/// alternatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledObjectSlot {
    /// Object name in the consumer's signature.
    pub name: String,
    /// The object's class.
    pub class: String,
    /// Ordered alternative sources (first available wins).
    pub sources: Vec<CompiledSource>,
}

/// A notification dependency: satisfied when any source fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledNotification {
    /// Ordered alternative sources.
    pub sources: Vec<CompiledSource>,
}

/// A bound input set of a task instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledInputSet {
    /// Set name.
    pub name: String,
    /// Dataflow slots.
    pub objects: Vec<CompiledObjectSlot>,
    /// Notification dependencies.
    pub notifications: Vec<CompiledNotification>,
}

/// Whether a task is a leaf (externally implemented) or a nested compound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskBody {
    /// Externally implemented; the engine binds `implementation["code"]`
    /// at run time.
    Leaf,
    /// A nested compound scope.
    Scope(CompiledScope),
}

/// One task instance within a scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledTask {
    /// Instance name (unique within the scope).
    pub name: String,
    /// Task class name.
    pub class: String,
    /// Implementation hints (`code`, `location`, …).
    pub implementation: BTreeMap<String, String>,
    /// Bound input sets in binding order.
    pub input_sets: Vec<CompiledInputSet>,
    /// Leaf or nested scope.
    pub body: TaskBody,
}

impl CompiledTask {
    /// The `code` implementation binding, if present.
    pub fn code(&self) -> Option<&str> {
        self.implementation.get("code").map(String::as_str)
    }

    /// Whether this is a nested compound.
    pub fn is_compound(&self) -> bool {
        matches!(self.body, TaskBody::Scope(_))
    }
}

/// One output mapping of a compound scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledOutput {
    /// Output name.
    pub name: String,
    /// Output kind.
    pub kind: OutputKind,
    /// Object mappings.
    pub objects: Vec<CompiledObjectSlot>,
    /// Notification conditions.
    pub notifications: Vec<CompiledNotification>,
}

/// The expansion of one compound task instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledScope {
    /// The compound's instance name.
    pub name: String,
    /// Its task class.
    pub class: String,
    /// Constituents in declaration order.
    pub tasks: Vec<CompiledTask>,
    /// Output mappings in declaration order (first satisfied wins).
    pub outputs: Vec<CompiledOutput>,
}

impl CompiledScope {
    /// Finds a constituent by name.
    pub fn task(&self, name: &str) -> Option<&CompiledTask> {
        self.tasks.iter().find(|t| t.name == name)
    }
}

/// A compiled, executable workflow schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Object class names.
    pub classes: Vec<String>,
    /// Resolved task classes by name.
    pub task_classes: BTreeMap<String, TaskClassInfo>,
    /// The root compound scope.
    pub root: CompiledScope,
}

impl Schema {
    /// Looks up a task class.
    pub fn task_class(&self, name: &str) -> Option<&TaskClassInfo> {
        self.task_classes.get(name)
    }

    /// Slash-joined paths of every task instance, depth first
    /// (e.g. `tripReservation/businessReservation/dataAcquisition`).
    pub fn task_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(scope: &CompiledScope, prefix: &str, out: &mut Vec<String>) {
            for task in &scope.tasks {
                let path = format!("{prefix}/{}", task.name);
                out.push(path.clone());
                if let TaskBody::Scope(inner) = &task.body {
                    walk(inner, &path, out);
                }
            }
        }
        walk(&self.root, &self.root.name, &mut out);
        out
    }

    /// Number of leaf (externally implemented) tasks.
    pub fn leaf_count(&self) -> usize {
        fn count(scope: &CompiledScope) -> usize {
            scope
                .tasks
                .iter()
                .map(|t| match &t.body {
                    TaskBody::Leaf => 1,
                    TaskBody::Scope(inner) => count(inner),
                })
                .sum()
        }
        count(&self.root)
    }
}

/// Compiles a checked script into the schema rooted at the named
/// top-level compound task.
///
/// # Errors
///
/// Reports a missing/ambiguous root or leftover template instances
/// (templates must be [`template::expand`]ed before checking).
pub fn compile(checked: &Checked<'_>, root: &str) -> Result<Schema, Diagnostics> {
    let mut diags = Diagnostics::new();
    let script = checked.script();

    let Some(root_decl) = script.find_compound(root) else {
        let mut diags = Diagnostics::new();
        diags.push(Diagnostic::error_global(format!(
            "no top-level compoundtask named `{root}`"
        )));
        return Err(diags);
    };

    let task_classes: BTreeMap<String, TaskClassInfo> = checked
        .task_classes()
        .iter()
        .map(|(name, tc)| ((*name).to_string(), lower_task_class(tc)))
        .collect();

    let root_scope = lower_compound(root_decl, &task_classes, &mut diags);

    if diags.has_errors() {
        return Err(diags);
    }
    Ok(Schema {
        classes: checked.classes().keys().map(|s| (*s).to_string()).collect(),
        task_classes,
        root: root_scope,
    })
}

/// Front-end pipeline: parse, expand templates, check, compile.
///
/// # Errors
///
/// Any diagnostics from any stage.
///
/// ```
/// let schema = flowscript_core::schema::compile_source(
///     flowscript_core::samples::ORDER_PROCESSING,
///     "processOrderApplication",
/// )?;
/// assert_eq!(schema.leaf_count(), 4);
/// # Ok::<(), flowscript_core::Diagnostics>(())
/// ```
pub fn compile_source(source: &str, root: &str) -> Result<Schema, Diagnostics> {
    let script = crate::parse(source)?;
    let expanded = template::expand(&script)?;
    let checked = sema::check(&expanded)?;
    compile(&checked, root)
}

fn lower_task_class(tc: &ast::TaskClassDecl) -> TaskClassInfo {
    TaskClassInfo {
        name: tc.name.name.clone(),
        input_sets: tc
            .input_sets
            .iter()
            .map(|set| InputSetInfo {
                name: set.name.name.clone(),
                objects: set.objects.iter().map(lower_object_sig).collect(),
            })
            .collect(),
        outputs: tc
            .outputs
            .iter()
            .map(|output| OutputInfo {
                name: output.name.name.clone(),
                kind: output.kind,
                objects: output.objects.iter().map(lower_object_sig).collect(),
            })
            .collect(),
        atomic: tc.is_atomic(),
    }
}

fn lower_object_sig(sig: &ast::ObjectSig) -> ObjectInfo {
    ObjectInfo {
        name: sig.name.name.clone(),
        class: sig.class.name.clone(),
    }
}

fn lower_compound(
    compound: &ast::CompoundTaskDecl,
    task_classes: &BTreeMap<String, TaskClassInfo>,
    diags: &mut Diagnostics,
) -> CompiledScope {
    let self_name = compound.name.as_str();
    let tasks = compound
        .constituents
        .iter()
        .filter_map(|constituent| match constituent {
            Constituent::Task(task) => Some(lower_task(task, self_name, task_classes, diags)),
            Constituent::Compound(inner) => {
                let scope = lower_compound(inner, task_classes, diags);
                Some(CompiledTask {
                    name: inner.name.name.clone(),
                    class: inner.class.name.clone(),
                    implementation: BTreeMap::new(),
                    input_sets: lower_input_sets(
                        &inner.input_sets,
                        inner.name.as_str(),
                        self_name,
                        task_classes,
                        diags,
                    ),
                    body: TaskBody::Scope(scope),
                })
            }
            Constituent::TemplateInstance(instance) => {
                diags.push(Diagnostic::error(
                    format!(
                        "template instance `{}` not expanded before compilation",
                        instance.name
                    ),
                    instance.name.span,
                ));
                None
            }
        })
        .collect();

    let outputs = compound
        .outputs
        .iter()
        .map(|mapping| {
            let mut objects = Vec::new();
            let mut notifications = Vec::new();
            for element in &mapping.elements {
                match element {
                    OutputElem::Object(binding) => {
                        objects.push(lower_object_slot(
                            binding,
                            &mapping.name.name,
                            compound.class.as_str(),
                            SlotSide::Output,
                            self_name,
                            task_classes,
                            diags,
                        ));
                    }
                    OutputElem::Notification(binding) => {
                        notifications.push(CompiledNotification {
                            sources: binding
                                .sources
                                .iter()
                                .map(|s| CompiledSource {
                                    task: s.task.name.clone(),
                                    is_self: s.task.as_str() == self_name,
                                    object: None,
                                    cond: CompiledCond::Output(s.outcome.name.clone()),
                                })
                                .collect(),
                        });
                    }
                }
            }
            CompiledOutput {
                name: mapping.name.name.clone(),
                kind: mapping.kind,
                objects,
                notifications,
            }
        })
        .collect();

    CompiledScope {
        name: compound.name.name.clone(),
        class: compound.class.name.clone(),
        tasks,
        outputs,
    }
}

/// Compiles a single parsed task declaration into a [`CompiledTask`]
/// relative to an enclosing compound named `enclosing` — used by dynamic
/// reconfiguration to add tasks to running instances.
///
/// # Errors
///
/// Reports unknown task classes or unresolvable unconditioned sources.
pub fn compile_task_fragment(
    task: &ast::TaskDecl,
    enclosing: &str,
    task_classes: &BTreeMap<String, TaskClassInfo>,
) -> Result<CompiledTask, Diagnostics> {
    let mut diags = Diagnostics::new();
    if !task_classes.contains_key(task.class.as_str()) {
        diags.push(Diagnostic::error(
            format!("unknown taskclass `{}`", task.class),
            task.class.span,
        ));
        return Err(diags);
    }
    let compiled = lower_task(task, enclosing, task_classes, &mut diags);
    if diags.has_errors() {
        Err(diags)
    } else {
        Ok(compiled)
    }
}

fn lower_task(
    task: &ast::TaskDecl,
    self_name: &str,
    task_classes: &BTreeMap<String, TaskClassInfo>,
    diags: &mut Diagnostics,
) -> CompiledTask {
    CompiledTask {
        name: task.name.name.clone(),
        class: task.class.name.clone(),
        implementation: task
            .implementation
            .iter()
            .map(|pair| (pair.key.clone(), pair.value.clone()))
            .collect(),
        input_sets: lower_input_sets(
            &task.input_sets,
            task.class.as_str(),
            self_name,
            task_classes,
            diags,
        ),
        body: TaskBody::Leaf,
    }
}

fn lower_input_sets(
    bindings: &[ast::InputSetBinding],
    class_name: &str,
    self_name: &str,
    task_classes: &BTreeMap<String, TaskClassInfo>,
    diags: &mut Diagnostics,
) -> Vec<CompiledInputSet> {
    bindings
        .iter()
        .map(|binding| {
            let mut objects = Vec::new();
            let mut notifications = Vec::new();
            for element in &binding.elements {
                match element {
                    InputElem::Object(object) => {
                        objects.push(lower_object_slot(
                            object,
                            &binding.name.name,
                            class_name,
                            SlotSide::Input,
                            self_name,
                            task_classes,
                            diags,
                        ));
                    }
                    InputElem::Notification(notification) => {
                        notifications.push(CompiledNotification {
                            sources: notification
                                .sources
                                .iter()
                                .map(|s| CompiledSource {
                                    task: s.task.name.clone(),
                                    is_self: s.task.as_str() == self_name,
                                    object: None,
                                    cond: CompiledCond::Output(s.outcome.name.clone()),
                                })
                                .collect(),
                        });
                    }
                }
            }
            CompiledInputSet {
                name: binding.name.name.clone(),
                objects,
                notifications,
            }
        })
        .collect()
}

enum SlotSide {
    Input,
    Output,
}

fn lower_object_slot(
    binding: &ast::ObjectBinding,
    container: &str,
    class_name: &str,
    side: SlotSide,
    self_name: &str,
    task_classes: &BTreeMap<String, TaskClassInfo>,
    diags: &mut Diagnostics,
) -> CompiledObjectSlot {
    // The slot's class comes from the consumer's signature.
    let class = task_classes
        .get(class_name)
        .and_then(|tc| match side {
            SlotSide::Input => tc
                .input_set(container)
                .and_then(|set| set.objects.iter().find(|o| o.name == binding.name.name))
                .map(|o| o.class.clone()),
            SlotSide::Output => tc
                .output(container)
                .and_then(|out| out.objects.iter().find(|o| o.name == binding.name.name))
                .map(|o| o.class.clone()),
        })
        .unwrap_or_default();

    let sources = binding
        .sources
        .iter()
        .map(|source| {
            let cond = match &source.cond {
                SourceCond::Input(set) => CompiledCond::Input(set.name.clone()),
                SourceCond::Output(output) => CompiledCond::Output(output.name.clone()),
                SourceCond::Any => {
                    // Expand to the producer's candidate outputs. The
                    // producer's class is unknown here only if sema was
                    // skipped; report rather than guess.
                    let candidates = producer_outputs_with_object(
                        source.task.as_str(),
                        source.object.as_str(),
                        self_name,
                        task_classes,
                    );
                    if candidates.is_empty() {
                        diags.push(Diagnostic::error(
                            format!(
                                "cannot resolve unconditioned source `{} of task {}`",
                                source.object, source.task
                            ),
                            source.object.span,
                        ));
                    }
                    CompiledCond::AnyOf(candidates)
                }
            };
            CompiledSource {
                task: source.task.name.clone(),
                is_self: source.task.as_str() == self_name,
                object: Some(source.object.name.clone()),
                cond,
            }
        })
        .collect();

    CompiledObjectSlot {
        name: binding.name.name.clone(),
        class,
        sources,
    }
}

/// All non-repeat outputs of `task`'s class carrying `object`.
///
/// The producer's class cannot be resolved from here by name alone (it
/// needs the scope), so this helper searches *all* task classes that have
/// an instance with this name — compile runs after sema, which guarantees
/// the reference is unambiguous within its scope. To stay self-contained
/// we approximate: any class with a matching output qualifies; sema has
/// already pinned the exact one.
fn producer_outputs_with_object(
    _task: &str,
    object: &str,
    _self_name: &str,
    task_classes: &BTreeMap<String, TaskClassInfo>,
) -> Vec<String> {
    let mut out = Vec::new();
    for tc in task_classes.values() {
        for output in &tc.outputs {
            if output.kind != OutputKind::RepeatOutcome
                && output.objects.iter().any(|o| o.name == object)
                && !out.contains(&output.name)
            {
                out.push(output.name.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn compiles_every_sample() {
        for (name, source) in samples::all() {
            let schema = compile_source(source, samples::root_of(name))
                .unwrap_or_else(|d| panic!("{name}: {d}"));
            assert!(!schema.root.tasks.is_empty(), "{name} has no tasks");
        }
    }

    #[test]
    fn order_processing_shape() {
        let schema = compile_source(samples::ORDER_PROCESSING, "processOrderApplication").unwrap();
        assert_eq!(schema.leaf_count(), 4);
        assert_eq!(schema.root.tasks.len(), 4);
        let dispatch = schema.root.task("dispatch").unwrap();
        assert_eq!(dispatch.code(), Some("refDispatch"));
        assert!(!dispatch.is_compound());
        // dispatch has one notification and one dataflow slot.
        let main = &dispatch.input_sets[0];
        assert_eq!(main.objects.len(), 1);
        assert_eq!(main.notifications.len(), 1);
        assert_eq!(main.objects[0].class, "StockInfo");
        // The Dispatch class is atomic (abort outcome dispatchFailed).
        assert!(schema.task_class("Dispatch").unwrap().atomic);
    }

    #[test]
    fn business_trip_nesting_and_paths() {
        let schema = compile_source(samples::BUSINESS_TRIP, "tripReservation").unwrap();
        let paths = schema.task_paths();
        assert!(paths.contains(&"tripReservation/businessReservation".to_string()));
        assert!(paths.contains(
            &"tripReservation/businessReservation/checkFlightReservation/airlineQueryB".to_string()
        ));
        // Leaves: dataAcquisition, 3 airline queries, flightReservation,
        // hotelReservation, flightCancellation, printTickets.
        assert_eq!(schema.leaf_count(), 8, "{paths:?}");
        let br = schema.root.task("businessReservation").unwrap();
        assert!(br.is_compound());
        // The compound's own input binding has two alternatives: parent
        // input and its own repeat outcome.
        assert_eq!(br.input_sets[0].objects[0].sources.len(), 2);
        assert!(
            br.input_sets[0].objects[0].sources[1].cond
                == CompiledCond::Output("retry".to_string())
        );
    }

    #[test]
    fn self_references_marked() {
        let schema = compile_source(samples::SERVICE_IMPACT, "serviceImpactApplication").unwrap();
        let correlator = schema.root.task("alarmCorrelator").unwrap();
        let source = &correlator.input_sets[0].objects[0].sources[0];
        assert!(source.is_self);
        assert_eq!(source.cond, CompiledCond::Input("main".into()));
    }

    #[test]
    fn any_condition_expanded() {
        let schema = compile_source(samples::SERVICE_IMPACT, "serviceImpactApplication").unwrap();
        let resolution = schema.root.task("serviceImpactResolution").unwrap();
        let source = &resolution.input_sets[0].objects[0].sources[0];
        match &source.cond {
            CompiledCond::AnyOf(candidates) => {
                assert!(candidates.contains(&"foundImpacts".to_string()));
            }
            other => panic!("expected AnyOf, got {other:?}"),
        }
    }

    #[test]
    fn missing_root_reported() {
        let err = compile_source(samples::ORDER_PROCESSING, "ghost").unwrap_err();
        assert!(err.to_string().contains("no top-level compoundtask"));
    }

    #[test]
    fn mark_outputs_compiled() {
        let schema = compile_source(samples::BUSINESS_TRIP, "tripReservation").unwrap();
        let to_pay = schema
            .root
            .outputs
            .iter()
            .find(|o| o.name == "toPay")
            .unwrap();
        assert_eq!(to_pay.kind, OutputKind::Mark);
        assert_eq!(to_pay.objects[0].class, "Cost");
    }
}
