//! Task template expansion (paper §4.5).
//!
//! `tasktemplate` declarations are parameterised task definitions; an
//! instantiation `t of tasktemplate tt(a, b)` becomes an ordinary task
//! whose source-task references have the formal parameters replaced by the
//! argument task names. [`expand`] rewrites a script so that no template
//! instances remain; the result is checked and compiled like any other
//! script.

use std::collections::BTreeMap;

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics};

/// Expands every template instantiation in `script`.
///
/// Template declarations are retained (they are harmless and keep the
/// script self-describing); instances become [`TaskDecl`]s.
///
/// # Errors
///
/// Unknown templates or argument-count mismatches (normally caught
/// earlier by [`crate::sema::check`]).
///
/// ```
/// let source = r#"
///     class C;
///     taskclass P {
///         inputs { input main { seed of class C } };
///         outputs { outcome done { out of class C } }
///     }
///     taskclass W {
///         inputs { input main { in of class C } };
///         outputs { outcome done { } }
///     }
///     tasktemplate task watcher of taskclass W {
///         parameters { upstream };
///         inputs { input main { inputobject in from { out of task upstream if output done } } }
///     }
///     task p of taskclass P {
///         inputs { input main { inputobject seed from { seed of task p if input main } } }
///     }
///     w1 of tasktemplate watcher(p)
/// "#;
/// let script = flowscript_core::parse(source)?;
/// let expanded = flowscript_core::template::expand(&script)?;
/// // The instance became a plain task.
/// assert!(expanded.items.iter().any(|i| matches!(
///     i,
///     flowscript_core::ast::Item::Task(t) if t.name.as_str() == "w1"
/// )));
/// # Ok::<(), flowscript_core::Diagnostics>(())
/// ```
pub fn expand(script: &Script) -> Result<Script, Diagnostics> {
    let templates: BTreeMap<&str, &TemplateDecl> = script
        .items
        .iter()
        .filter_map(|item| match item {
            Item::Template(t) => Some((t.name.as_str(), t)),
            _ => None,
        })
        .collect();

    let mut diags = Diagnostics::new();
    let mut items = Vec::with_capacity(script.items.len());
    for item in &script.items {
        match item {
            Item::TemplateInstance(instance) => {
                match instantiate(instance, &templates, &mut diags) {
                    Some(task) => items.push(Item::Task(task)),
                    None => items.push(item.clone()),
                }
            }
            Item::Compound(compound) => {
                items.push(Item::Compound(expand_compound(
                    compound, &templates, &mut diags,
                )));
            }
            other => items.push(other.clone()),
        }
    }
    if diags.has_errors() {
        Err(diags)
    } else {
        Ok(Script { items })
    }
}

fn expand_compound(
    compound: &CompoundTaskDecl,
    templates: &BTreeMap<&str, &TemplateDecl>,
    diags: &mut Diagnostics,
) -> CompoundTaskDecl {
    let mut out = compound.clone();
    out.constituents = compound
        .constituents
        .iter()
        .map(|constituent| match constituent {
            Constituent::TemplateInstance(instance) => {
                match instantiate(instance, templates, diags) {
                    Some(task) => Constituent::Task(task),
                    None => constituent.clone(),
                }
            }
            Constituent::Compound(inner) => {
                Constituent::Compound(expand_compound(inner, templates, diags))
            }
            Constituent::Task(_) => constituent.clone(),
        })
        .collect();
    out
}

fn instantiate(
    instance: &TemplateInstanceDecl,
    templates: &BTreeMap<&str, &TemplateDecl>,
    diags: &mut Diagnostics,
) -> Option<TaskDecl> {
    let Some(template) = templates.get(instance.template.as_str()) else {
        diags.push(Diagnostic::error(
            format!("unknown tasktemplate `{}`", instance.template),
            instance.template.span,
        ));
        return None;
    };
    if template.params.len() != instance.args.len() {
        diags.push(Diagnostic::error(
            format!(
                "tasktemplate `{}` expects {} argument(s), got {}",
                instance.template,
                template.params.len(),
                instance.args.len()
            ),
            instance.name.span,
        ));
        return None;
    }
    let substitution: BTreeMap<&str, &Ident> = template
        .params
        .iter()
        .map(|p| p.as_str())
        .zip(instance.args.iter())
        .collect();

    let input_sets = template
        .input_sets
        .iter()
        .map(|binding| substitute_binding(binding, &substitution))
        .collect();

    Some(TaskDecl {
        name: instance.name.clone(),
        class: template.class.clone(),
        implementation: template.implementation.clone(),
        input_sets,
        span: instance.span,
    })
}

fn substitute_binding(
    binding: &InputSetBinding,
    substitution: &BTreeMap<&str, &Ident>,
) -> InputSetBinding {
    InputSetBinding {
        name: binding.name.clone(),
        elements: binding
            .elements
            .iter()
            .map(|element| match element {
                InputElem::Object(object) => InputElem::Object(ObjectBinding {
                    name: object.name.clone(),
                    sources: object
                        .sources
                        .iter()
                        .map(|source| ObjectSource {
                            object: source.object.clone(),
                            task: substitute(&source.task, substitution),
                            cond: source.cond.clone(),
                        })
                        .collect(),
                }),
                InputElem::Notification(notification) => {
                    InputElem::Notification(NotificationBinding {
                        sources: notification
                            .sources
                            .iter()
                            .map(|source| NotifSource {
                                task: substitute(&source.task, substitution),
                                outcome: source.outcome.clone(),
                            })
                            .collect(),
                    })
                }
            })
            .collect(),
    }
}

fn substitute(task: &Ident, substitution: &BTreeMap<&str, &Ident>) -> Ident {
    match substitution.get(task.as_str()) {
        Some(argument) => Ident {
            name: argument.name.clone(),
            span: task.span,
        },
        None => task.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    const TEMPLATE_SCRIPT: &str = r#"
        class C;
        taskclass P {
            inputs { input main { seed of class C } };
            outputs { outcome done { out of class C } }
        }
        taskclass Join {
            inputs { input main { left of class C; right of class C } };
            outputs { outcome done { } }
        }
        tasktemplate task joiner of taskclass Join {
            parameters { lhs; rhs };
            implementation { "code" is "refJoin" };
            inputs {
                input main {
                    inputobject left from { out of task lhs if output done };
                    inputobject right from { out of task rhs if output done }
                }
            }
        }
        task p1 of taskclass P {
            inputs { input main { inputobject seed from { seed of task p1 if input main } } }
        }
        task p2 of taskclass P {
            inputs { input main { inputobject seed from { seed of task p2 if input main } } }
        }
        j of tasktemplate joiner(p1, p2)
    "#;

    #[test]
    fn instance_becomes_task_with_substituted_sources() {
        let script = parse(TEMPLATE_SCRIPT).unwrap();
        let expanded = expand(&script).unwrap();
        let task = expanded
            .items
            .iter()
            .find_map(|item| match item {
                Item::Task(t) if t.name.as_str() == "j" => Some(t),
                _ => None,
            })
            .expect("expanded task j");
        assert_eq!(task.class.as_str(), "Join");
        assert_eq!(task.implementation[0].value, "refJoin");
        let InputElem::Object(left) = &task.input_sets[0].elements[0] else {
            panic!();
        };
        assert_eq!(left.sources[0].task.as_str(), "p1");
        let InputElem::Object(right) = &task.input_sets[0].elements[1] else {
            panic!();
        };
        assert_eq!(right.sources[0].task.as_str(), "p2");
    }

    #[test]
    fn expanded_script_passes_sema() {
        let script = parse(TEMPLATE_SCRIPT).unwrap();
        let expanded = expand(&script).unwrap();
        crate::sema::check(&expanded).expect("expanded script is valid");
    }

    #[test]
    fn arity_mismatch_reported() {
        let source = TEMPLATE_SCRIPT.replace("joiner(p1, p2)", "joiner(p1)");
        let script = parse(&source).unwrap();
        let err = expand(&script).unwrap_err();
        assert!(err.to_string().contains("expects 2 argument(s), got 1"));
    }

    #[test]
    fn unknown_template_reported() {
        let source = TEMPLATE_SCRIPT.replace(
            "j of tasktemplate joiner(p1, p2)",
            "j of tasktemplate ghost(p1, p2)",
        );
        let script = parse(&source).unwrap();
        let err = expand(&script).unwrap_err();
        assert!(err.to_string().contains("unknown tasktemplate `ghost`"));
    }

    #[test]
    fn scripts_without_templates_unchanged() {
        let script = parse(crate::samples::ORDER_PROCESSING).unwrap();
        let expanded = expand(&script).unwrap();
        assert_eq!(script, expanded);
    }
}
