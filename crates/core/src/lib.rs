#![warn(missing_docs)]
//! The flowscript language: the scripting language of
//! *"A Language for Specifying the Composition of Reliable Distributed
//! Applications"* (Ranno, Shrivastava, Wheater — ICDCS'98).
//!
//! A script composes an application out of *tasks* (units of computation)
//! connected by *dataflow* and *notification* dependencies. The constructs
//! (paper §4):
//!
//! - `class C;` — declares an opaque object class,
//! - `taskclass T { inputs {…}; outputs {…} }` — a task signature with
//!   named *input sets* and four kinds of outputs (`outcome`,
//!   `abort outcome`, `repeat outcome`, `mark`),
//! - `task t of taskclass T { implementation {…}; inputs {…} }` — an
//!   instance with run-time-bound implementation and per-input
//!   *alternative source lists*,
//! - `compoundtask c of taskclass T { … constituent tasks … outputs {…} }`
//!   — hierarchical composition with output mappings,
//! - `tasktemplate … parameters {…}` and `t of tasktemplate tt(a, b)` —
//!   parameterised task definitions.
//!
//! This crate is the front half of the system: text → [`parse`] →
//! [`ast`] → [`sema::check`] → [`template::expand`] → [`schema::compile`]
//! → a [`schema::Schema`] executed by `flowscript-engine`. It also
//! provides a canonical formatter ([`fmt`]), Graphviz export ([`dot`]) and
//! a programmatic script [`builder`].
//!
//! # Examples
//!
//! ```
//! let source = r#"
//!     class Order;
//!     taskclass Check {
//!         inputs { input main { order of class Order } };
//!         outputs { outcome ok { order of class Order }; abort outcome failed { } }
//!     }
//! "#;
//! let script = flowscript_core::parse(source)?;
//! let checked = flowscript_core::sema::check(&script)?;
//! assert_eq!(checked.task_classes().len(), 1);
//! # Ok::<(), flowscript_core::Diagnostics>(())
//! ```

pub mod ast;
pub mod builder;
pub mod diag;
pub mod dot;
pub mod fmt;
mod lexer;
mod parser;
pub mod samples;
pub mod schema;
pub mod sema;
mod span;
pub mod template;
mod token;

pub use diag::{Diagnostic, Diagnostics, Severity};
pub use parser::{parse, parse_task_decl};
pub use span::{Pos, Span};

#[cfg(test)]
mod tests {
    #[test]
    fn crate_example_compiles_order_pipeline() {
        let script = crate::parse(crate::samples::ORDER_PROCESSING).expect("parse");
        let checked = crate::sema::check(&script).expect("sema");
        assert!(checked.task_classes().len() >= 5);
    }
}
