//! Graphviz export of compiled schemas.
//!
//! Mirrors the paper's graphical notation (§2, Fig. 1/2): solid edges for
//! dataflow dependencies, dashed edges for notifications, nested clusters
//! for compound tasks, double-bordered output nodes for abort outcomes and
//! dashed-border nodes for marks.

use std::fmt::Write as _;

use crate::ast::OutputKind;
use crate::schema::{CompiledScope, CompiledSource, Schema, TaskBody};

/// Renders the schema as a Graphviz `digraph`.
pub fn render(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", schema.root.name);
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
    render_scope(&schema.root, &schema.root.name, 1, &mut out);
    out.push_str("}\n");
    out
}

fn node_id(path: &str) -> String {
    format!("\"{path}\"")
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn render_scope(scope: &CompiledScope, path: &str, level: usize, out: &mut String) {
    indent(level, out);
    let _ = writeln!(out, "subgraph \"cluster_{path}\" {{");
    indent(level + 1, out);
    let _ = writeln!(out, "label=\"{} : {}\";", scope.name, scope.class);

    // A boundary node representing the compound's own inputs.
    indent(level + 1, out);
    let _ = writeln!(
        out,
        "{} [label=\"inputs\", shape=cds, style=filled, fillcolor=lightgrey];",
        node_id(&format!("{path}:inputs"))
    );

    for task in &scope.tasks {
        let task_path = format!("{path}/{}", task.name);
        match &task.body {
            TaskBody::Leaf => {
                indent(level + 1, out);
                let _ = writeln!(
                    out,
                    "{} [label=\"{} : {}\"];",
                    node_id(&task_path),
                    task.name,
                    task.class
                );
            }
            TaskBody::Scope(inner) => {
                render_scope(inner, &task_path, level + 1, out);
            }
        }
    }

    // Output nodes, styled by kind.
    for output in &scope.outputs {
        let style = match output.kind {
            OutputKind::Outcome => "shape=ellipse",
            OutputKind::AbortOutcome => "shape=ellipse, peripheries=2",
            OutputKind::RepeatOutcome => "shape=ellipse, style=dotted",
            OutputKind::Mark => "shape=ellipse, style=dashed",
        };
        indent(level + 1, out);
        let _ = writeln!(
            out,
            "{} [label=\"{}\", {}];",
            node_id(&format!("{path}:{}", output.name)),
            output.name,
            style
        );
    }

    // Dependency edges into each constituent.
    for task in &scope.tasks {
        let task_path = format!("{path}/{}", task.name);
        let target = anchor(&task_path, task);
        for set in &task.input_sets {
            for slot in &set.objects {
                for source in &slot.sources {
                    render_edge(scope, path, source, &target, false, level + 1, out);
                }
            }
            for notification in &set.notifications {
                for source in &notification.sources {
                    render_edge(scope, path, source, &target, true, level + 1, out);
                }
            }
        }
    }

    // Edges into the scope's output nodes.
    for output in &scope.outputs {
        let target = node_id(&format!("{path}:{}", output.name));
        for slot in &output.objects {
            for source in &slot.sources {
                render_edge(scope, path, source, &target, false, level + 1, out);
            }
        }
        for notification in &output.notifications {
            for source in &notification.sources {
                render_edge(scope, path, source, &target, true, level + 1, out);
            }
        }
    }

    indent(level, out);
    out.push_str("}\n");
}

/// The node an edge should point at for a task (compounds use their
/// inputs boundary node).
fn anchor(task_path: &str, task: &crate::schema::CompiledTask) -> String {
    match task.body {
        TaskBody::Leaf => node_id(task_path),
        TaskBody::Scope(_) => node_id(&format!("{task_path}:inputs")),
    }
}

fn render_edge(
    scope: &CompiledScope,
    path: &str,
    source: &CompiledSource,
    target: &str,
    notification: bool,
    level: usize,
    out: &mut String,
) {
    let from = if source.is_self {
        node_id(&format!("{path}:inputs"))
    } else {
        let producer_path = format!("{path}/{}", source.task);
        match scope.task(&source.task) {
            Some(producer) if producer.is_compound() => {
                // Edges from a compound leave via its output nodes when the
                // condition names one, otherwise from its inputs node.
                match &source.cond {
                    crate::schema::CompiledCond::Output(name) => {
                        node_id(&format!("{producer_path}:{name}"))
                    }
                    _ => node_id(&format!("{producer_path}:inputs")),
                }
            }
            _ => node_id(&producer_path),
        }
    };
    let style = if notification {
        "style=dashed"
    } else {
        "style=solid"
    };
    let label = match &source.cond {
        crate::schema::CompiledCond::Output(name) => name.clone(),
        crate::schema::CompiledCond::Input(name) => format!("input {name}"),
        crate::schema::CompiledCond::AnyOf(_) => "any".to_string(),
    };
    indent(level, out);
    let _ = writeln!(out, "{from} -> {target} [{style}, label=\"{label}\"];");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use crate::schema::compile_source;

    #[test]
    fn renders_order_processing() {
        let schema = compile_source(samples::ORDER_PROCESSING, "processOrderApplication").unwrap();
        let dot = render(&schema);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("dispatch : Dispatch"));
        // Notifications are dashed, dataflow solid.
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("style=solid"));
        // Every brace balances.
        assert_eq!(
            dot.matches('{').count(),
            dot.matches('}').count(),
            "unbalanced braces:\n{dot}"
        );
    }

    #[test]
    fn compound_nesting_produces_clusters() {
        let schema = compile_source(samples::BUSINESS_TRIP, "tripReservation").unwrap();
        let dot = render(&schema);
        assert!(dot.contains("cluster_tripReservation/businessReservation"));
        assert!(dot.contains("cluster_tripReservation/businessReservation/checkFlightReservation"));
        // Marks are dashed ellipses; repeats dotted.
        assert!(dot.contains("style=dashed];") || dot.contains("style=dashed]"));
        assert!(dot.contains("style=dotted"));
    }

    #[test]
    fn abort_outcomes_double_bordered() {
        let schema = compile_source(samples::QUICKSTART, "pipeline").unwrap();
        let dot = render(&schema);
        // The quickstart has no abort outcome; the diamond has none either;
        // order processing's compound outputs are plain outcomes, so check
        // the style table by rendering a synthetic scope instead.
        assert!(!dot.contains("peripheries=2"));
        let schema = compile_source(samples::ORDER_PROCESSING, "processOrderApplication").unwrap();
        let dot = render(&schema);
        // The compound's own outputs are outcome-kind; abort outcomes exist
        // only on leaf task classes, which do not get output nodes.
        assert!(dot.contains("orderCancelled"));
    }
}
