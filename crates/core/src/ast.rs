//! Abstract syntax of flowscript scripts (paper §4).
//!
//! Every node keeps its [`Span`] for diagnostics; spans are ignored by
//! `PartialEq` on [`Ident`] so that structurally equal scripts compare
//! equal regardless of layout (used by the formatter round-trip tests).

use std::fmt;

use crate::span::Span;

/// An identifier with its source location. Equality and hashing consider
/// only the name.
#[derive(Debug, Clone, Eq)]
pub struct Ident {
    /// The identifier text.
    pub name: String,
    /// Source location (synthetic for generated nodes).
    pub span: Span,
}

impl Ident {
    /// Creates an identifier with a synthetic span (builder/templates).
    pub fn synthetic(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            span: Span::SYNTHETIC,
        }
    }

    /// The identifier text.
    pub fn as_str(&self) -> &str {
        &self.name
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl std::hash::Hash for Ident {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for Ident {
    fn from(name: &str) -> Self {
        Ident::synthetic(name)
    }
}

/// A whole script: an ordered list of top-level items.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// Top-level declarations in source order.
    pub items: Vec<Item>,
}

impl Script {
    /// All object class declarations.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Class(c) => Some(c),
            _ => None,
        })
    }

    /// All task class declarations.
    pub fn task_classes(&self) -> impl Iterator<Item = &TaskClassDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::TaskClass(tc) => Some(tc),
            _ => None,
        })
    }

    /// All top-level task instances (simple and compound).
    pub fn tasks(&self) -> impl Iterator<Item = &Ident> {
        self.items.iter().filter_map(|i| match i {
            Item::Task(t) => Some(&t.name),
            Item::Compound(c) => Some(&c.name),
            Item::TemplateInstance(t) => Some(&t.name),
            _ => None,
        })
    }

    /// Finds a top-level compound task by name.
    pub fn find_compound(&self, name: &str) -> Option<&CompoundTaskDecl> {
        self.items.iter().find_map(|i| match i {
            Item::Compound(c) if c.name.name == name => Some(c),
            _ => None,
        })
    }

    /// Finds a task class declaration by name.
    pub fn find_task_class(&self, name: &str) -> Option<&TaskClassDecl> {
        self.task_classes().find(|tc| tc.name.name == name)
    }
}

/// One top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `class C;`
    Class(ClassDecl),
    /// `taskclass T { inputs {…}; outputs {…} }`
    TaskClass(TaskClassDecl),
    /// `task t of taskclass T {…}`
    Task(TaskDecl),
    /// `compoundtask c of taskclass T {…}`
    Compound(CompoundTaskDecl),
    /// `tasktemplate task tt of taskclass T { parameters {…}; … }`
    Template(TemplateDecl),
    /// `t of tasktemplate tt(a, b)`
    TemplateInstance(TemplateInstanceDecl),
}

impl Item {
    /// The declared name of this item.
    pub fn name(&self) -> &Ident {
        match self {
            Item::Class(c) => &c.name,
            Item::TaskClass(tc) => &tc.name,
            Item::Task(t) => &t.name,
            Item::Compound(c) => &c.name,
            Item::Template(t) => &t.name,
            Item::TemplateInstance(t) => &t.name,
        }
    }
}

/// `class C;` — an opaque object class. Member operations are external to
/// the script (paper §4.1): scripts only route *references*.
#[derive(Debug, Clone)]
pub struct ClassDecl {
    /// The class name.
    pub name: Ident,
    /// Source range of the declaration.
    pub span: Span,
}

/// `obj of class C` inside a task class signature.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSig {
    /// Object reference name.
    pub name: Ident,
    /// Its declared class.
    pub class: Ident,
}

/// One named input set in a task class signature (paper §4.2: a task may
/// have several; exactly one satisfied set is consumed at start).
#[derive(Debug, Clone, PartialEq)]
pub struct InputSetSig {
    /// The set name (e.g. `main`, `alternative`).
    pub name: Ident,
    /// Required object references.
    pub objects: Vec<ObjectSig>,
}

/// The four output kinds of paper §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputKind {
    /// Final output of the task.
    Outcome,
    /// Termination with *no side effects*; marks the task class atomic.
    AbortOutcome,
    /// Output routed back to restart the task; invisible to other tasks.
    RepeatOutcome,
    /// Early-release output produced *during* execution; a task that has
    /// produced a mark can no longer abort.
    Mark,
}

impl OutputKind {
    /// Script syntax for this kind.
    pub fn keyword(self) -> &'static str {
        match self {
            OutputKind::Outcome => "outcome",
            OutputKind::AbortOutcome => "abort outcome",
            OutputKind::RepeatOutcome => "repeat outcome",
            OutputKind::Mark => "mark",
        }
    }
}

impl fmt::Display for OutputKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One named output in a task class signature.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputSig {
    /// Which of the four kinds.
    pub kind: OutputKind,
    /// Outcome name (e.g. `dispatchCompleted`).
    pub name: Ident,
    /// Object references produced with it.
    pub objects: Vec<ObjectSig>,
}

/// `taskclass T { inputs {…}; outputs {…} }`.
#[derive(Debug, Clone)]
pub struct TaskClassDecl {
    /// The task class name.
    pub name: Ident,
    /// Alternative input sets.
    pub input_sets: Vec<InputSetSig>,
    /// Possible outputs.
    pub outputs: Vec<OutputSig>,
    /// Source range.
    pub span: Span,
}

impl TaskClassDecl {
    /// Finds an input set by name.
    pub fn input_set(&self, name: &str) -> Option<&InputSetSig> {
        self.input_sets.iter().find(|s| s.name.name == name)
    }

    /// Finds an output by name.
    pub fn output(&self, name: &str) -> Option<&OutputSig> {
        self.outputs.iter().find(|o| o.name.name == name)
    }

    /// Whether this class is atomic (declares any abort outcome, §4.2).
    pub fn is_atomic(&self) -> bool {
        self.outputs
            .iter()
            .any(|o| o.kind == OutputKind::AbortOutcome)
    }
}

/// The condition under which a source provides its object/notification.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceCond {
    /// `if input S` — available once the referenced task binds input set
    /// `S`.
    Input(Ident),
    /// `if output O` — available once the referenced task produces output
    /// `O` (an outcome or a mark).
    Output(Ident),
    /// No condition — any (non-abort, non-repeat) output of the task that
    /// carries the object.
    Any,
}

/// One alternative source for an input object or compound output object:
/// `obj of task t [if input S | if output O]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSource {
    /// The object name at the producer.
    pub object: Ident,
    /// The producing task instance (a sibling, or the enclosing compound).
    pub task: Ident,
    /// Availability condition.
    pub cond: SourceCond,
}

/// One alternative source for a notification: `task t if output O`.
#[derive(Debug, Clone, PartialEq)]
pub struct NotifSource {
    /// The notifying task.
    pub task: Ident,
    /// The outcome whose production notifies.
    pub outcome: Ident,
}

/// `inputobject i from { … }` — an input object with its ordered
/// alternative sources (paper §4.3: first available wins).
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectBinding {
    /// The input object name (must exist in the task class signature).
    pub name: Ident,
    /// Ordered alternatives.
    pub sources: Vec<ObjectSource>,
}

/// `notification from { … }` — a temporal dependency with alternatives.
#[derive(Debug, Clone, PartialEq)]
pub struct NotificationBinding {
    /// Ordered alternatives (any one firing satisfies the dependency).
    pub sources: Vec<NotifSource>,
}

/// One element of an input set binding.
#[derive(Debug, Clone, PartialEq)]
pub enum InputElem {
    /// A dataflow dependency.
    Object(ObjectBinding),
    /// A notification dependency.
    Notification(NotificationBinding),
}

/// `input main { … }` within a task instance: the dependencies that
/// satisfy this input set.
#[derive(Debug, Clone, PartialEq)]
pub struct InputSetBinding {
    /// Which declared input set this binds.
    pub name: Ident,
    /// Its dataflow/notification elements.
    pub elements: Vec<InputElem>,
}

/// A `(key, value)` pair from an `implementation { "k" is "v"; … }`
/// clause. The paper names `code`, `location`, `agent`, `deadline`,
/// `priority` as possible keys; the engine interprets `code` (and any
/// others it is taught) at bind time.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplPair {
    /// Implementation keyword (e.g. `code`).
    pub key: String,
    /// Its value (an executable name or a script name).
    pub value: String,
}

/// `task t of taskclass T { implementation {…}; inputs {…} }`.
#[derive(Debug, Clone)]
pub struct TaskDecl {
    /// Instance name.
    pub name: Ident,
    /// Task class name.
    pub class: Ident,
    /// Run-time binding hints.
    pub implementation: Vec<ImplPair>,
    /// Input set bindings.
    pub input_sets: Vec<InputSetBinding>,
    /// Source range.
    pub span: Span,
}

/// `outputobject o from { … }` — maps a compound task's output object to
/// constituent sources.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputElem {
    /// An output object mapping.
    Object(ObjectBinding),
    /// A notification condition for producing the output.
    Notification(NotificationBinding),
}

/// One output mapping of a compound task.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputMapping {
    /// Output kind (must match the task class signature).
    pub kind: OutputKind,
    /// Output name.
    pub name: Ident,
    /// How it is produced from constituents.
    pub elements: Vec<OutputElem>,
}

/// A constituent of a compound task.
#[derive(Debug, Clone, PartialEq)]
pub enum Constituent {
    /// A simple task instance.
    Task(TaskDecl),
    /// A nested compound task.
    Compound(CompoundTaskDecl),
    /// A template instantiation.
    TemplateInstance(TemplateInstanceDecl),
}

impl Constituent {
    /// The constituent's instance name.
    pub fn name(&self) -> &Ident {
        match self {
            Constituent::Task(t) => &t.name,
            Constituent::Compound(c) => &c.name,
            Constituent::TemplateInstance(t) => &t.name,
        }
    }
}

/// `compoundtask c of taskclass T { inputs? constituents… outputs {…} }`
/// (paper §4.4).
#[derive(Debug, Clone)]
pub struct CompoundTaskDecl {
    /// Instance name.
    pub name: Ident,
    /// Task class name.
    pub class: Ident,
    /// Input bindings (absent when the compound is used as a task
    /// implementation — the naming task instance supplies them).
    pub input_sets: Vec<InputSetBinding>,
    /// Constituent task instances.
    pub constituents: Vec<Constituent>,
    /// Output mappings from constituents to the compound's outputs.
    pub outputs: Vec<OutputMapping>,
    /// Source range.
    pub span: Span,
}

impl CompoundTaskDecl {
    /// Finds a constituent by name.
    pub fn constituent(&self, name: &str) -> Option<&Constituent> {
        self.constituents.iter().find(|c| c.name().name == name)
    }
}

/// `tasktemplate task tt of taskclass T { parameters {…}; … }`
/// (paper §4.5).
#[derive(Debug, Clone)]
pub struct TemplateDecl {
    /// Template name.
    pub name: Ident,
    /// Task class of instances.
    pub class: Ident,
    /// Formal parameters (task-name placeholders).
    pub params: Vec<Ident>,
    /// Implementation hints.
    pub implementation: Vec<ImplPair>,
    /// Input bindings, possibly referencing parameters as task names.
    pub input_sets: Vec<InputSetBinding>,
    /// Source range.
    pub span: Span,
}

/// `t of tasktemplate tt(a, b)`.
#[derive(Debug, Clone)]
pub struct TemplateInstanceDecl {
    /// Instance name.
    pub name: Ident,
    /// The template being instantiated.
    pub template: Ident,
    /// Actual task-name arguments.
    pub args: Vec<Ident>,
    /// Source range.
    pub span: Span,
}

/// Equality ignores `span` (structural comparison across reformatting).
impl PartialEq for ClassDecl {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

/// Equality ignores `span` (structural comparison across reformatting).
impl PartialEq for TaskClassDecl {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.input_sets == other.input_sets
            && self.outputs == other.outputs
    }
}

/// Equality ignores `span` (structural comparison across reformatting).
impl PartialEq for TaskDecl {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.class == other.class
            && self.implementation == other.implementation
            && self.input_sets == other.input_sets
    }
}

/// Equality ignores `span` (structural comparison across reformatting).
impl PartialEq for CompoundTaskDecl {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.class == other.class
            && self.input_sets == other.input_sets
            && self.constituents == other.constituents
            && self.outputs == other.outputs
    }
}

/// Equality ignores `span` (structural comparison across reformatting).
impl PartialEq for TemplateDecl {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.class == other.class
            && self.params == other.params
            && self.implementation == other.implementation
            && self.input_sets == other.input_sets
    }
}

/// Equality ignores `span` (structural comparison across reformatting).
impl PartialEq for TemplateInstanceDecl {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.template == other.template && self.args == other.args
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_equality_ignores_span() {
        let a = Ident::synthetic("x");
        let b = Ident {
            name: "x".into(),
            span: Span::SYNTHETIC,
        };
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "x");
        assert_eq!(a.as_str(), "x");
    }

    #[test]
    fn output_kind_keywords() {
        assert_eq!(OutputKind::Outcome.keyword(), "outcome");
        assert_eq!(OutputKind::AbortOutcome.keyword(), "abort outcome");
        assert_eq!(OutputKind::RepeatOutcome.keyword(), "repeat outcome");
        assert_eq!(OutputKind::Mark.keyword(), "mark");
        assert_eq!(OutputKind::Mark.to_string(), "mark");
    }

    #[test]
    fn task_class_atomicity() {
        let atomic = TaskClassDecl {
            name: "T".into(),
            input_sets: vec![],
            outputs: vec![OutputSig {
                kind: OutputKind::AbortOutcome,
                name: "failed".into(),
                objects: vec![],
            }],
            span: Span::SYNTHETIC,
        };
        assert!(atomic.is_atomic());
        let plain = TaskClassDecl {
            name: "T".into(),
            input_sets: vec![],
            outputs: vec![OutputSig {
                kind: OutputKind::Outcome,
                name: "done".into(),
                objects: vec![],
            }],
            span: Span::SYNTHETIC,
        };
        assert!(!plain.is_atomic());
        assert!(plain.output("done").is_some());
        assert!(plain.output("nope").is_none());
    }

    #[test]
    fn script_queries() {
        let script = Script {
            items: vec![
                Item::Class(ClassDecl {
                    name: "C".into(),
                    span: Span::SYNTHETIC,
                }),
                Item::Task(TaskDecl {
                    name: "t1".into(),
                    class: "T".into(),
                    implementation: vec![],
                    input_sets: vec![],
                    span: Span::SYNTHETIC,
                }),
            ],
        };
        assert_eq!(script.classes().count(), 1);
        assert_eq!(script.tasks().count(), 1);
        assert_eq!(script.items[0].name().as_str(), "C");
        assert!(script.find_compound("t1").is_none());
    }
}
