//! Programmatic script construction.
//!
//! Tests and benchmarks often need scripts that would be tedious to write
//! as text (wide fan-outs, deep chains, parameter sweeps). The builder
//! produces [`crate::ast::Script`] values directly, with synthetic spans; the
//! result goes through the same [`crate::sema::check`] /
//! [`crate::schema::compile`] pipeline as parsed text.
//!
//! # Examples
//!
//! ```
//! use flowscript_core::builder::ScriptBuilder;
//!
//! let script = ScriptBuilder::new()
//!     .class("Data")
//!     .taskclass("Stage", |tc| {
//!         tc.input_set("main", &[("in", "Data")])
//!             .outcome("done", &[("out", "Data")])
//!     })
//!     .taskclass("Root", |tc| {
//!         tc.input_set("main", &[("seed", "Data")])
//!             .outcome("done", &[("out", "Data")])
//!     })
//!     .compound("root", "Root", |c| {
//!         c.task("t1", "Stage", |t| {
//!             t.code("ref1")
//!                 .input_set("main", |s| s.object_from_self("in", "root", "main", "seed"))
//!         })
//!         .outcome_mapping("done", |m| m.object_from("out", "out", "t1", "done"))
//!     })
//!     .build();
//! let checked = flowscript_core::sema::check(&script)?;
//! assert_eq!(checked.task_classes().len(), 2);
//! # Ok::<(), flowscript_core::Diagnostics>(())
//! ```

use crate::ast::*;
use crate::span::Span;

/// Builds a [`Script`] incrementally.
#[derive(Debug, Default)]
pub struct ScriptBuilder {
    items: Vec<Item>,
}

impl ScriptBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an object class.
    pub fn class(mut self, name: &str) -> Self {
        self.items.push(Item::Class(ClassDecl {
            name: Ident::synthetic(name),
            span: Span::SYNTHETIC,
        }));
        self
    }

    /// Declares a task class, configured by `f`.
    pub fn taskclass(
        mut self,
        name: &str,
        f: impl FnOnce(TaskClassBuilder) -> TaskClassBuilder,
    ) -> Self {
        let builder = f(TaskClassBuilder {
            decl: TaskClassDecl {
                name: Ident::synthetic(name),
                input_sets: Vec::new(),
                outputs: Vec::new(),
                span: Span::SYNTHETIC,
            },
        });
        self.items.push(Item::TaskClass(builder.decl));
        self
    }

    /// Declares a top-level compound task, configured by `f`.
    pub fn compound(
        mut self,
        name: &str,
        class: &str,
        f: impl FnOnce(CompoundBuilder) -> CompoundBuilder,
    ) -> Self {
        let builder = f(CompoundBuilder::new(name, class));
        self.items.push(Item::Compound(builder.decl));
        self
    }

    /// Declares a top-level task instance, configured by `f`.
    pub fn task(
        mut self,
        name: &str,
        class: &str,
        f: impl FnOnce(TaskBuilder) -> TaskBuilder,
    ) -> Self {
        let builder = f(TaskBuilder::new(name, class));
        self.items.push(Item::Task(builder.decl));
        self
    }

    /// Finishes the script.
    pub fn build(self) -> Script {
        Script { items: self.items }
    }
}

/// Builds one [`TaskClassDecl`].
#[derive(Debug)]
pub struct TaskClassBuilder {
    decl: TaskClassDecl,
}

impl TaskClassBuilder {
    /// Adds an input set with `(object, class)` requirements.
    pub fn input_set(mut self, name: &str, objects: &[(&str, &str)]) -> Self {
        self.decl.input_sets.push(InputSetSig {
            name: Ident::synthetic(name),
            objects: objects
                .iter()
                .map(|(object, class)| ObjectSig {
                    name: Ident::synthetic(*object),
                    class: Ident::synthetic(*class),
                })
                .collect(),
        });
        self
    }

    fn output(mut self, kind: OutputKind, name: &str, objects: &[(&str, &str)]) -> Self {
        self.decl.outputs.push(OutputSig {
            kind,
            name: Ident::synthetic(name),
            objects: objects
                .iter()
                .map(|(object, class)| ObjectSig {
                    name: Ident::synthetic(*object),
                    class: Ident::synthetic(*class),
                })
                .collect(),
        });
        self
    }

    /// Adds an `outcome`.
    pub fn outcome(self, name: &str, objects: &[(&str, &str)]) -> Self {
        self.output(OutputKind::Outcome, name, objects)
    }

    /// Adds an `abort outcome` (making the class atomic).
    pub fn abort_outcome(self, name: &str, objects: &[(&str, &str)]) -> Self {
        self.output(OutputKind::AbortOutcome, name, objects)
    }

    /// Adds a `repeat outcome`.
    pub fn repeat_outcome(self, name: &str, objects: &[(&str, &str)]) -> Self {
        self.output(OutputKind::RepeatOutcome, name, objects)
    }

    /// Adds a `mark` output.
    pub fn mark(self, name: &str, objects: &[(&str, &str)]) -> Self {
        self.output(OutputKind::Mark, name, objects)
    }
}

/// Builds one [`TaskDecl`].
#[derive(Debug)]
pub struct TaskBuilder {
    decl: TaskDecl,
}

impl TaskBuilder {
    fn new(name: &str, class: &str) -> Self {
        Self {
            decl: TaskDecl {
                name: Ident::synthetic(name),
                class: Ident::synthetic(class),
                implementation: Vec::new(),
                input_sets: Vec::new(),
                span: Span::SYNTHETIC,
            },
        }
    }

    /// Sets the `code` implementation binding.
    pub fn code(mut self, value: &str) -> Self {
        self.decl.implementation.push(ImplPair {
            key: "code".to_string(),
            value: value.to_string(),
        });
        self
    }

    /// Adds an arbitrary implementation pair.
    pub fn impl_pair(mut self, key: &str, value: &str) -> Self {
        self.decl.implementation.push(ImplPair {
            key: key.to_string(),
            value: value.to_string(),
        });
        self
    }

    /// Binds an input set, configured by `f`.
    pub fn input_set(mut self, name: &str, f: impl FnOnce(InputSetB) -> InputSetB) -> Self {
        let builder = f(InputSetB {
            binding: InputSetBinding {
                name: Ident::synthetic(name),
                elements: Vec::new(),
            },
        });
        self.decl.input_sets.push(builder.binding);
        self
    }
}

/// Builds one [`InputSetBinding`].
#[derive(Debug)]
pub struct InputSetB {
    binding: InputSetBinding,
}

impl InputSetB {
    /// Adds an input object with a single `if output` source.
    pub fn object_from(self, name: &str, object: &str, task: &str, outcome: &str) -> Self {
        self.object(name, |o| o.from_output(object, task, outcome))
    }

    /// Adds an input object sourced from the enclosing compound's input.
    pub fn object_from_self(self, name: &str, compound: &str, set: &str, object: &str) -> Self {
        self.object(name, |o| o.from_input(object, compound, set))
    }

    /// Adds an input object with explicitly configured alternatives.
    pub fn object(mut self, name: &str, f: impl FnOnce(SourcesB) -> SourcesB) -> Self {
        let builder = f(SourcesB {
            sources: Vec::new(),
        });
        self.binding.elements.push(InputElem::Object(ObjectBinding {
            name: Ident::synthetic(name),
            sources: builder.sources,
        }));
        self
    }

    /// Adds a notification dependency on `task if output outcome`.
    pub fn notify_on(mut self, task: &str, outcome: &str) -> Self {
        self.binding
            .elements
            .push(InputElem::Notification(NotificationBinding {
                sources: vec![NotifSource {
                    task: Ident::synthetic(task),
                    outcome: Ident::synthetic(outcome),
                }],
            }));
        self
    }

    /// Adds a notification with several alternative sources.
    pub fn notify_any(mut self, sources: &[(&str, &str)]) -> Self {
        self.binding
            .elements
            .push(InputElem::Notification(NotificationBinding {
                sources: sources
                    .iter()
                    .map(|(task, outcome)| NotifSource {
                        task: Ident::synthetic(*task),
                        outcome: Ident::synthetic(*outcome),
                    })
                    .collect(),
            }));
        self
    }
}

/// Builds an ordered alternative-source list.
#[derive(Debug)]
pub struct SourcesB {
    sources: Vec<ObjectSource>,
}

impl SourcesB {
    /// Alternative: `object of task t if output outcome`.
    pub fn from_output(mut self, object: &str, task: &str, outcome: &str) -> Self {
        self.sources.push(ObjectSource {
            object: Ident::synthetic(object),
            task: Ident::synthetic(task),
            cond: SourceCond::Output(Ident::synthetic(outcome)),
        });
        self
    }

    /// Alternative: `object of task t if input set`.
    pub fn from_input(mut self, object: &str, task: &str, set: &str) -> Self {
        self.sources.push(ObjectSource {
            object: Ident::synthetic(object),
            task: Ident::synthetic(task),
            cond: SourceCond::Input(Ident::synthetic(set)),
        });
        self
    }

    /// Alternative: unconditioned `object of task t`.
    pub fn from_any(mut self, object: &str, task: &str) -> Self {
        self.sources.push(ObjectSource {
            object: Ident::synthetic(object),
            task: Ident::synthetic(task),
            cond: SourceCond::Any,
        });
        self
    }
}

/// Builds one [`CompoundTaskDecl`].
#[derive(Debug)]
pub struct CompoundBuilder {
    decl: CompoundTaskDecl,
}

impl CompoundBuilder {
    fn new(name: &str, class: &str) -> Self {
        Self {
            decl: CompoundTaskDecl {
                name: Ident::synthetic(name),
                class: Ident::synthetic(class),
                input_sets: Vec::new(),
                constituents: Vec::new(),
                outputs: Vec::new(),
                span: Span::SYNTHETIC,
            },
        }
    }

    /// Binds the compound's own input set (when it is itself a
    /// constituent of an outer compound).
    pub fn input_set(mut self, name: &str, f: impl FnOnce(InputSetB) -> InputSetB) -> Self {
        let builder = f(InputSetB {
            binding: InputSetBinding {
                name: Ident::synthetic(name),
                elements: Vec::new(),
            },
        });
        self.decl.input_sets.push(builder.binding);
        self
    }

    /// Adds a constituent task.
    pub fn task(
        mut self,
        name: &str,
        class: &str,
        f: impl FnOnce(TaskBuilder) -> TaskBuilder,
    ) -> Self {
        let builder = f(TaskBuilder::new(name, class));
        self.decl.constituents.push(Constituent::Task(builder.decl));
        self
    }

    /// Adds a nested compound constituent.
    pub fn compound(
        mut self,
        name: &str,
        class: &str,
        f: impl FnOnce(CompoundBuilder) -> CompoundBuilder,
    ) -> Self {
        let builder = f(CompoundBuilder::new(name, class));
        self.decl
            .constituents
            .push(Constituent::Compound(builder.decl));
        self
    }

    fn mapping(
        mut self,
        kind: OutputKind,
        name: &str,
        f: impl FnOnce(OutputMappingB) -> OutputMappingB,
    ) -> Self {
        let builder = f(OutputMappingB {
            mapping: OutputMapping {
                kind,
                name: Ident::synthetic(name),
                elements: Vec::new(),
            },
        });
        self.decl.outputs.push(builder.mapping);
        self
    }

    /// Maps an `outcome` output.
    pub fn outcome_mapping(
        self,
        name: &str,
        f: impl FnOnce(OutputMappingB) -> OutputMappingB,
    ) -> Self {
        self.mapping(OutputKind::Outcome, name, f)
    }

    /// Maps an `abort outcome` output.
    pub fn abort_mapping(
        self,
        name: &str,
        f: impl FnOnce(OutputMappingB) -> OutputMappingB,
    ) -> Self {
        self.mapping(OutputKind::AbortOutcome, name, f)
    }

    /// Maps a `repeat outcome` output.
    pub fn repeat_mapping(
        self,
        name: &str,
        f: impl FnOnce(OutputMappingB) -> OutputMappingB,
    ) -> Self {
        self.mapping(OutputKind::RepeatOutcome, name, f)
    }

    /// Maps a `mark` output.
    pub fn mark_mapping(
        self,
        name: &str,
        f: impl FnOnce(OutputMappingB) -> OutputMappingB,
    ) -> Self {
        self.mapping(OutputKind::Mark, name, f)
    }
}

/// Builds one [`OutputMapping`].
#[derive(Debug)]
pub struct OutputMappingB {
    mapping: OutputMapping,
}

impl OutputMappingB {
    /// Maps an output object from a constituent's outcome.
    pub fn object_from(self, name: &str, object: &str, task: &str, outcome: &str) -> Self {
        self.object(name, |o| o.from_output(object, task, outcome))
    }

    /// Maps an output object with configured alternatives.
    pub fn object(mut self, name: &str, f: impl FnOnce(SourcesB) -> SourcesB) -> Self {
        let builder = f(SourcesB {
            sources: Vec::new(),
        });
        self.mapping
            .elements
            .push(OutputElem::Object(ObjectBinding {
                name: Ident::synthetic(name),
                sources: builder.sources,
            }));
        self
    }

    /// Adds a notification condition.
    pub fn notify_on(mut self, task: &str, outcome: &str) -> Self {
        self.mapping
            .elements
            .push(OutputElem::Notification(NotificationBinding {
                sources: vec![NotifSource {
                    task: Ident::synthetic(task),
                    outcome: Ident::synthetic(outcome),
                }],
            }));
        self
    }

    /// Adds a notification with alternative sources.
    pub fn notify_any(mut self, sources: &[(&str, &str)]) -> Self {
        self.mapping
            .elements
            .push(OutputElem::Notification(NotificationBinding {
                sources: sources
                    .iter()
                    .map(|(task, outcome)| NotifSource {
                        task: Ident::synthetic(*task),
                        outcome: Ident::synthetic(*outcome),
                    })
                    .collect(),
            }));
        self
    }
}

/// Builds a linear chain workflow of `n` stages — a standard benchmark
/// shape (`root` compound of class `Chain`).
pub fn chain(n: usize) -> Script {
    let mut builder = ScriptBuilder::new()
        .class("Data")
        .taskclass("Stage", |tc| {
            tc.input_set("main", &[("in", "Data")])
                .outcome("done", &[("out", "Data")])
        })
        .taskclass("Chain", |tc| {
            tc.input_set("main", &[("seed", "Data")])
                .outcome("done", &[("out", "Data")])
        });
    builder = builder.compound("root", "Chain", |mut c| {
        for i in 0..n {
            let name = format!("s{i}");
            c = c.task(&name, "Stage", |t| {
                t.code(&format!("ref{i}")).input_set("main", |s| {
                    if i == 0 {
                        s.object("in", |o| o.from_input("seed", "root", "main"))
                    } else {
                        s.object("in", |o| {
                            o.from_output("out", &format!("s{}", i - 1), "done")
                        })
                    }
                })
            });
        }
        c.outcome_mapping("done", |m| {
            m.object_from("out", "out", &format!("s{}", n.saturating_sub(1)), "done")
        })
    });
    builder.build()
}

/// Builds a fan-out/fan-in workflow: one source, `width` parallel stages,
/// one join (`root` compound of class `Fan`).
pub fn fan(width: usize) -> Script {
    let mut builder = ScriptBuilder::new()
        .class("Data")
        .taskclass("Stage", |tc| {
            tc.input_set("main", &[("in", "Data")])
                .outcome("done", &[("out", "Data")])
        })
        .taskclass("Join", |tc| {
            let joined: Vec<(String, String)> = (0..width)
                .map(|i| (format!("in{i}"), "Data".to_string()))
                .collect();
            let refs: Vec<(&str, &str)> = joined
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            tc.input_set("main", &refs)
                .outcome("done", &[("out", "Data")])
        })
        .taskclass("Fan", |tc| {
            tc.input_set("main", &[("seed", "Data")])
                .outcome("done", &[("out", "Data")])
        });
    builder = builder.compound("root", "Fan", |mut c| {
        c = c.task("source", "Stage", |t| {
            t.code("refSource").input_set("main", |s| {
                s.object("in", |o| o.from_input("seed", "root", "main"))
            })
        });
        for i in 0..width {
            let name = format!("w{i}");
            c = c.task(&name, "Stage", |t| {
                t.code(&format!("refW{i}")).input_set("main", |s| {
                    s.object("in", |o| o.from_output("out", "source", "done"))
                })
            });
        }
        c = c.task("join", "Join", |mut t| {
            t = t.code("refJoin");
            t.input_set("main", |mut s| {
                for i in 0..width {
                    s = s.object(&format!("in{i}"), |o| {
                        o.from_output("out", &format!("w{i}"), "done")
                    });
                }
                s
            })
        });
        c.outcome_mapping("done", |m| m.object_from("out", "out", "join", "done"))
    });
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;
    use crate::sema;

    #[test]
    fn chain_builds_and_compiles() {
        for n in [1, 2, 10, 50] {
            let script = chain(n);
            let checked = sema::check(&script).unwrap_or_else(|d| panic!("chain({n}): {d}"));
            let compiled = schema::compile(&checked, "root").unwrap();
            assert_eq!(compiled.leaf_count(), n);
        }
    }

    #[test]
    fn fan_builds_and_compiles() {
        for width in [1, 4, 16] {
            let script = fan(width);
            let checked = sema::check(&script).unwrap_or_else(|d| panic!("fan({width}): {d}"));
            let compiled = schema::compile(&checked, "root").unwrap();
            assert_eq!(compiled.leaf_count(), width + 2);
        }
    }

    #[test]
    fn built_scripts_format_and_reparse() {
        let script = chain(3);
        let text = crate::fmt::format_script(&script);
        let reparsed = crate::parse(&text)
            .unwrap_or_else(|d| panic!("reparse failed:\n{}\n{text}", d.render(&text)));
        assert_eq!(script, reparsed, "builder output must round-trip");
    }

    #[test]
    fn builder_supports_all_output_kinds() {
        let script = ScriptBuilder::new()
            .class("C")
            .taskclass("T", |tc| {
                tc.input_set("main", &[("x", "C")])
                    .outcome("done", &[("y", "C")])
                    .abort_outcome("failed", &[])
                    .repeat_outcome("again", &[("x", "C")])
            })
            .build();
        let tc = script.find_task_class("T").unwrap();
        assert_eq!(tc.outputs.len(), 3);
        assert!(tc.is_atomic());
    }
}
