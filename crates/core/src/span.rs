use std::fmt;

/// A position in source text (1-based line and column, 0-based byte
/// offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pos {
    /// 0-based byte offset.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters).
    pub column: u32,
}

impl Pos {
    /// The start of the input.
    pub const START: Pos = Pos {
        offset: 0,
        line: 1,
        column: 1,
    };
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// A half-open byte range in source text with line/column endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Inclusive start.
    pub start: Pos,
    /// Exclusive end.
    pub end: Pos,
}

impl Span {
    /// A zero-width span at the origin, for synthesised nodes (builder,
    /// template expansion).
    pub const SYNTHETIC: Span = Span {
        start: Pos::START,
        end: Pos::START,
    };

    /// Creates a span between two positions.
    pub fn new(start: Pos, end: Pos) -> Self {
        Self { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: if self.start <= other.start {
                self.start
            } else {
                other.start
            },
            end: if self.end.offset >= other.end.offset {
                self.end
            } else {
                other.end
            },
        }
    }

    /// Whether this span was synthesised rather than parsed.
    pub fn is_synthetic(self) -> bool {
        self == Span::SYNTHETIC
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

impl Default for Span {
    fn default() -> Self {
        Span::SYNTHETIC
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(offset: usize, line: u32, column: u32) -> Pos {
        Pos {
            offset,
            line,
            column,
        }
    }

    #[test]
    fn merge_extends_both_ways() {
        let a = Span::new(pos(5, 1, 6), pos(8, 1, 9));
        let b = Span::new(pos(2, 1, 3), pos(6, 1, 7));
        let merged = a.merge(b);
        assert_eq!(merged.start.offset, 2);
        assert_eq!(merged.end.offset, 8);
    }

    #[test]
    fn display_forms() {
        let span = Span::new(pos(0, 3, 7), pos(4, 3, 11));
        assert_eq!(span.to_string(), "3:7");
        assert_eq!(span.start.to_string(), "3:7");
    }

    #[test]
    fn synthetic_detection() {
        assert!(Span::SYNTHETIC.is_synthetic());
        assert!(Span::default().is_synthetic());
        let real = Span::new(pos(0, 1, 1), pos(1, 1, 2));
        assert!(!real.is_synthetic());
    }
}
