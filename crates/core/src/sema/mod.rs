//! Semantic analysis: name resolution, dataflow type checking and the
//! language rules of paper §4.
//!
//! [`check`] validates a parsed [`Script`] and returns a [`Checked`] view
//! with resolved symbol tables, or every problem found as [`Diagnostics`]:
//!
//! - duplicate declarations,
//! - unknown classes / task classes / input sets / outputs / objects,
//! - dataflow class mismatches (a source object's class must equal the
//!   input object's class),
//! - the atomicity rule: a task class with an `abort outcome` is atomic
//!   and may not declare `mark` outputs (Fig. 3),
//! - repeat outcomes used as sources by *other* tasks (§4.2: repeat
//!   outputs are only usable by the producing task itself),
//! - output mappings that do not match the compound's task class,
//! - dependency cycles not broken by a repeat outcome (Fig. 8 loops are
//!   legal; everything else deadlocks),
//! - warnings for constituents that feed nothing.

mod graph;
mod resolve;

use std::collections::BTreeMap;

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics};

/// A semantically valid script with its symbol tables.
#[derive(Debug)]
pub struct Checked<'a> {
    script: &'a Script,
    classes: BTreeMap<&'a str, &'a ClassDecl>,
    task_classes: BTreeMap<&'a str, &'a TaskClassDecl>,
    templates: BTreeMap<&'a str, &'a TemplateDecl>,
    /// Warnings produced during checking (errors abort the check).
    warnings: Diagnostics,
}

impl<'a> Checked<'a> {
    /// The underlying script.
    pub fn script(&self) -> &'a Script {
        self.script
    }

    /// Declared object classes by name.
    pub fn classes(&self) -> &BTreeMap<&'a str, &'a ClassDecl> {
        &self.classes
    }

    /// Declared task classes by name.
    pub fn task_classes(&self) -> &BTreeMap<&'a str, &'a TaskClassDecl> {
        &self.task_classes
    }

    /// Declared task templates by name.
    pub fn templates(&self) -> &BTreeMap<&'a str, &'a TemplateDecl> {
        &self.templates
    }

    /// Non-fatal findings (dead constituents etc.).
    pub fn warnings(&self) -> &Diagnostics {
        &self.warnings
    }
}

/// Checks a script.
///
/// # Errors
///
/// Returns all semantic errors found. Warnings do not fail the check; they
/// are available via [`Checked::warnings`].
///
/// ```
/// let script = flowscript_core::parse(flowscript_core::samples::ORDER_PROCESSING)?;
/// let checked = flowscript_core::sema::check(&script)?;
/// assert!(checked.task_classes().contains_key("Dispatch"));
/// # Ok::<(), flowscript_core::Diagnostics>(())
/// ```
pub fn check(script: &Script) -> Result<Checked<'_>, Diagnostics> {
    let mut diags = Diagnostics::new();
    let mut warnings = Diagnostics::new();

    let (classes, task_classes, templates) = collect_tables(script, &mut diags);

    // Per-task-class structural rules.
    for tc in task_classes.values() {
        check_task_class(tc, &classes, &mut diags);
    }

    // Template signatures (bodies re-checked post-expansion).
    for template in templates.values() {
        check_template_signature(template, &task_classes, &mut diags);
    }

    // Resolve every top-level instance and compound scope recursively.
    let ctx = resolve::Ctx {
        task_classes: &task_classes,
        templates: &templates,
    };
    resolve::check_top_level(script, &ctx, &mut diags, &mut warnings);

    if diags.has_errors() {
        Err(diags)
    } else {
        Ok(Checked {
            script,
            classes,
            task_classes,
            templates,
            warnings,
        })
    }
}

type Tables<'a> = (
    BTreeMap<&'a str, &'a ClassDecl>,
    BTreeMap<&'a str, &'a TaskClassDecl>,
    BTreeMap<&'a str, &'a TemplateDecl>,
);

fn collect_tables<'a>(script: &'a Script, diags: &mut Diagnostics) -> Tables<'a> {
    let mut classes = BTreeMap::new();
    let mut task_classes = BTreeMap::new();
    let mut templates = BTreeMap::new();
    let mut instance_names: BTreeMap<&str, &Ident> = BTreeMap::new();

    for item in &script.items {
        match item {
            Item::Class(class) => {
                if classes.insert(class.name.as_str(), class).is_some() {
                    diags.push(Diagnostic::error(
                        format!("duplicate class `{}`", class.name),
                        class.name.span,
                    ));
                }
            }
            Item::TaskClass(tc) => {
                if task_classes.insert(tc.name.as_str(), tc).is_some() {
                    diags.push(Diagnostic::error(
                        format!("duplicate taskclass `{}`", tc.name),
                        tc.name.span,
                    ));
                }
            }
            Item::Template(template) => {
                if templates.insert(template.name.as_str(), template).is_some() {
                    diags.push(Diagnostic::error(
                        format!("duplicate tasktemplate `{}`", template.name),
                        template.name.span,
                    ));
                }
            }
            Item::Task(task) => {
                record_instance(&mut instance_names, &task.name, diags);
            }
            Item::Compound(compound) => {
                record_instance(&mut instance_names, &compound.name, diags);
            }
            Item::TemplateInstance(instance) => {
                record_instance(&mut instance_names, &instance.name, diags);
            }
        }
    }
    (classes, task_classes, templates)
}

fn record_instance<'a>(
    names: &mut BTreeMap<&'a str, &'a Ident>,
    name: &'a Ident,
    diags: &mut Diagnostics,
) {
    if names.insert(name.as_str(), name).is_some() {
        diags.push(Diagnostic::error(
            format!("duplicate task instance `{name}`"),
            name.span,
        ));
    }
}

fn check_task_class(
    tc: &TaskClassDecl,
    classes: &BTreeMap<&str, &ClassDecl>,
    diags: &mut Diagnostics,
) {
    // Unique input set names; known object classes; unique objects per set.
    let mut set_names = std::collections::BTreeSet::new();
    for set in &tc.input_sets {
        if !set_names.insert(set.name.as_str()) {
            diags.push(Diagnostic::error(
                format!(
                    "duplicate input set `{}` in taskclass `{}`",
                    set.name, tc.name
                ),
                set.name.span,
            ));
        }
        let mut object_names = std::collections::BTreeSet::new();
        for object in &set.objects {
            if !object_names.insert(object.name.as_str()) {
                diags.push(Diagnostic::error(
                    format!(
                        "duplicate input object `{}` in input set `{}` of `{}`",
                        object.name, set.name, tc.name
                    ),
                    object.name.span,
                ));
            }
            if !classes.contains_key(object.class.as_str()) {
                diags.push(Diagnostic::error(
                    format!("unknown class `{}`", object.class),
                    object.class.span,
                ));
            }
        }
    }

    // Unique output names; known classes.
    let mut output_names = std::collections::BTreeSet::new();
    for output in &tc.outputs {
        if !output_names.insert(output.name.as_str()) {
            diags.push(Diagnostic::error(
                format!(
                    "duplicate output `{}` in taskclass `{}`",
                    output.name, tc.name
                ),
                output.name.span,
            ));
        }
        let mut object_names = std::collections::BTreeSet::new();
        for object in &output.objects {
            if !object_names.insert(object.name.as_str()) {
                diags.push(Diagnostic::error(
                    format!(
                        "duplicate output object `{}` in output `{}` of `{}`",
                        object.name, output.name, tc.name
                    ),
                    object.name.span,
                ));
            }
            if !classes.contains_key(object.class.as_str()) {
                diags.push(Diagnostic::error(
                    format!("unknown class `{}`", object.class),
                    object.class.span,
                ));
            }
        }
    }

    // Atomicity: abort outcome ⇒ no marks (Fig. 3: an atomic task can
    // produce outputs only after it commits).
    let has_abort = tc
        .outputs
        .iter()
        .any(|o| o.kind == OutputKind::AbortOutcome);
    if has_abort {
        for output in &tc.outputs {
            if output.kind == OutputKind::Mark {
                diags.push(Diagnostic::error(
                    format!(
                        "taskclass `{}` is atomic (declares an abort outcome) and may not \
                         declare mark output `{}`",
                        tc.name, output.name
                    ),
                    output.name.span,
                ));
            }
        }
    }
}

fn check_template_signature(
    template: &TemplateDecl,
    task_classes: &BTreeMap<&str, &TaskClassDecl>,
    diags: &mut Diagnostics,
) {
    if !task_classes.contains_key(template.class.as_str()) {
        diags.push(Diagnostic::error(
            format!("unknown taskclass `{}`", template.class),
            template.class.span,
        ));
    }
    let mut seen = std::collections::BTreeSet::new();
    for param in &template.params {
        if !seen.insert(param.as_str()) {
            diags.push(Diagnostic::error(
                format!("duplicate template parameter `{param}`"),
                param.span,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::samples;

    fn check_source(source: &str) -> Result<(), Diagnostics> {
        let script = parse(source).expect("parse ok");
        check(&script).map(|_| ())
    }

    fn expect_error(source: &str, needle: &str) {
        let err = check_source(source).expect_err("expected a semantic error");
        let text = err.to_string();
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }

    #[test]
    fn all_samples_check_clean() {
        for (name, source) in samples::all() {
            let script = parse(source).unwrap();
            match check(&script) {
                Ok(_) => {}
                Err(diags) => panic!("{name} failed sema:\n{}", diags.render(source)),
            }
        }
    }

    #[test]
    fn duplicate_class_rejected() {
        expect_error("class A; class A;", "duplicate class `A`");
    }

    #[test]
    fn duplicate_taskclass_rejected() {
        expect_error(
            "taskclass T { }\ntaskclass T { }",
            "duplicate taskclass `T`",
        );
    }

    #[test]
    fn unknown_object_class_rejected() {
        expect_error(
            "taskclass T { inputs { input main { x of class Missing } } }",
            "unknown class `Missing`",
        );
    }

    #[test]
    fn duplicate_input_set_rejected() {
        expect_error(
            "class C; taskclass T { inputs { input main { x of class C }; input main { y of class C } } }",
            "duplicate input set `main`",
        );
    }

    #[test]
    fn duplicate_output_rejected() {
        expect_error(
            "class C; taskclass T { outputs { outcome done { }; outcome done { } } }",
            "duplicate output `done`",
        );
    }

    #[test]
    fn atomic_taskclass_cannot_mark() {
        expect_error(
            r#"
            class C;
            taskclass T {
                outputs {
                    abort outcome failed { };
                    mark progress { c of class C }
                }
            }
            "#,
            "atomic",
        );
    }

    #[test]
    fn duplicate_template_param_rejected() {
        expect_error(
            r#"
            class C;
            taskclass T { inputs { input main { x of class C } } outputs { outcome d { } } }
            tasktemplate task tt of taskclass T {
                parameters { p; p }
            }
            "#,
            "duplicate template parameter `p`",
        );
    }

    #[test]
    fn duplicate_instance_name_rejected() {
        expect_error(
            r#"
            class C;
            taskclass T { inputs { input main { } } outputs { outcome d { } } }
            task t1 of taskclass T { }
            task t1 of taskclass T { }
            "#,
            "duplicate task instance `t1`",
        );
    }

    #[test]
    fn checked_exposes_tables() {
        let script = parse(samples::ORDER_PROCESSING).unwrap();
        let checked = check(&script).unwrap();
        assert!(checked.classes().contains_key("Order"));
        assert!(checked.task_classes().contains_key("PaymentCapture"));
        assert!(checked.templates().is_empty());
        assert!(!checked.script().items.is_empty());
    }
}
