//! Scope resolution: sources, conditions, classes and output mappings.
//!
//! A *scope* is a set of sibling task instances: the constituents of one
//! compound task (plus the compound itself, referenceable by name for
//! `… of task <compound> if input <set>` self-references), or the
//! top-level instances of the script. Resolution walks scopes recursively.

use std::collections::BTreeMap;

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics};

use super::graph;

pub(crate) struct Ctx<'a> {
    pub task_classes: &'a BTreeMap<&'a str, &'a TaskClassDecl>,
    pub templates: &'a BTreeMap<&'a str, &'a TemplateDecl>,
}

/// What a task name inside a scope refers to.
#[derive(Clone, Copy)]
enum Referent<'a> {
    /// A sibling constituent with this task class.
    Sibling(&'a TaskClassDecl),
    /// The enclosing compound itself.
    SelfCompound(&'a TaskClassDecl),
}

struct Scope<'a> {
    /// Sibling name → class (None when the class name did not resolve;
    /// an error was already reported).
    siblings: BTreeMap<&'a str, Option<&'a TaskClassDecl>>,
    /// The enclosing compound instance name and class, if any.
    enclosing: Option<(&'a str, &'a TaskClassDecl)>,
}

impl<'a> Scope<'a> {
    fn lookup(&self, task: &str) -> Option<Referent<'a>> {
        if let Some(class) = self.siblings.get(task) {
            return class.map(Referent::Sibling);
        }
        match self.enclosing {
            Some((name, class)) if name == task => Some(Referent::SelfCompound(class)),
            _ => None,
        }
    }
}

pub(crate) fn check_top_level(
    script: &Script,
    ctx: &Ctx<'_>,
    diags: &mut Diagnostics,
    warnings: &mut Diagnostics,
) {
    let constituents: Vec<ConstituentRef<'_>> = script
        .items
        .iter()
        .filter_map(|item| match item {
            Item::Task(task) => Some(ConstituentRef::Task(task)),
            Item::Compound(compound) => Some(ConstituentRef::Compound(compound)),
            Item::TemplateInstance(instance) => Some(ConstituentRef::Instance(instance)),
            _ => None,
        })
        .collect();
    check_scope(&constituents, None, ctx, diags, warnings);
}

/// A borrowed view of a constituent, uniform across top level and
/// compound bodies.
#[derive(Clone, Copy)]
enum ConstituentRef<'a> {
    Task(&'a TaskDecl),
    Compound(&'a CompoundTaskDecl),
    Instance(&'a TemplateInstanceDecl),
}

impl<'a> ConstituentRef<'a> {
    fn name(&self) -> &'a Ident {
        match self {
            ConstituentRef::Task(t) => &t.name,
            ConstituentRef::Compound(c) => &c.name,
            ConstituentRef::Instance(i) => &i.name,
        }
    }

    fn class_name(&self, ctx: &Ctx<'a>) -> Option<&'a Ident> {
        match self {
            ConstituentRef::Task(t) => Some(&t.class),
            ConstituentRef::Compound(c) => Some(&c.class),
            ConstituentRef::Instance(i) => ctx
                .templates
                .get(i.template.as_str())
                .map(|template| &template.class),
        }
    }

    fn input_sets(&self) -> &'a [InputSetBinding] {
        match self {
            ConstituentRef::Task(t) => &t.input_sets,
            ConstituentRef::Compound(c) => &c.input_sets,
            ConstituentRef::Instance(_) => &[],
        }
    }
}

fn check_scope(
    constituents: &[ConstituentRef<'_>],
    enclosing: Option<(&CompoundTaskDecl, &TaskClassDecl)>,
    ctx: &Ctx<'_>,
    diags: &mut Diagnostics,
    warnings: &mut Diagnostics,
) {
    // Build the sibling table, reporting unknown classes and duplicates.
    let mut siblings: BTreeMap<&str, Option<&TaskClassDecl>> = BTreeMap::new();
    for constituent in constituents {
        let name = constituent.name();
        let class = match constituent.class_name(ctx) {
            Some(class_name) => {
                let resolved = ctx.task_classes.get(class_name.as_str()).copied();
                if resolved.is_none() {
                    diags.push(Diagnostic::error(
                        format!("unknown taskclass `{class_name}`"),
                        class_name.span,
                    ));
                }
                resolved
            }
            None => {
                if let ConstituentRef::Instance(instance) = constituent {
                    diags.push(Diagnostic::error(
                        format!("unknown tasktemplate `{}`", instance.template),
                        instance.template.span,
                    ));
                }
                None
            }
        };
        if siblings.insert(name.as_str(), class).is_some() {
            diags.push(Diagnostic::error(
                format!("duplicate task instance `{name}` in scope"),
                name.span,
            ));
        }
        if let Some((compound, _)) = enclosing {
            if name.as_str() == compound.name.as_str() {
                diags.push(Diagnostic::error(
                    format!("constituent `{name}` shadows its enclosing compound task"),
                    name.span,
                ));
            }
        }
    }

    let scope = Scope {
        siblings,
        enclosing: enclosing.map(|(compound, class)| (compound.name.as_str(), class)),
    };

    // Check each constituent's bindings against the scope.
    for constituent in constituents {
        let Some(Some(class)) = scope.siblings.get(constituent.name().as_str()).copied() else {
            continue;
        };
        check_bindings(
            constituent.name(),
            class,
            constituent.input_sets(),
            &scope,
            diags,
        );
        if let ConstituentRef::Instance(instance) = constituent {
            check_template_instance(instance, &scope, ctx, diags);
        }
    }

    // Output mappings of the enclosing compound resolve in the *inner*
    // scope — but this function is called per scope, so the caller passes
    // the compound's own outputs through `enclosing` and we check them
    // here, where the constituents are visible.
    if let Some((compound, class)) = enclosing {
        check_output_mappings(compound, class, &scope, diags);
    }

    // Dependency cycles within this scope.
    graph::check_cycles(constituents.iter().map(|c| scope_edges(c, &scope)), diags);

    // Dead constituents: feed no sibling and no output mapping.
    warn_dead_constituents(constituents, enclosing.map(|(c, _)| c), warnings);

    // Recurse into compound constituents.
    for constituent in constituents {
        if let ConstituentRef::Compound(compound) = constituent {
            let Some(class) = ctx.task_classes.get(compound.class.as_str()) else {
                continue;
            };
            let inner: Vec<ConstituentRef<'_>> = compound
                .constituents
                .iter()
                .map(|c| match c {
                    Constituent::Task(t) => ConstituentRef::Task(t),
                    Constituent::Compound(c) => ConstituentRef::Compound(c),
                    Constituent::TemplateInstance(i) => ConstituentRef::Instance(i),
                })
                .collect();
            check_scope(&inner, Some((compound, class)), ctx, diags, warnings);
        }
    }
}

/// Dependency edges `(consumer, producers…)` for cycle detection; repeat
/// and self edges are excluded (legal loops).
fn scope_edges<'a>(constituent: &ConstituentRef<'a>, scope: &Scope<'a>) -> (&'a str, Vec<&'a str>) {
    let consumer = constituent.name().as_str();
    let mut producers = Vec::new();
    for set in constituent.input_sets() {
        for element in &set.elements {
            match element {
                InputElem::Object(binding) => {
                    for source in &binding.sources {
                        collect_edge(
                            consumer,
                            source.task.as_str(),
                            &source.cond,
                            scope,
                            &mut producers,
                        );
                    }
                }
                InputElem::Notification(binding) => {
                    for source in &binding.sources {
                        collect_edge(
                            consumer,
                            source.task.as_str(),
                            &SourceCond::Output(source.outcome.clone()),
                            scope,
                            &mut producers,
                        );
                    }
                }
            }
        }
    }
    (consumer, producers)
}

fn collect_edge<'a>(
    consumer: &str,
    producer: &'a str,
    cond: &SourceCond,
    scope: &Scope<'a>,
    out: &mut Vec<&'a str>,
) {
    if producer == consumer {
        return; // self loop (repeat), legal
    }
    let Some(Referent::Sibling(class)) = scope.lookup(producer) else {
        return; // self-compound reference or unresolved: no intra-scope edge
    };
    // An edge through a repeat outcome is a legal loop (Fig. 8).
    if let SourceCond::Output(outcome) = cond {
        if let Some(output) = class.output(outcome.as_str()) {
            if output.kind == OutputKind::RepeatOutcome {
                return;
            }
        }
    }
    out.push(producer);
}

fn check_bindings(
    task_name: &Ident,
    class: &TaskClassDecl,
    bindings: &[InputSetBinding],
    scope: &Scope<'_>,
    diags: &mut Diagnostics,
) {
    let mut bound_sets = std::collections::BTreeSet::new();
    for binding in bindings {
        if !bound_sets.insert(binding.name.as_str()) {
            diags.push(Diagnostic::error(
                format!(
                    "input set `{}` bound twice on task `{task_name}`",
                    binding.name
                ),
                binding.name.span,
            ));
            continue;
        }
        let Some(set_sig) = class.input_set(binding.name.as_str()) else {
            diags.push(Diagnostic::error(
                format!(
                    "task `{task_name}`: taskclass `{}` has no input set `{}`",
                    class.name, binding.name
                ),
                binding.name.span,
            ));
            continue;
        };

        let mut bound_objects = std::collections::BTreeSet::new();
        for element in &binding.elements {
            match element {
                InputElem::Object(object_binding) => {
                    let Some(object_sig) = set_sig
                        .objects
                        .iter()
                        .find(|o| o.name == object_binding.name)
                    else {
                        diags.push(Diagnostic::error(
                            format!(
                                "input set `{}` of `{}` has no object `{}`",
                                binding.name, class.name, object_binding.name
                            ),
                            object_binding.name.span,
                        ));
                        continue;
                    };
                    if !bound_objects.insert(object_binding.name.as_str()) {
                        diags.push(Diagnostic::error(
                            format!(
                                "input object `{}` bound twice in set `{}` of task `{task_name}`",
                                object_binding.name, binding.name
                            ),
                            object_binding.name.span,
                        ));
                    }
                    if object_binding.sources.is_empty() {
                        diags.push(Diagnostic::error(
                            format!(
                                "input object `{}` of task `{task_name}` has no sources",
                                object_binding.name
                            ),
                            object_binding.name.span,
                        ));
                    }
                    for source in &object_binding.sources {
                        check_object_source(task_name, source, &object_sig.class, scope, diags);
                    }
                }
                InputElem::Notification(notification) => {
                    if notification.sources.is_empty() {
                        diags.push(Diagnostic::error(
                            format!("notification on task `{task_name}` has no sources"),
                            binding.name.span,
                        ));
                    }
                    for source in &notification.sources {
                        check_notif_source(task_name, source, scope, diags);
                    }
                }
            }
        }

        // Every declared object of the set must be bound, or the set can
        // never be satisfied.
        for object_sig in &set_sig.objects {
            if !bound_objects.contains(object_sig.name.as_str()) {
                diags.push(Diagnostic::error(
                    format!(
                        "task `{task_name}`: input set `{}` never binds object `{}` \
                         declared by taskclass `{}`",
                        binding.name, object_sig.name, class.name
                    ),
                    binding.name.span,
                ));
            }
        }
    }
}

/// Validates one `obj of task t [if …]` source and its class against the
/// expected input object class.
fn check_object_source(
    consumer: &Ident,
    source: &ObjectSource,
    expected_class: &Ident,
    scope: &Scope<'_>,
    diags: &mut Diagnostics,
) {
    let Some(referent) = scope.lookup(source.task.as_str()) else {
        diags.push(Diagnostic::error(
            format!("unknown task `{}` in source", source.task),
            source.task.span,
        ));
        return;
    };
    let (class, is_self) = match referent {
        Referent::Sibling(class) => (class, false),
        Referent::SelfCompound(class) => (class, true),
    };
    match &source.cond {
        SourceCond::Input(set_name) => {
            let Some(set) = class.input_set(set_name.as_str()) else {
                diags.push(Diagnostic::error(
                    format!("taskclass `{}` has no input set `{set_name}`", class.name),
                    set_name.span,
                ));
                return;
            };
            let Some(object) = set.objects.iter().find(|o| o.name == source.object) else {
                diags.push(Diagnostic::error(
                    format!(
                        "input set `{set_name}` of `{}` has no object `{}`",
                        class.name, source.object
                    ),
                    source.object.span,
                ));
                return;
            };
            require_class_match(
                consumer,
                &source.object,
                &object.class,
                expected_class,
                diags,
            );
        }
        SourceCond::Output(outcome_name) => {
            let Some(output) = class.output(outcome_name.as_str()) else {
                diags.push(Diagnostic::error(
                    format!("taskclass `{}` has no output `{outcome_name}`", class.name),
                    outcome_name.span,
                ));
                return;
            };
            // Repeat outcomes are private to the producing task (§4.2),
            // with the single exception of the task sourcing itself.
            let self_loop = is_self || source.task.as_str() == consumer.as_str();
            if output.kind == OutputKind::RepeatOutcome && !self_loop {
                diags.push(Diagnostic::error(
                    format!(
                        "repeat outcome `{outcome_name}` of `{}` may only be used by \
                         the task itself",
                        source.task
                    ),
                    outcome_name.span,
                ));
                return;
            }
            let Some(object) = output.objects.iter().find(|o| o.name == source.object) else {
                diags.push(Diagnostic::error(
                    format!(
                        "output `{outcome_name}` of `{}` has no object `{}`",
                        class.name, source.object
                    ),
                    source.object.span,
                ));
                return;
            };
            require_class_match(
                consumer,
                &source.object,
                &object.class,
                expected_class,
                diags,
            );
        }
        SourceCond::Any => {
            // Any non-repeat output of the producer carrying this object.
            let candidates: Vec<&ObjectSig> = class
                .outputs
                .iter()
                .filter(|o| o.kind != OutputKind::RepeatOutcome)
                .flat_map(|o| o.objects.iter())
                .filter(|o| o.name == source.object)
                .collect();
            if candidates.is_empty() {
                diags.push(Diagnostic::error(
                    format!(
                        "no output of `{}` produces object `{}`",
                        class.name, source.object
                    ),
                    source.object.span,
                ));
                return;
            }
            for candidate in candidates {
                require_class_match(
                    consumer,
                    &source.object,
                    &candidate.class,
                    expected_class,
                    diags,
                );
            }
        }
    }
}

fn require_class_match(
    consumer: &Ident,
    object: &Ident,
    actual: &Ident,
    expected: &Ident,
    diags: &mut Diagnostics,
) {
    if actual.as_str() != expected.as_str() {
        diags.push(Diagnostic::error(
            format!(
                "type mismatch on task `{consumer}`: object `{object}` has class \
                 `{actual}` but class `{expected}` is required"
            ),
            object.span,
        ));
    }
}

fn check_notif_source(
    consumer: &Ident,
    source: &NotifSource,
    scope: &Scope<'_>,
    diags: &mut Diagnostics,
) {
    let Some(referent) = scope.lookup(source.task.as_str()) else {
        diags.push(Diagnostic::error(
            format!("unknown task `{}` in notification", source.task),
            source.task.span,
        ));
        return;
    };
    let (class, is_self) = match referent {
        Referent::Sibling(class) => (class, false),
        Referent::SelfCompound(class) => (class, true),
    };
    let Some(output) = class.output(source.outcome.as_str()) else {
        diags.push(Diagnostic::error(
            format!(
                "taskclass `{}` has no output `{}`",
                class.name, source.outcome
            ),
            source.outcome.span,
        ));
        return;
    };
    let self_loop = is_self || source.task.as_str() == consumer.as_str();
    if output.kind == OutputKind::RepeatOutcome && !self_loop {
        diags.push(Diagnostic::error(
            format!(
                "repeat outcome `{}` of `{}` may only notify the task itself",
                source.outcome, source.task
            ),
            source.outcome.span,
        ));
    }
}

fn check_template_instance(
    instance: &TemplateInstanceDecl,
    scope: &Scope<'_>,
    ctx: &Ctx<'_>,
    diags: &mut Diagnostics,
) {
    let Some(template) = ctx.templates.get(instance.template.as_str()) else {
        return; // unknown template already reported
    };
    if instance.args.len() != template.params.len() {
        diags.push(Diagnostic::error(
            format!(
                "tasktemplate `{}` expects {} argument(s), got {}",
                instance.template,
                template.params.len(),
                instance.args.len()
            ),
            instance.name.span,
        ));
    }
    for arg in &instance.args {
        if scope.lookup(arg.as_str()).is_none() {
            diags.push(Diagnostic::error(
                format!("template argument `{arg}` names no task in scope"),
                arg.span,
            ));
        }
    }
}

fn check_output_mappings(
    compound: &CompoundTaskDecl,
    class: &TaskClassDecl,
    scope: &Scope<'_>,
    diags: &mut Diagnostics,
) {
    let mut mapped = std::collections::BTreeSet::new();
    for mapping in &compound.outputs {
        let Some(sig) = class.output(mapping.name.as_str()) else {
            diags.push(Diagnostic::error(
                format!(
                    "compound `{}`: taskclass `{}` has no output `{}`",
                    compound.name, class.name, mapping.name
                ),
                mapping.name.span,
            ));
            continue;
        };
        if sig.kind != mapping.kind {
            diags.push(Diagnostic::error(
                format!(
                    "compound `{}`: output `{}` is `{}` in taskclass `{}` but mapped as `{}`",
                    compound.name, mapping.name, sig.kind, class.name, mapping.kind
                ),
                mapping.name.span,
            ));
        }
        if !mapped.insert(mapping.name.as_str()) {
            diags.push(Diagnostic::error(
                format!(
                    "compound `{}`: output `{}` mapped twice",
                    compound.name, mapping.name
                ),
                mapping.name.span,
            ));
        }

        let mut mapped_objects = std::collections::BTreeSet::new();
        for element in &mapping.elements {
            match element {
                OutputElem::Object(binding) => {
                    let Some(object_sig) = sig.objects.iter().find(|o| o.name == binding.name)
                    else {
                        diags.push(Diagnostic::error(
                            format!(
                                "output `{}` of `{}` has no object `{}`",
                                mapping.name, class.name, binding.name
                            ),
                            binding.name.span,
                        ));
                        continue;
                    };
                    mapped_objects.insert(binding.name.as_str());
                    if binding.sources.is_empty() {
                        diags.push(Diagnostic::error(
                            format!(
                                "output object `{}` of compound `{}` has no sources",
                                binding.name, compound.name
                            ),
                            binding.name.span,
                        ));
                    }
                    for source in &binding.sources {
                        check_object_source(
                            &compound.name,
                            source,
                            &object_sig.class,
                            scope,
                            diags,
                        );
                    }
                }
                OutputElem::Notification(notification) => {
                    for source in &notification.sources {
                        check_notif_source(&compound.name, source, scope, diags);
                    }
                }
            }
        }
        for object_sig in &sig.objects {
            if !mapped_objects.contains(object_sig.name.as_str()) {
                diags.push(Diagnostic::error(
                    format!(
                        "compound `{}`: output `{}` never maps object `{}`",
                        compound.name, mapping.name, object_sig.name
                    ),
                    mapping.name.span,
                ));
            }
        }
    }
}

/// Warns about constituents that feed nothing: no sibling consumes their
/// outputs and no output mapping references them.
fn warn_dead_constituents<'a>(
    constituents: &[ConstituentRef<'a>],
    enclosing: Option<&'a CompoundTaskDecl>,
    warnings: &mut Diagnostics,
) {
    use std::collections::BTreeSet;
    let mut referenced: BTreeSet<&'a str> = BTreeSet::new();
    for constituent in constituents {
        for binding in constituent.input_sets() {
            for element in &binding.elements {
                match element {
                    InputElem::Object(b) => {
                        for source in &b.sources {
                            referenced.insert(source.task.as_str());
                        }
                    }
                    InputElem::Notification(b) => {
                        for source in &b.sources {
                            referenced.insert(source.task.as_str());
                        }
                    }
                }
            }
        }
    }
    if let Some(compound) = enclosing {
        for mapping in &compound.outputs {
            for element in &mapping.elements {
                match element {
                    OutputElem::Object(b) => {
                        for source in &b.sources {
                            referenced.insert(source.task.as_str());
                        }
                    }
                    OutputElem::Notification(b) => {
                        for source in &b.sources {
                            referenced.insert(source.task.as_str());
                        }
                    }
                }
            }
        }
    }
    for constituent in constituents {
        let name = constituent.name();
        if !referenced.contains(name.as_str()) {
            warnings.push(Diagnostic::warning(
                format!("task `{name}` feeds no other task and no output"),
                name.span,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::diag::Diagnostics;
    use crate::parse;
    use crate::sema::check;

    fn errors_of(source: &str) -> Diagnostics {
        let script = parse(source).expect("parse ok");
        check(&script).expect_err("expected errors")
    }

    const PRELUDE: &str = r#"
        class C;
        class D;
        taskclass Producer {
            inputs { input main { seed of class C } };
            outputs {
                outcome done { out of class C };
                outcome other { alt of class D };
                repeat outcome again { seed of class C }
            }
        }
        taskclass Consumer {
            inputs { input main { in of class C } };
            outputs { outcome done { } }
        }
    "#;

    fn with_prelude(body: &str) -> String {
        format!("{PRELUDE}\n{body}")
    }

    #[test]
    fn unknown_source_task_rejected() {
        let err = errors_of(&with_prelude(
            r#"
            task c of taskclass Consumer {
                inputs { input main {
                    inputobject in from { out of task ghost if output done }
                } }
            }
            "#,
        ));
        assert!(err.to_string().contains("unknown task `ghost`"));
    }

    #[test]
    fn unknown_outcome_rejected() {
        let err = errors_of(&with_prelude(
            r#"
            task p of taskclass Producer {
                inputs { input main { inputobject seed from { seed of task p if output again } } }
            }
            task c of taskclass Consumer {
                inputs { input main {
                    inputobject in from { out of task p if output nope }
                } }
            }
            "#,
        ));
        assert!(err.to_string().contains("no output `nope`"));
    }

    #[test]
    fn class_mismatch_rejected() {
        let err = errors_of(&with_prelude(
            r#"
            task p of taskclass Producer {
                inputs { input main { inputobject seed from { seed of task p if output again } } }
            }
            task c of taskclass Consumer {
                inputs { input main {
                    inputobject in from { alt of task p if output other }
                } }
            }
            "#,
        ));
        assert!(err.to_string().contains("type mismatch"), "{err}");
    }

    #[test]
    fn repeat_outcome_private_to_producer() {
        let err = errors_of(&with_prelude(
            r#"
            task p of taskclass Producer {
                inputs { input main { inputobject seed from { seed of task p if output again } } }
            }
            task c of taskclass Consumer {
                inputs { input main {
                    inputobject in from { seed of task p if output again }
                } }
            }
            "#,
        ));
        assert!(err.to_string().contains("may only be used by"), "{err}");
    }

    #[test]
    fn self_repeat_loop_allowed() {
        let source = with_prelude(
            r#"
            task p of taskclass Producer {
                inputs { input main {
                    inputobject seed from { seed of task p if output again }
                } }
            }
            "#,
        );
        let script = parse(&source).unwrap();
        assert!(check(&script).is_ok());
    }

    #[test]
    fn unbound_input_object_rejected() {
        let err = errors_of(&with_prelude(
            r#"
            task c of taskclass Consumer {
                inputs { input main { notification from { task c if output done } } }
            }
            "#,
        ));
        assert!(err.to_string().contains("never binds object `in`"), "{err}");
    }

    #[test]
    fn dataflow_cycle_rejected() {
        let err = errors_of(&with_prelude(
            r#"
            task a of taskclass Consumer {
                inputs { input main { inputobject in from { out of task b if output done } } }
            }
            task b of taskclass Producer {
                inputs { input main { inputobject seed from { out of task a if output done } } }
            }
            "#,
        ));
        // The seed's class is wrong too, but the cycle a → b → a must be
        // reported regardless.
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn output_mapping_must_cover_objects() {
        let err = errors_of(&with_prelude(
            r#"
            taskclass Wrap {
                inputs { input main { seed of class C } };
                outputs { outcome done { out of class C } }
            }
            compoundtask w of taskclass Wrap {
                task p of taskclass Producer {
                    inputs { input main {
                        inputobject seed from { seed of task w if input main }
                    } }
                };
                outputs { outcome done { notification from { task p if output done } } }
            }
            "#,
        ));
        assert!(err.to_string().contains("never maps object `out`"), "{err}");
    }

    #[test]
    fn output_mapping_kind_must_match() {
        let err = errors_of(&with_prelude(
            r#"
            taskclass Wrap {
                inputs { input main { seed of class C } };
                outputs { outcome done { } }
            }
            compoundtask w of taskclass Wrap {
                task p of taskclass Producer {
                    inputs { input main {
                        inputobject seed from { seed of task w if input main }
                    } }
                };
                outputs { mark done { notification from { task p if output done } } }
            }
            "#,
        ));
        assert!(err.to_string().contains("mapped as `mark`"), "{err}");
    }

    #[test]
    fn template_arity_checked() {
        let err = errors_of(&with_prelude(
            r#"
            tasktemplate task tt of taskclass Consumer {
                parameters { p1 };
                inputs { input main { inputobject in from { out of task p1 if output done } } }
            }
            task p of taskclass Producer {
                inputs { input main { inputobject seed from { seed of task p if output again } } }
            }
            t of tasktemplate tt(p, p)
            "#,
        ));
        assert!(
            err.to_string().contains("expects 1 argument(s), got 2"),
            "{err}"
        );
    }

    #[test]
    fn template_argument_must_resolve() {
        let err = errors_of(&with_prelude(
            r#"
            tasktemplate task tt of taskclass Consumer {
                parameters { p1 };
                inputs { input main { inputobject in from { out of task p1 if output done } } }
            }
            t of tasktemplate tt(phantom)
            "#,
        ));
        assert!(err.to_string().contains("names no task in scope"), "{err}");
    }

    #[test]
    fn dead_constituent_warned() {
        let source = with_prelude(
            r#"
            taskclass Wrap {
                inputs { input main { seed of class C } };
                outputs { outcome done { } }
            }
            compoundtask w of taskclass Wrap {
                task p of taskclass Producer {
                    inputs { input main {
                        inputobject seed from { seed of task w if input main }
                    } }
                };
                task q of taskclass Producer {
                    inputs { input main {
                        inputobject seed from { seed of task w if input main }
                    } }
                };
                outputs { outcome done { notification from { task p if output done } } }
            }
            "#,
        );
        let script = parse(&source).unwrap();
        let checked = check(&script).unwrap();
        let warned = checked.warnings().to_string();
        assert!(warned.contains("`q` feeds no other task"), "{warned}");
    }
}
