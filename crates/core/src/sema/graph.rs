//! Static dependency-cycle detection within a scope.
//!
//! Notification and dataflow dependencies must form a DAG within each
//! compound task (and at top level); a cycle means the tasks can never
//! start. Cycles through `repeat` outcomes are the paper's legal looping
//! construct (Fig. 8) and are excluded by the caller before edges reach
//! this module.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Diagnostic, Diagnostics};
use crate::span::Span;

/// Checks the scope's dependency graph for cycles.
///
/// `edges` yields `(consumer, producers)` pairs: the consumer depends on
/// each producer. Reports one error per distinct cycle found.
pub(crate) fn check_cycles<'a>(
    edges: impl Iterator<Item = (&'a str, Vec<&'a str>)>,
    diags: &mut Diagnostics,
) {
    let adjacency: BTreeMap<&str, BTreeSet<&str>> = edges
        .map(|(consumer, producers)| (consumer, producers.into_iter().collect()))
        .collect();

    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }

    let mut marks: BTreeMap<&str, Mark> = adjacency.keys().map(|k| (*k, Mark::White)).collect();
    let mut reported: BTreeSet<String> = BTreeSet::new();

    fn visit<'a>(
        node: &'a str,
        adjacency: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        stack: &mut Vec<&'a str>,
        reported: &mut BTreeSet<String>,
        diags: &mut Diagnostics,
    ) {
        match marks.get(node).copied() {
            Some(Mark::Black) | None => return,
            Some(Mark::Grey) => {
                // Found a cycle: slice the stack from the first occurrence.
                let start = stack.iter().position(|n| *n == node).unwrap_or(0);
                let mut cycle: Vec<&str> = stack[start..].to_vec();
                cycle.push(node);
                // Canonicalise so each cycle is reported once.
                let mut canonical = cycle.clone();
                canonical.pop();
                canonical.sort_unstable();
                let key = canonical.join("→");
                if reported.insert(key) {
                    diags.push(Diagnostic::error(
                        format!(
                            "dependency cycle: {} (break it with a repeat outcome \
                             or remove a dependency)",
                            cycle.join(" → ")
                        ),
                        Span::SYNTHETIC,
                    ));
                }
                return;
            }
            Some(Mark::White) => {}
        }
        marks.insert(node, Mark::Grey);
        stack.push(node);
        if let Some(producers) = adjacency.get(node) {
            for producer in producers {
                visit(producer, adjacency, marks, stack, reported, diags);
            }
        }
        stack.pop();
        marks.insert(node, Mark::Black);
    }

    let nodes: Vec<&str> = adjacency.keys().copied().collect();
    for node in nodes {
        let mut stack = Vec::new();
        visit(
            node,
            &adjacency,
            &mut marks,
            &mut stack,
            &mut reported,
            diags,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycles_in(edges: Vec<(&str, Vec<&str>)>) -> usize {
        let mut diags = Diagnostics::new();
        check_cycles(edges.into_iter(), &mut diags);
        diags.errors().count()
    }

    #[test]
    fn dag_is_clean() {
        assert_eq!(
            cycles_in(vec![
                ("t4", vec!["t2", "t3"]),
                ("t2", vec!["t1"]),
                ("t3", vec!["t1"]),
                ("t1", vec![]),
            ]),
            0
        );
    }

    #[test]
    fn two_cycle_detected_once() {
        assert_eq!(cycles_in(vec![("a", vec!["b"]), ("b", vec!["a"])]), 1);
    }

    #[test]
    fn long_cycle_detected() {
        assert_eq!(
            cycles_in(vec![
                ("a", vec!["b"]),
                ("b", vec!["c"]),
                ("c", vec!["d"]),
                ("d", vec!["a"]),
            ]),
            1
        );
    }

    #[test]
    fn disjoint_cycles_both_reported() {
        assert_eq!(
            cycles_in(vec![
                ("a", vec!["b"]),
                ("b", vec!["a"]),
                ("x", vec!["y"]),
                ("y", vec!["x"]),
            ]),
            2
        );
    }

    #[test]
    fn unknown_producers_ignored() {
        // Producers outside the scope (e.g. the enclosing compound) are
        // simply absent from the adjacency table.
        assert_eq!(cycles_in(vec![("a", vec!["outside"])]), 0);
    }
}
