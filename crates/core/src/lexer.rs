//! Hand-written lexer with spans, comments and curly-quote tolerance.
//!
//! The paper's listings were typeset with curly quotes (`“code”`); the
//! lexer accepts both those and straight `"` so the examples can be pasted
//! verbatim.

use crate::diag::{Diagnostic, Diagnostics};
use crate::span::{Pos, Span};
use crate::token::{Token, TokenKind};

/// Lexes `source` into tokens (always ending with [`TokenKind::Eof`]).
///
/// # Errors
///
/// Returns all lexical errors found (unterminated strings/comments,
/// stray characters); tokens before the first error are not returned.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostics> {
    let mut lexer = Lexer::new(source);
    lexer.run();
    if lexer.diags.has_errors() {
        Err(lexer.diags)
    } else {
        Ok(lexer.tokens)
    }
}

struct Lexer<'a> {
    source: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    pos: Pos,
    tokens: Vec<Token>,
    diags: Diagnostics,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            source,
            chars: source.char_indices().peekable(),
            pos: Pos::START,
            tokens: Vec::new(),
            diags: Diagnostics::new(),
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|(_, c)| *c)
    }

    fn bump(&mut self) -> Option<char> {
        let (offset, c) = self.chars.next()?;
        self.pos.offset = offset + c.len_utf8();
        if c == '\n' {
            self.pos.line += 1;
            self.pos.column = 1;
        } else {
            self.pos.column += 1;
        }
        Some(c)
    }

    fn run(&mut self) {
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start, start),
                });
                return;
            };
            match c {
                '{' => self.punct(TokenKind::LBrace),
                '}' => self.punct(TokenKind::RBrace),
                '(' => self.punct(TokenKind::LParen),
                ')' => self.punct(TokenKind::RParen),
                ';' => self.punct(TokenKind::Semi),
                ',' => self.punct(TokenKind::Comma),
                '"' | '\u{201C}' | '\u{201D}' => self.string(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                other => {
                    self.bump();
                    self.diags.push(Diagnostic::error(
                        format!("unexpected character `{other}`"),
                        Span::new(start, self.pos),
                    ));
                }
            }
        }
    }

    fn punct(&mut self, kind: TokenKind) {
        let start = self.pos;
        self.bump();
        self.tokens.push(Token {
            kind,
            span: Span::new(start, self.pos),
        });
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') => {
                    // Look ahead for a comment opener without consuming a
                    // lone slash.
                    let mut lookahead = self.chars.clone();
                    lookahead.next();
                    match lookahead.peek().map(|(_, c)| *c) {
                        Some('/') => {
                            while let Some(c) = self.peek() {
                                if c == '\n' {
                                    break;
                                }
                                self.bump();
                            }
                        }
                        Some('*') => {
                            let start = self.pos;
                            self.bump();
                            self.bump();
                            let mut closed = false;
                            while let Some(c) = self.bump() {
                                if c == '*' && self.peek() == Some('/') {
                                    self.bump();
                                    closed = true;
                                    break;
                                }
                            }
                            if !closed {
                                self.diags.push(Diagnostic::error(
                                    "unterminated block comment",
                                    Span::new(start, self.pos),
                                ));
                            }
                        }
                        _ => {
                            let start = self.pos;
                            self.bump();
                            self.diags.push(Diagnostic::error(
                                "unexpected character `/`",
                                Span::new(start, self.pos),
                            ));
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn string(&mut self) {
        let start = self.pos;
        let open = self.bump().expect("string opener");
        let mut text = String::new();
        loop {
            match self.peek() {
                None | Some('\n') => {
                    self.diags.push(Diagnostic::error(
                        "unterminated string literal",
                        Span::new(start, self.pos),
                    ));
                    return;
                }
                Some('"') | Some('\u{201D}') | Some('\u{201C}') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    text.push(self.bump().expect("peeked"));
                }
            }
        }
        let _ = open;
        // The paper sometimes has stray spaces inside quoted names
        // (`“ refPaymentAuthorisation”`); normalise them away.
        let text = text.trim().to_string();
        self.tokens.push(Token {
            kind: TokenKind::Str(text),
            span: Span::new(start, self.pos),
        });
    }

    fn ident(&mut self) {
        let start = self.pos;
        let begin_offset = start.offset;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.source[begin_offset..self.pos.offset];
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        self.tokens.push(Token {
            kind,
            span: Span::new(start, self.pos),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_class_declaration() {
        assert_eq!(
            kinds("class Account;"),
            vec![
                TokenKind::Class,
                TokenKind::Ident("Account".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            kinds("task tasks"),
            vec![
                TokenKind::Task,
                TokenKind::Ident("tasks".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_straight_and_curly() {
        assert_eq!(
            kinds(r#""code" is "SETPaymentCapture""#),
            vec![
                TokenKind::Str("code".into()),
                TokenKind::Is,
                TokenKind::Str("SETPaymentCapture".into()),
                TokenKind::Eof
            ]
        );
        // Curly quotes as the paper's PDF has them, with a stray space.
        assert_eq!(
            kinds("\u{201C}code\u{201D} is \u{201C} refDispatch\u{201D}"),
            vec![
                TokenKind::Str("code".into()),
                TokenKind::Is,
                TokenKind::Str("refDispatch".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let source = "class A; // trailing\n/* block\n comment */ class B;";
        assert_eq!(
            kinds(source),
            vec![
                TokenKind::Class,
                TokenKind::Ident("A".into()),
                TokenKind::Semi,
                TokenKind::Class,
                TokenKind::Ident("B".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let tokens = lex("class\n  Account").unwrap();
        assert_eq!(tokens[0].span.start.line, 1);
        assert_eq!(tokens[0].span.start.column, 1);
        assert_eq!(tokens[1].span.start.line, 2);
        assert_eq!(tokens[1].span.start.column, 3);
    }

    #[test]
    fn unterminated_string_is_error() {
        let err = lex("\"oops").unwrap_err();
        assert!(err.has_errors());
        assert!(err.to_string().contains("unterminated string"));
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        let err = lex("/* forever").unwrap_err();
        assert!(err.to_string().contains("unterminated block comment"));
    }

    #[test]
    fn stray_character_is_error() {
        let err = lex("class A; @").unwrap_err();
        assert!(err.to_string().contains("unexpected character `@`"));
    }

    #[test]
    fn lone_slash_is_error() {
        let err = lex("a / b").unwrap_err();
        assert!(err.to_string().contains("unexpected character `/`"));
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t "), vec![TokenKind::Eof]);
    }
}
