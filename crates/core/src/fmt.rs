//! Canonical script formatter.
//!
//! [`format_script`] renders an AST back to source in the paper's layout.
//! Formatting is *canonical*: `format(parse(format(s))) == format(s)`
//! (property-tested), which the repository service uses to store scripts
//! in a normal form.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a whole script in canonical form.
pub fn format_script(script: &Script) -> String {
    let mut out = String::new();
    let mut first = true;
    for item in &script.items {
        if !first {
            out.push('\n');
        }
        first = false;
        format_item(item, &mut out);
    }
    out
}

fn format_item(item: &Item, out: &mut String) {
    match item {
        Item::Class(class) => {
            let _ = writeln!(out, "class {};", class.name);
        }
        Item::TaskClass(tc) => format_taskclass(tc, out),
        Item::Task(task) => {
            format_task(task, 0, out);
            out.push('\n');
        }
        Item::Compound(compound) => {
            format_compound(compound, 0, out);
            out.push('\n');
        }
        Item::Template(template) => format_template(template, out),
        Item::TemplateInstance(instance) => {
            let args: Vec<&str> = instance.args.iter().map(Ident::as_str).collect();
            let _ = writeln!(
                out,
                "{} of tasktemplate {}({});",
                instance.name,
                instance.template,
                args.join(", ")
            );
        }
    }
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn format_taskclass(tc: &TaskClassDecl, out: &mut String) {
    let _ = writeln!(out, "taskclass {} {{", tc.name);
    if !tc.input_sets.is_empty() {
        indent(1, out);
        out.push_str("inputs {\n");
        for (i, set) in tc.input_sets.iter().enumerate() {
            indent(2, out);
            let _ = write!(out, "input {} {{", set.name);
            format_object_sigs(&set.objects, 3, out);
            indent(2, out);
            out.push('}');
            if i + 1 < tc.input_sets.len() {
                out.push(';');
            }
            out.push('\n');
        }
        indent(1, out);
        out.push('}');
        if !tc.outputs.is_empty() {
            out.push(';');
        }
        out.push('\n');
    }
    if !tc.outputs.is_empty() {
        indent(1, out);
        out.push_str("outputs {\n");
        for (i, output) in tc.outputs.iter().enumerate() {
            indent(2, out);
            let _ = write!(out, "{} {} {{", output.kind.keyword(), output.name);
            format_object_sigs(&output.objects, 3, out);
            indent(2, out);
            out.push('}');
            if i + 1 < tc.outputs.len() {
                out.push(';');
            }
            out.push('\n');
        }
        indent(1, out);
        out.push_str("}\n");
    }
    out.push_str("}\n");
}

fn format_object_sigs(objects: &[ObjectSig], level: usize, out: &mut String) {
    if objects.is_empty() {
        out.push(' ');
        return;
    }
    out.push('\n');
    for (i, object) in objects.iter().enumerate() {
        indent(level, out);
        let _ = write!(out, "{} of class {}", object.name, object.class);
        if i + 1 < objects.len() {
            out.push(';');
        }
        out.push('\n');
    }
}

fn format_task(task: &TaskDecl, level: usize, out: &mut String) {
    indent(level, out);
    let _ = writeln!(out, "task {} of taskclass {} {{", task.name, task.class);
    format_task_body(&task.implementation, &task.input_sets, level, out);
    indent(level, out);
    out.push('}');
}

fn format_task_body(
    implementation: &[ImplPair],
    input_sets: &[InputSetBinding],
    level: usize,
    out: &mut String,
) {
    if !implementation.is_empty() {
        indent(level + 1, out);
        out.push_str("implementation {");
        for (i, pair) in implementation.iter().enumerate() {
            let _ = write!(out, " \"{}\" is \"{}\"", pair.key, pair.value);
            if i + 1 < implementation.len() {
                out.push(';');
            }
        }
        out.push_str(" }");
        if !input_sets.is_empty() {
            out.push(';');
        }
        out.push('\n');
    }
    if !input_sets.is_empty() {
        indent(level + 1, out);
        out.push_str("inputs {\n");
        for (i, binding) in input_sets.iter().enumerate() {
            format_input_set(binding, level + 2, out);
            if i + 1 < input_sets.len() {
                out.push(';');
            }
            out.push('\n');
        }
        indent(level + 1, out);
        out.push_str("}\n");
    }
}

fn format_input_set(binding: &InputSetBinding, level: usize, out: &mut String) {
    indent(level, out);
    let _ = writeln!(out, "input {} {{", binding.name);
    for (i, element) in binding.elements.iter().enumerate() {
        match element {
            InputElem::Object(object) => {
                indent(level + 1, out);
                let _ = writeln!(out, "inputobject {} from {{", object.name);
                format_object_sources(&object.sources, level + 2, out);
                indent(level + 1, out);
                out.push('}');
            }
            InputElem::Notification(notification) => {
                indent(level + 1, out);
                out.push_str("notification from {\n");
                format_notif_sources(&notification.sources, level + 2, out);
                indent(level + 1, out);
                out.push('}');
            }
        }
        if i + 1 < binding.elements.len() {
            out.push(';');
        }
        out.push('\n');
    }
    indent(level, out);
    out.push('}');
}

fn format_object_sources(sources: &[ObjectSource], level: usize, out: &mut String) {
    for (i, source) in sources.iter().enumerate() {
        indent(level, out);
        let _ = write!(out, "{} of task {}", source.object, source.task);
        match &source.cond {
            SourceCond::Input(set) => {
                let _ = write!(out, " if input {set}");
            }
            SourceCond::Output(outcome) => {
                let _ = write!(out, " if output {outcome}");
            }
            SourceCond::Any => {}
        }
        if i + 1 < sources.len() {
            out.push(';');
        }
        out.push('\n');
    }
}

fn format_notif_sources(sources: &[NotifSource], level: usize, out: &mut String) {
    for (i, source) in sources.iter().enumerate() {
        indent(level, out);
        let _ = write!(out, "task {} if output {}", source.task, source.outcome);
        if i + 1 < sources.len() {
            out.push(';');
        }
        out.push('\n');
    }
}

fn format_compound(compound: &CompoundTaskDecl, level: usize, out: &mut String) {
    indent(level, out);
    let _ = writeln!(
        out,
        "compoundtask {} of taskclass {} {{",
        compound.name, compound.class
    );
    let has_more = !compound.constituents.is_empty() || !compound.outputs.is_empty();
    if !compound.input_sets.is_empty() {
        indent(level + 1, out);
        out.push_str("inputs {\n");
        for (i, binding) in compound.input_sets.iter().enumerate() {
            format_input_set(binding, level + 2, out);
            if i + 1 < compound.input_sets.len() {
                out.push(';');
            }
            out.push('\n');
        }
        indent(level + 1, out);
        out.push('}');
        if has_more {
            out.push(';');
        }
        out.push('\n');
    }
    for (i, constituent) in compound.constituents.iter().enumerate() {
        match constituent {
            Constituent::Task(task) => format_task(task, level + 1, out),
            Constituent::Compound(inner) => format_compound(inner, level + 1, out),
            Constituent::TemplateInstance(instance) => {
                indent(level + 1, out);
                let args: Vec<&str> = instance.args.iter().map(Ident::as_str).collect();
                let _ = write!(
                    out,
                    "{} of tasktemplate {}({})",
                    instance.name,
                    instance.template,
                    args.join(", ")
                );
            }
        }
        if i + 1 < compound.constituents.len() || !compound.outputs.is_empty() {
            out.push(';');
        }
        out.push('\n');
    }
    if !compound.outputs.is_empty() {
        indent(level + 1, out);
        out.push_str("outputs {\n");
        for (i, mapping) in compound.outputs.iter().enumerate() {
            format_output_mapping(mapping, level + 2, out);
            if i + 1 < compound.outputs.len() {
                out.push(';');
            }
            out.push('\n');
        }
        indent(level + 1, out);
        out.push_str("}\n");
    }
    indent(level, out);
    out.push('}');
}

fn format_output_mapping(mapping: &OutputMapping, level: usize, out: &mut String) {
    indent(level, out);
    let _ = writeln!(out, "{} {} {{", mapping.kind.keyword(), mapping.name);
    for (i, element) in mapping.elements.iter().enumerate() {
        match element {
            OutputElem::Object(object) => {
                indent(level + 1, out);
                let _ = writeln!(out, "outputobject {} from {{", object.name);
                format_object_sources(&object.sources, level + 2, out);
                indent(level + 1, out);
                out.push('}');
            }
            OutputElem::Notification(notification) => {
                indent(level + 1, out);
                out.push_str("notification from {\n");
                format_notif_sources(&notification.sources, level + 2, out);
                indent(level + 1, out);
                out.push('}');
            }
        }
        if i + 1 < mapping.elements.len() {
            out.push(';');
        }
        out.push('\n');
    }
    indent(level, out);
    out.push('}');
}

fn format_template(template: &TemplateDecl, out: &mut String) {
    let _ = writeln!(
        out,
        "tasktemplate task {} of taskclass {} {{",
        template.name, template.class
    );
    if !template.params.is_empty() {
        indent(1, out);
        out.push_str("parameters {");
        for (i, param) in template.params.iter().enumerate() {
            let _ = write!(out, " {param}");
            if i + 1 < template.params.len() {
                out.push(';');
            }
        }
        out.push_str(" }");
        if !template.implementation.is_empty() || !template.input_sets.is_empty() {
            out.push(';');
        }
        out.push('\n');
    }
    format_task_body(&template.implementation, &template.input_sets, 0, out);
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::samples;

    /// The canonical-form property: formatting is idempotent through a
    /// parse cycle.
    fn assert_roundtrip(name: &str, source: &str) {
        let script =
            parse(source).unwrap_or_else(|d| panic!("{name}: parse failed\n{}", d.render(source)));
        let formatted = format_script(&script);
        let reparsed = parse(&formatted)
            .unwrap_or_else(|d| panic!("{name}: reparse failed\n{}", d.render(&formatted)));
        let reformatted = format_script(&reparsed);
        assert_eq!(formatted, reformatted, "{name}: formatting not canonical");
        // Structural equality of items (Ident equality ignores spans, but
        // struct spans differ — compare by formatting again instead).
        assert_eq!(script.items.len(), reparsed.items.len());
    }

    #[test]
    fn samples_roundtrip() {
        for (name, source) in samples::all() {
            assert_roundtrip(name, source);
        }
    }

    #[test]
    fn formats_class_simply() {
        let script = parse("class A;").unwrap();
        assert_eq!(format_script(&script), "class A;\n");
    }

    #[test]
    fn formats_template_and_instance() {
        let source = r#"
            class C;
            taskclass T {
                inputs { input main { x of class C } };
                outputs { outcome done { } }
            }
            tasktemplate task tt of taskclass T {
                parameters { p };
                implementation { "code" is "ref" };
                inputs { input main { inputobject x from { x of task p if input main } } }
            }
            i of tasktemplate tt(other)
        "#;
        assert_roundtrip("template", source);
        let script = parse(source).unwrap();
        let text = format_script(&script);
        assert!(text.contains("tasktemplate task tt of taskclass T"));
        assert!(text.contains("i of tasktemplate tt(other);"));
    }

    #[test]
    fn formats_all_source_conds() {
        let source = r#"
            class C;
            taskclass P {
                inputs { input main { a of class C } };
                outputs { outcome done { a of class C } }
            }
            task t of taskclass P {
                inputs {
                    input main {
                        inputobject a from {
                            a of task t if input main;
                            a of task t if output done;
                            a of task t
                        }
                    }
                }
            }
        "#;
        assert_roundtrip("conds", source);
        let text = format_script(&parse(source).unwrap());
        assert!(text.contains("if input main"));
        assert!(text.contains("if output done"));
        assert!(text.contains("a of task t\n"));
    }
}
