use std::fmt;

use crate::span::Span;

/// Lexical token kinds of the flowscript language.
///
/// Every keyword of the paper's grammar is reserved; identifiers may not
/// shadow them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Keywords (paper §4).
    Class,
    TaskClass,
    Task,
    CompoundTask,
    TaskTemplate,
    Inputs,
    Outputs,
    Input,
    Output,
    InputObject,
    OutputObject,
    Notification,
    From,
    Of,
    If,
    Is,
    Implementation,
    Outcome,
    Abort,
    Repeat,
    Mark,
    Parameters,

    /// An identifier (task, class, object or outcome name).
    Ident(String),
    /// A string literal (implementation keys/values).
    Str(String),

    LBrace,
    RBrace,
    LParen,
    RParen,
    Semi,
    Comma,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// The keyword for `text`, if it is one.
    pub fn keyword(text: &str) -> Option<TokenKind> {
        Some(match text {
            "class" => TokenKind::Class,
            "taskclass" => TokenKind::TaskClass,
            "task" => TokenKind::Task,
            "compoundtask" => TokenKind::CompoundTask,
            "tasktemplate" => TokenKind::TaskTemplate,
            "inputs" => TokenKind::Inputs,
            "outputs" => TokenKind::Outputs,
            "input" => TokenKind::Input,
            "output" => TokenKind::Output,
            "inputobject" => TokenKind::InputObject,
            "outputobject" => TokenKind::OutputObject,
            "notification" => TokenKind::Notification,
            "from" => TokenKind::From,
            "of" => TokenKind::Of,
            "if" => TokenKind::If,
            "is" => TokenKind::Is,
            "implementation" => TokenKind::Implementation,
            "outcome" => TokenKind::Outcome,
            "abort" => TokenKind::Abort,
            "repeat" => TokenKind::Repeat,
            "mark" => TokenKind::Mark,
            "parameters" => TokenKind::Parameters,
            _ => return None,
        })
    }

    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            TokenKind::LBrace => "`{`".to_string(),
            TokenKind::RBrace => "`}`".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::Semi => "`;`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            keyword => format!("keyword `{}`", keyword.keyword_text().unwrap_or("?")),
        }
    }

    /// The source text of a keyword token.
    pub fn keyword_text(&self) -> Option<&'static str> {
        Some(match self {
            TokenKind::Class => "class",
            TokenKind::TaskClass => "taskclass",
            TokenKind::Task => "task",
            TokenKind::CompoundTask => "compoundtask",
            TokenKind::TaskTemplate => "tasktemplate",
            TokenKind::Inputs => "inputs",
            TokenKind::Outputs => "outputs",
            TokenKind::Input => "input",
            TokenKind::Output => "output",
            TokenKind::InputObject => "inputobject",
            TokenKind::OutputObject => "outputobject",
            TokenKind::Notification => "notification",
            TokenKind::From => "from",
            TokenKind::Of => "of",
            TokenKind::If => "if",
            TokenKind::Is => "is",
            TokenKind::Implementation => "implementation",
            TokenKind::Outcome => "outcome",
            TokenKind::Abort => "abort",
            TokenKind::Repeat => "repeat",
            TokenKind::Mark => "mark",
            TokenKind::Parameters => "parameters",
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A lexed token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_roundtrip() {
        for text in [
            "class",
            "taskclass",
            "task",
            "compoundtask",
            "tasktemplate",
            "inputs",
            "outputs",
            "input",
            "output",
            "inputobject",
            "outputobject",
            "notification",
            "from",
            "of",
            "if",
            "is",
            "implementation",
            "outcome",
            "abort",
            "repeat",
            "mark",
            "parameters",
        ] {
            let kind = TokenKind::keyword(text).expect(text);
            assert_eq!(kind.keyword_text(), Some(text));
        }
        assert_eq!(TokenKind::keyword("orders"), None);
    }

    #[test]
    fn descriptions_are_informative() {
        assert_eq!(
            TokenKind::Ident("dispatch".into()).describe(),
            "identifier `dispatch`"
        );
        assert_eq!(TokenKind::Class.describe(), "keyword `class`");
        assert_eq!(TokenKind::Semi.describe(), "`;`");
        assert_eq!(TokenKind::Class.to_string(), "keyword `class`");
    }
}
