//! Diagnostics: errors and warnings with source excerpts.

use std::fmt;

use crate::span::Span;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not fatal (e.g. unreachable task).
    Warning,
    /// The script is invalid.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One problem found while lexing, parsing or checking a script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Where in the source, when known.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Creates an error diagnostic at `span`.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Self {
            severity: Severity::Error,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a warning diagnostic at `span`.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Self {
            severity: Severity::Warning,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates an error with no specific location.
    pub fn error_global(message: impl Into<String>) -> Self {
        Self {
            severity: Severity::Error,
            message: message.into(),
            span: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) if !span.is_synthetic() => {
                write!(f, "{} at {}: {}", self.severity, span, self.message)
            }
            _ => write!(f, "{}: {}", self.severity, self.message),
        }
    }
}

/// A batch of diagnostics, used as the error type of [`crate::parse`] and
/// [`crate::sema::check`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, diagnostic: Diagnostic) {
        self.items.push(diagnostic);
    }

    /// All diagnostics, in discovery order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Count of all diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Only the errors.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Only the warnings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Renders each diagnostic with a source excerpt and caret.
    pub fn render(&self, source: &str) -> String {
        use fmt::Write as _;
        let lines: Vec<&str> = source.lines().collect();
        let mut out = String::new();
        for diagnostic in &self.items {
            let _ = writeln!(out, "{diagnostic}");
            if let Some(span) = diagnostic.span {
                if !span.is_synthetic() {
                    let line_idx = span.start.line as usize - 1;
                    if let Some(line) = lines.get(line_idx) {
                        let _ = writeln!(out, "  | {line}");
                        let pad = " ".repeat(span.start.column.saturating_sub(1) as usize);
                        let width = if span.end.line == span.start.line {
                            (span.end.column.saturating_sub(span.start.column)).max(1) as usize
                        } else {
                            1
                        };
                        let _ = writeln!(out, "  | {pad}{}", "^".repeat(width));
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.items.is_empty() {
            return write!(f, "no diagnostics");
        }
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Self {
        Self {
            items: iter.into_iter().collect(),
        }
    }
}

impl Extend<Diagnostic> for Diagnostics {
    fn extend<I: IntoIterator<Item = Diagnostic>>(&mut self, iter: I) {
        self.items.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Pos;

    fn span_at(line: u32, column: u32, len: u32) -> Span {
        Span::new(
            Pos {
                offset: 0,
                line,
                column,
            },
            Pos {
                offset: len as usize,
                line,
                column: column + len,
            },
        )
    }

    #[test]
    fn render_includes_caret_line() {
        let source = "class Account;\ntask oops";
        let mut diags = Diagnostics::new();
        diags.push(Diagnostic::error("expected `of`", span_at(2, 6, 4)));
        let rendered = diags.render(source);
        assert!(rendered.contains("task oops"));
        assert!(rendered.contains("^^^^"));
        assert!(rendered.contains("error at 2:6"));
    }

    #[test]
    fn error_and_warning_partition() {
        let mut diags = Diagnostics::new();
        diags.push(Diagnostic::warning("meh", span_at(1, 1, 1)));
        diags.push(Diagnostic::error_global("bad"));
        assert!(diags.has_errors());
        assert_eq!(diags.errors().count(), 1);
        assert_eq!(diags.warnings().count(), 1);
        assert_eq!(diags.len(), 2);
        assert!(!diags.is_empty());
    }

    #[test]
    fn display_joins_lines() {
        let diags: Diagnostics = vec![
            Diagnostic::error_global("one"),
            Diagnostic::error_global("two"),
        ]
        .into_iter()
        .collect();
        let text = diags.to_string();
        assert!(text.contains("one"));
        assert!(text.contains("two"));
        assert_eq!(Diagnostics::new().to_string(), "no diagnostics");
    }
}
