//! Recursive-descent parser with multi-error recovery.
//!
//! The concrete syntax follows the paper's listings. Separators are
//! semicolons; the parser is lenient about trailing semicolons (the paper
//! itself is inconsistent) and accepts the §4.5 shorthand
//! `i1 of task t2 if output success` inside input sets as sugar for an
//! `inputobject … from { … }` with a single source.

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics};
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete script.
///
/// # Errors
///
/// Returns every lexical and syntactic problem found; the parser recovers
/// at `;`/`}` boundaries so one error does not hide the rest.
///
/// ```
/// let script = flowscript_core::parse("class Account;")?;
/// assert_eq!(script.items.len(), 1);
/// # Ok::<(), flowscript_core::Diagnostics>(())
/// ```
pub fn parse(source: &str) -> Result<Script, Diagnostics> {
    let tokens = lex(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        diags: Diagnostics::new(),
    };
    let script = parser.script();
    if parser.diags.has_errors() {
        Err(parser.diags)
    } else {
        Ok(script)
    }
}

/// Parses a single `task … of taskclass … { … }` declaration — the
/// fragment form used by dynamic reconfiguration (adding a task to a
/// *running* instance, paper §2).
///
/// # Errors
///
/// Lexical/syntactic diagnostics, or an error if the fragment is not
/// exactly one task declaration.
pub fn parse_task_decl(source: &str) -> Result<TaskDecl, Diagnostics> {
    let script = parse(source)?;
    let mut tasks: Vec<TaskDecl> = script
        .items
        .into_iter()
        .filter_map(|item| match item {
            Item::Task(task) => Some(task),
            _ => None,
        })
        .collect();
    if tasks.len() != 1 {
        let mut diags = Diagnostics::new();
        diags.push(Diagnostic::error_global(format!(
            "expected exactly one task declaration, found {}",
            tasks.len()
        )));
        return Err(diags);
    }
    Ok(tasks.remove(0))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diags: Diagnostics,
}

/// Internal sentinel: an error was already recorded; recover upward.
struct Recover;

type PResult<T> = Result<T, Recover>;

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let idx = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let token = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        token
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> PResult<Token> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            self.diags.push(Diagnostic::error(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
                self.span(),
            ));
            Err(Recover)
        }
    }

    fn ident(&mut self) -> PResult<Ident> {
        match self.peek() {
            TokenKind::Ident(_) => {
                let token = self.bump();
                let TokenKind::Ident(name) = token.kind else {
                    unreachable!("peeked ident");
                };
                Ok(Ident {
                    name,
                    span: token.span,
                })
            }
            other => {
                self.diags.push(Diagnostic::error(
                    format!("expected identifier, found {}", other.describe()),
                    self.span(),
                ));
                Err(Recover)
            }
        }
    }

    fn string(&mut self) -> PResult<String> {
        match self.peek() {
            TokenKind::Str(_) => {
                let token = self.bump();
                let TokenKind::Str(text) = token.kind else {
                    unreachable!("peeked string");
                };
                Ok(text)
            }
            other => {
                self.diags.push(Diagnostic::error(
                    format!("expected string literal, found {}", other.describe()),
                    self.span(),
                ));
                Err(Recover)
            }
        }
    }

    /// Skips to the next `;` at brace depth 0 (consuming it) or to a `}`
    /// (not consuming), for recovery inside blocks.
    fn sync_element(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.bump();
                }
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Skips to the start of the next plausible top-level item.
    fn sync_item(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                }
                TokenKind::Class
                | TokenKind::TaskClass
                | TokenKind::Task
                | TokenKind::CompoundTask
                | TokenKind::TaskTemplate
                    if depth == 0 =>
                {
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn script(&mut self) -> Script {
        let mut items = Vec::new();
        loop {
            while self.eat(&TokenKind::Semi) {}
            if self.at(&TokenKind::Eof) {
                break;
            }
            match self.item() {
                Ok(item) => items.push(item),
                Err(Recover) => self.sync_item(),
            }
        }
        Script { items }
    }

    fn item(&mut self) -> PResult<Item> {
        match self.peek() {
            TokenKind::Class => self.class_decl().map(Item::Class),
            TokenKind::TaskClass => self.taskclass_decl().map(Item::TaskClass),
            TokenKind::Task => self.task_decl().map(Item::Task),
            TokenKind::CompoundTask => self.compound_decl().map(Item::Compound),
            TokenKind::TaskTemplate => self.template_decl().map(Item::Template),
            TokenKind::Ident(_) if matches!(self.peek2(), TokenKind::Of) => {
                self.template_instance().map(Item::TemplateInstance)
            }
            other => {
                self.diags.push(Diagnostic::error(
                    format!("expected a declaration, found {}", other.describe()),
                    self.span(),
                ));
                Err(Recover)
            }
        }
    }

    fn class_decl(&mut self) -> PResult<ClassDecl> {
        let start = self.span();
        self.expect(&TokenKind::Class)?;
        let name = self.ident()?;
        self.expect(&TokenKind::Semi)?;
        Ok(ClassDecl {
            name,
            span: start.merge(self.prev_span()),
        })
    }

    fn taskclass_decl(&mut self) -> PResult<TaskClassDecl> {
        let start = self.span();
        self.expect(&TokenKind::TaskClass)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut input_sets = Vec::new();
        let mut outputs = Vec::new();
        loop {
            while self.eat(&TokenKind::Semi) {}
            match self.peek() {
                TokenKind::Inputs => {
                    self.bump();
                    self.expect(&TokenKind::LBrace)?;
                    self.separated_until_rbrace(|p| {
                        let set = p.input_set_sig()?;
                        input_sets.push(set);
                        Ok(())
                    });
                    self.expect(&TokenKind::RBrace)?;
                }
                TokenKind::Outputs => {
                    self.bump();
                    self.expect(&TokenKind::LBrace)?;
                    self.separated_until_rbrace(|p| {
                        let output = p.output_sig()?;
                        outputs.push(output);
                        Ok(())
                    });
                    self.expect(&TokenKind::RBrace)?;
                }
                TokenKind::RBrace => break,
                other => {
                    self.diags.push(Diagnostic::error(
                        format!(
                            "expected `inputs`, `outputs` or `}}` in taskclass body, found {}",
                            other.describe()
                        ),
                        self.span(),
                    ));
                    return Err(Recover);
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(TaskClassDecl {
            name,
            input_sets,
            outputs,
            span: start.merge(self.prev_span()),
        })
    }

    /// Runs `element` repeatedly, separated by `;`, until a `}`.
    /// Recovers inside elements.
    fn separated_until_rbrace(&mut self, mut element: impl FnMut(&mut Self) -> PResult<()>) {
        loop {
            while self.eat(&TokenKind::Semi) {}
            if self.at(&TokenKind::RBrace) || self.at(&TokenKind::Eof) {
                return;
            }
            if element(self).is_err() {
                self.sync_element();
            }
        }
    }

    fn input_set_sig(&mut self) -> PResult<InputSetSig> {
        self.expect(&TokenKind::Input)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut objects = Vec::new();
        self.separated_until_rbrace(|p| {
            let sig = p.object_sig()?;
            objects.push(sig);
            Ok(())
        });
        self.expect(&TokenKind::RBrace)?;
        Ok(InputSetSig { name, objects })
    }

    fn object_sig(&mut self) -> PResult<ObjectSig> {
        let name = self.ident()?;
        self.expect(&TokenKind::Of)?;
        self.expect(&TokenKind::Class)?;
        let class = self.ident()?;
        Ok(ObjectSig { name, class })
    }

    fn output_kind(&mut self) -> PResult<OutputKind> {
        match self.peek() {
            TokenKind::Outcome => {
                self.bump();
                Ok(OutputKind::Outcome)
            }
            TokenKind::Abort => {
                self.bump();
                self.expect(&TokenKind::Outcome)?;
                Ok(OutputKind::AbortOutcome)
            }
            TokenKind::Repeat => {
                self.bump();
                self.expect(&TokenKind::Outcome)?;
                Ok(OutputKind::RepeatOutcome)
            }
            TokenKind::Mark => {
                self.bump();
                Ok(OutputKind::Mark)
            }
            other => {
                self.diags.push(Diagnostic::error(
                    format!(
                        "expected `outcome`, `abort outcome`, `repeat outcome` or `mark`, found {}",
                        other.describe()
                    ),
                    self.span(),
                ));
                Err(Recover)
            }
        }
    }

    fn output_sig(&mut self) -> PResult<OutputSig> {
        let kind = self.output_kind()?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut objects = Vec::new();
        self.separated_until_rbrace(|p| {
            let sig = p.object_sig()?;
            objects.push(sig);
            Ok(())
        });
        self.expect(&TokenKind::RBrace)?;
        Ok(OutputSig {
            kind,
            name,
            objects,
        })
    }

    fn task_decl(&mut self) -> PResult<TaskDecl> {
        let start = self.span();
        self.expect(&TokenKind::Task)?;
        let name = self.ident()?;
        self.expect(&TokenKind::Of)?;
        self.expect(&TokenKind::TaskClass)?;
        let class = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let (implementation, input_sets) = self.task_body()?;
        self.expect(&TokenKind::RBrace)?;
        Ok(TaskDecl {
            name,
            class,
            implementation,
            input_sets,
            span: start.merge(self.prev_span()),
        })
    }

    /// Parses `implementation {…}` and `inputs {…}` clauses in any order.
    fn task_body(&mut self) -> PResult<(Vec<ImplPair>, Vec<InputSetBinding>)> {
        let mut implementation = Vec::new();
        let mut input_sets = Vec::new();
        loop {
            while self.eat(&TokenKind::Semi) {}
            match self.peek() {
                TokenKind::Implementation => {
                    self.bump();
                    self.expect(&TokenKind::LBrace)?;
                    self.separated_until_rbrace(|p| {
                        let key = p.string()?;
                        p.expect(&TokenKind::Is)?;
                        let value = p.string()?;
                        implementation.push(ImplPair { key, value });
                        Ok(())
                    });
                    self.expect(&TokenKind::RBrace)?;
                }
                TokenKind::Inputs => {
                    self.bump();
                    self.expect(&TokenKind::LBrace)?;
                    self.separated_until_rbrace(|p| {
                        let binding = p.input_set_binding()?;
                        input_sets.push(binding);
                        Ok(())
                    });
                    self.expect(&TokenKind::RBrace)?;
                }
                _ => break,
            }
        }
        Ok((implementation, input_sets))
    }

    fn input_set_binding(&mut self) -> PResult<InputSetBinding> {
        self.expect(&TokenKind::Input)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut elements = Vec::new();
        self.separated_until_rbrace(|p| {
            let element = p.input_elem()?;
            elements.push(element);
            Ok(())
        });
        self.expect(&TokenKind::RBrace)?;
        Ok(InputSetBinding { name, elements })
    }

    fn input_elem(&mut self) -> PResult<InputElem> {
        match self.peek() {
            TokenKind::InputObject => {
                self.bump();
                let name = self.ident()?;
                self.expect(&TokenKind::From)?;
                self.expect(&TokenKind::LBrace)?;
                let mut sources = Vec::new();
                self.separated_until_rbrace(|p| {
                    let source = p.object_source()?;
                    sources.push(source);
                    Ok(())
                });
                self.expect(&TokenKind::RBrace)?;
                Ok(InputElem::Object(ObjectBinding { name, sources }))
            }
            TokenKind::Notification => {
                self.bump();
                self.expect(&TokenKind::From)?;
                self.expect(&TokenKind::LBrace)?;
                let mut sources = Vec::new();
                self.separated_until_rbrace(|p| {
                    let source = p.notif_source()?;
                    sources.push(source);
                    Ok(())
                });
                self.expect(&TokenKind::RBrace)?;
                Ok(InputElem::Notification(NotificationBinding { sources }))
            }
            // §4.5 shorthand: `i1 of task t2 if output success`.
            TokenKind::Ident(_) => {
                let source = self.object_source()?;
                let name = source.object.clone();
                Ok(InputElem::Object(ObjectBinding {
                    name,
                    sources: vec![source],
                }))
            }
            other => {
                self.diags.push(Diagnostic::error(
                    format!(
                        "expected `inputobject`, `notification` or an object shorthand, found {}",
                        other.describe()
                    ),
                    self.span(),
                ));
                Err(Recover)
            }
        }
    }

    fn object_source(&mut self) -> PResult<ObjectSource> {
        let object = self.ident()?;
        self.expect(&TokenKind::Of)?;
        self.expect(&TokenKind::Task)?;
        let task = self.ident()?;
        let cond = self.source_cond()?;
        Ok(ObjectSource { object, task, cond })
    }

    fn source_cond(&mut self) -> PResult<SourceCond> {
        if !self.eat(&TokenKind::If) {
            return Ok(SourceCond::Any);
        }
        match self.peek() {
            TokenKind::Input => {
                self.bump();
                Ok(SourceCond::Input(self.ident()?))
            }
            TokenKind::Output => {
                self.bump();
                Ok(SourceCond::Output(self.ident()?))
            }
            other => {
                self.diags.push(Diagnostic::error(
                    format!(
                        "expected `input` or `output` after `if`, found {}",
                        other.describe()
                    ),
                    self.span(),
                ));
                Err(Recover)
            }
        }
    }

    fn notif_source(&mut self) -> PResult<NotifSource> {
        self.expect(&TokenKind::Task)?;
        let task = self.ident()?;
        self.expect(&TokenKind::If)?;
        self.expect(&TokenKind::Output)?;
        let outcome = self.ident()?;
        Ok(NotifSource { task, outcome })
    }

    fn compound_decl(&mut self) -> PResult<CompoundTaskDecl> {
        let start = self.span();
        self.expect(&TokenKind::CompoundTask)?;
        let name = self.ident()?;
        self.expect(&TokenKind::Of)?;
        self.expect(&TokenKind::TaskClass)?;
        let class = self.ident()?;
        self.expect(&TokenKind::LBrace)?;

        let mut input_sets = Vec::new();
        let mut constituents = Vec::new();
        let mut outputs = Vec::new();

        loop {
            while self.eat(&TokenKind::Semi) {}
            match self.peek() {
                TokenKind::Inputs => {
                    self.bump();
                    self.expect(&TokenKind::LBrace)?;
                    self.separated_until_rbrace(|p| {
                        let binding = p.input_set_binding()?;
                        input_sets.push(binding);
                        Ok(())
                    });
                    self.expect(&TokenKind::RBrace)?;
                }
                TokenKind::Task => {
                    let task = self.task_decl()?;
                    constituents.push(Constituent::Task(task));
                }
                TokenKind::CompoundTask => {
                    let compound = self.compound_decl()?;
                    constituents.push(Constituent::Compound(compound));
                }
                TokenKind::Ident(_) if matches!(self.peek2(), TokenKind::Of) => {
                    let instance = self.template_instance()?;
                    constituents.push(Constituent::TemplateInstance(instance));
                }
                TokenKind::Outputs => {
                    self.bump();
                    self.expect(&TokenKind::LBrace)?;
                    self.separated_until_rbrace(|p| {
                        let mapping = p.output_mapping()?;
                        outputs.push(mapping);
                        Ok(())
                    });
                    self.expect(&TokenKind::RBrace)?;
                }
                TokenKind::RBrace => break,
                other => {
                    self.diags.push(Diagnostic::error(
                        format!(
                            "expected constituent task, `inputs`, `outputs` or `}}`, found {}",
                            other.describe()
                        ),
                        self.span(),
                    ));
                    return Err(Recover);
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        Ok(CompoundTaskDecl {
            name,
            class,
            input_sets,
            constituents,
            outputs,
            span: start.merge(self.prev_span()),
        })
    }

    fn output_mapping(&mut self) -> PResult<OutputMapping> {
        let kind = self.output_kind()?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        let mut elements = Vec::new();
        self.separated_until_rbrace(|p| {
            let element = p.output_elem()?;
            elements.push(element);
            Ok(())
        });
        self.expect(&TokenKind::RBrace)?;
        Ok(OutputMapping {
            kind,
            name,
            elements,
        })
    }

    fn output_elem(&mut self) -> PResult<OutputElem> {
        match self.peek() {
            TokenKind::OutputObject => {
                self.bump();
                let name = self.ident()?;
                self.expect(&TokenKind::From)?;
                self.expect(&TokenKind::LBrace)?;
                let mut sources = Vec::new();
                self.separated_until_rbrace(|p| {
                    let source = p.object_source()?;
                    sources.push(source);
                    Ok(())
                });
                self.expect(&TokenKind::RBrace)?;
                Ok(OutputElem::Object(ObjectBinding { name, sources }))
            }
            TokenKind::Notification => {
                self.bump();
                self.expect(&TokenKind::From)?;
                self.expect(&TokenKind::LBrace)?;
                let mut sources = Vec::new();
                self.separated_until_rbrace(|p| {
                    let source = p.notif_source()?;
                    sources.push(source);
                    Ok(())
                });
                self.expect(&TokenKind::RBrace)?;
                Ok(OutputElem::Notification(NotificationBinding { sources }))
            }
            other => {
                self.diags.push(Diagnostic::error(
                    format!(
                        "expected `outputobject` or `notification`, found {}",
                        other.describe()
                    ),
                    self.span(),
                ));
                Err(Recover)
            }
        }
    }

    fn template_decl(&mut self) -> PResult<TemplateDecl> {
        let start = self.span();
        self.expect(&TokenKind::TaskTemplate)?;
        // The paper writes `tasktemplate task name …`; the `task` keyword
        // is tolerated but not required.
        self.eat(&TokenKind::Task);
        let name = self.ident()?;
        self.expect(&TokenKind::Of)?;
        self.expect(&TokenKind::TaskClass)?;
        let class = self.ident()?;
        self.expect(&TokenKind::LBrace)?;

        let mut params = Vec::new();
        loop {
            while self.eat(&TokenKind::Semi) {}
            if self.at(&TokenKind::Parameters) {
                self.bump();
                self.expect(&TokenKind::LBrace)?;
                loop {
                    while self.eat(&TokenKind::Semi) || self.eat(&TokenKind::Comma) {}
                    if self.at(&TokenKind::RBrace) || self.at(&TokenKind::Eof) {
                        break;
                    }
                    params.push(self.ident()?);
                }
                self.expect(&TokenKind::RBrace)?;
            } else {
                break;
            }
        }
        let (implementation, input_sets) = self.task_body()?;
        self.expect(&TokenKind::RBrace)?;
        Ok(TemplateDecl {
            name,
            class,
            params,
            implementation,
            input_sets,
            span: start.merge(self.prev_span()),
        })
    }

    fn template_instance(&mut self) -> PResult<TemplateInstanceDecl> {
        let start = self.span();
        let name = self.ident()?;
        self.expect(&TokenKind::Of)?;
        self.expect(&TokenKind::TaskTemplate)?;
        let template = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        loop {
            while self.eat(&TokenKind::Comma) {}
            if self.at(&TokenKind::RParen) || self.at(&TokenKind::Eof) {
                break;
            }
            args.push(self.ident()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(TemplateInstanceDecl {
            name,
            template,
            args,
            span: start.merge(self.prev_span()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(source: &str) -> Script {
        match parse(source) {
            Ok(script) => script,
            Err(diags) => panic!("parse failed:\n{}", diags.render(source)),
        }
    }

    #[test]
    fn parses_classes() {
        let script = parse_ok("class AlarmsSource;\nclass FaultReport;");
        assert_eq!(script.classes().count(), 2);
    }

    #[test]
    fn parses_taskclass_with_all_output_kinds() {
        let script = parse_ok(
            r#"
            taskclass T {
                inputs {
                    input main { item of class Item; account of class Account };
                    input alt { timer of class Timer }
                };
                outputs {
                    outcome done { note of class Note };
                    abort outcome failed { };
                    repeat outcome again { hint of class Hint };
                    mark progress { cost of class Cost }
                }
            }
            "#,
        );
        let tc = script.find_task_class("T").unwrap();
        assert_eq!(tc.input_sets.len(), 2);
        assert_eq!(tc.input_sets[0].objects.len(), 2);
        assert_eq!(tc.outputs.len(), 4);
        assert_eq!(tc.outputs[0].kind, OutputKind::Outcome);
        assert_eq!(tc.outputs[1].kind, OutputKind::AbortOutcome);
        assert_eq!(tc.outputs[2].kind, OutputKind::RepeatOutcome);
        assert_eq!(tc.outputs[3].kind, OutputKind::Mark);
        assert!(tc.is_atomic());
    }

    #[test]
    fn parses_task_with_alternative_sources() {
        let script = parse_ok(
            r#"
            task t1 of taskclass tc1 {
                implementation { "code" is "impl1" };
                inputs {
                    input main {
                        inputobject i1 from {
                            i3 of task t2 if input main;
                            o1 of task t3 if output oc1;
                            o2 of task t3 if output oc2
                        };
                        inputobject i2 from {
                            o1 of task t4 if output oc1
                        }
                    }
                }
            }
            "#,
        );
        let Item::Task(task) = &script.items[0] else {
            panic!("expected task");
        };
        assert_eq!(task.implementation[0].key, "code");
        assert_eq!(task.implementation[0].value, "impl1");
        let InputElem::Object(binding) = &task.input_sets[0].elements[0] else {
            panic!("expected object binding");
        };
        assert_eq!(binding.sources.len(), 3);
        assert_eq!(
            binding.sources[0].cond,
            SourceCond::Input(Ident::synthetic("main"))
        );
        assert_eq!(
            binding.sources[1].cond,
            SourceCond::Output(Ident::synthetic("oc1"))
        );
    }

    #[test]
    fn parses_notifications_with_alternatives() {
        let script = parse_ok(
            r#"
            task t1 of taskclass tc1 {
                inputs {
                    input main {
                        notification from {
                            task t2 if output oc1;
                            task t3 if output oc1
                        };
                        notification from {
                            task t2 if output oc2;
                            task t4 if output oc2
                        }
                    }
                }
            }
            "#,
        );
        let Item::Task(task) = &script.items[0] else {
            panic!("expected task");
        };
        assert_eq!(task.input_sets[0].elements.len(), 2);
    }

    #[test]
    fn parses_unconditioned_source() {
        let script = parse_ok(
            r#"
            task sir of taskclass SIR {
                inputs {
                    input main {
                        inputobject reports from {
                            reports of task analysis
                        }
                    }
                }
            }
            "#,
        );
        let Item::Task(task) = &script.items[0] else {
            panic!()
        };
        let InputElem::Object(binding) = &task.input_sets[0].elements[0] else {
            panic!()
        };
        assert_eq!(binding.sources[0].cond, SourceCond::Any);
    }

    #[test]
    fn parses_compound_with_outputs() {
        let script = parse_ok(
            r#"
            compoundtask c of taskclass C {
                task a of taskclass A {
                    inputs {
                        input main {
                            inputobject x from { x of task c if input main }
                        }
                    }
                };
                outputs {
                    outcome done {
                        outputobject y from { y of task a if output finished };
                        notification from { task a if output finished }
                    };
                    outcome failed { }
                }
            }
            "#,
        );
        let Item::Compound(compound) = &script.items[0] else {
            panic!("expected compound");
        };
        assert_eq!(compound.constituents.len(), 1);
        assert_eq!(compound.outputs.len(), 2);
        assert_eq!(compound.outputs[0].elements.len(), 2);
        assert!(compound.constituent("a").is_some());
    }

    #[test]
    fn parses_template_and_instance() {
        let script = parse_ok(
            r#"
            tasktemplate task tt of taskclass tc {
                parameters { p1; p2 };
                implementation { "code" is "x" };
                inputs {
                    input main {
                        i1 of task p1 if output success;
                        i2 of task p2 if input main
                    }
                }
            }
            myTask of tasktemplate tt(alpha, beta)
            "#,
        );
        let Item::Template(template) = &script.items[0] else {
            panic!("expected template");
        };
        assert_eq!(template.params.len(), 2);
        // Shorthand input elements become object bindings.
        assert_eq!(template.input_sets[0].elements.len(), 2);
        let Item::TemplateInstance(instance) = &script.items[1] else {
            panic!("expected instance");
        };
        assert_eq!(instance.template.as_str(), "tt");
        assert_eq!(instance.args.len(), 2);
    }

    #[test]
    fn recovers_and_reports_multiple_errors() {
        let err = parse(
            r#"
            class ;
            class Ok;
            task t1 of oops T { }
            taskclass T2 { inputs { input main { x of class C } } }
            "#,
        )
        .unwrap_err();
        assert!(err.errors().count() >= 2, "got: {err}");
    }

    #[test]
    fn error_message_points_at_token() {
        let err = parse("task t1 of taskclass { }").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("expected identifier"), "got: {text}");
    }

    #[test]
    fn empty_script_is_valid() {
        let script = parse_ok("  \n // nothing\n");
        assert!(script.items.is_empty());
    }

    #[test]
    fn stray_semicolons_tolerated() {
        let script = parse_ok(";;class A;;;class B;;");
        assert_eq!(script.classes().count(), 2);
    }
}
