//! Front-end robustness properties: no input — valid, mutated or pure
//! noise — may panic the lexer, parser, semantic checker or compiler;
//! valid inputs round-trip through the formatter.

use flowscript_core::{parse, samples, sema, template};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary unicode never panics the pipeline.
    #[test]
    fn arbitrary_text_never_panics(input in ".{0,400}") {
        if let Ok(script) = parse(&input) {
            if let Ok(expanded) = template::expand(&script) {
                let _ = sema::check(&expanded);
            }
            let _ = flowscript_core::fmt::format_script(&script);
        }
    }

    /// Keyword soup (harder than random unicode: it lexes cleanly).
    #[test]
    fn keyword_soup_never_panics(words in proptest::collection::vec(
        prop_oneof![
            Just("class"), Just("taskclass"), Just("task"), Just("compoundtask"),
            Just("tasktemplate"), Just("inputs"), Just("outputs"), Just("input"),
            Just("output"), Just("inputobject"), Just("outputobject"),
            Just("notification"), Just("from"), Just("of"), Just("if"), Just("is"),
            Just("implementation"), Just("outcome"), Just("abort"), Just("repeat"),
            Just("mark"), Just("parameters"), Just("{"), Just("}"), Just("("),
            Just(")"), Just(";"), Just(","), Just("ident"), Just("\"str\""),
        ],
        0..60,
    )) {
        let input = words.join(" ");
        if let Ok(script) = parse(&input) {
            if let Ok(expanded) = template::expand(&script) {
                let _ = sema::check(&expanded);
            }
        }
    }

    /// Sample scripts survive arbitrary single-character substitutions:
    /// either they still pass the pipeline or they produce diagnostics —
    /// never a panic, and diagnostics always render.
    #[test]
    fn single_character_mutations_handled(sample_idx in 0usize..5, pos: usize, ch: char) {
        let (_, source) = samples::all()[sample_idx];
        let mut chars: Vec<char> = source.chars().collect();
        let pos = pos % chars.len();
        chars[pos] = ch;
        let mutated: String = chars.into_iter().collect();
        match parse(&mutated) {
            Ok(script) => {
                if let Ok(expanded) = template::expand(&script) {
                    let _ = sema::check(&expanded);
                }
            }
            Err(diags) => {
                let rendered = diags.render(&mutated);
                prop_assert!(!rendered.is_empty());
            }
        }
    }

    /// Identifier-sized fragments embedded in a valid skeleton: names may
    /// collide with each other but never crash resolution.
    #[test]
    fn hostile_names_never_crash_sema(name in "[a-zA-Z_][a-zA-Z0-9_]{0,12}") {
        let source = format!(
            r#"
            class {name};
            taskclass T_{name} {{
                inputs {{ input main {{ x of class {name} }} }};
                outputs {{ outcome done {{ y of class {name} }} }}
            }}
            task inst_{name} of taskclass T_{name} {{
                inputs {{ input main {{
                    inputobject x from {{ y of task inst_{name} if output done }}
                }} }}
            }}
            "#
        );
        match parse(&source) {
            Ok(script) => {
                // `class class;` etc. fail at parse; those that parse may
                // still fail sema (e.g. self-sourcing a non-repeat output
                // creates a cycle) — both are acceptable, panics are not.
                let _ = sema::check(&script);
            }
            Err(diags) => {
                prop_assert!(diags.has_errors());
            }
        }
    }
}
