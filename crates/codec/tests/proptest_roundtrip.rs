//! Property tests: every `Encode` implementation round-trips through
//! `Decode`, and framing survives arbitrary payload content.

use std::collections::{BTreeMap, HashMap};

use flowscript_codec::{from_bytes, to_bytes, FrameReader, FrameWriter};
use proptest::prelude::*;

fn roundtrip<T>(value: &T) -> T
where
    T: flowscript_codec::Encode + flowscript_codec::Decode,
{
    from_bytes(&to_bytes(value)).expect("roundtrip decode")
}

proptest! {
    #[test]
    fn u64_roundtrip(v: u64) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn i64_roundtrip(v: i64) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn string_roundtrip(v in ".*") {
        let s = v.to_string();
        prop_assert_eq!(roundtrip(&s), s);
    }

    #[test]
    fn vec_of_tuples_roundtrip(v: Vec<(u32, String, bool)>) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn option_nested_roundtrip(v: Option<Option<Vec<u8>>>) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn btreemap_roundtrip(v: BTreeMap<String, Vec<i32>>) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn hashmap_roundtrip(v: HashMap<u32, String>) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn hashmap_encoding_deterministic(v: HashMap<String, u64>) {
        // Re-inserting in a different order must not change the encoding.
        let mut shuffled = HashMap::new();
        let mut keys: Vec<_> = v.keys().cloned().collect();
        keys.reverse();
        for k in keys {
            shuffled.insert(k.clone(), v[&k]);
        }
        prop_assert_eq!(to_bytes(&v), to_bytes(&shuffled));
    }

    #[test]
    fn frames_roundtrip(payloads: Vec<Vec<u8>>) {
        let mut w = FrameWriter::new();
        for p in &payloads {
            w.write_frame(p).unwrap();
        }
        let bytes = w.into_vec();
        let mut r = FrameReader::new(&bytes);
        let (frames, torn) = r.read_all_tolerant().unwrap();
        prop_assert!(!torn);
        let decoded: Vec<Vec<u8>> = frames.into_iter().map(<[u8]>::to_vec).collect();
        prop_assert_eq!(decoded, payloads);
    }

    #[test]
    fn truncated_frames_never_panic(payload: Vec<u8>, cut in 0usize..32) {
        let mut w = FrameWriter::new();
        w.write_frame(&payload).unwrap();
        let bytes = w.into_vec();
        let cut = cut.min(bytes.len());
        let torn = &bytes[..bytes.len() - cut];
        let mut r = FrameReader::new(torn);
        // Must terminate with either the payload or a clean error.
        let _ = r.read_all_tolerant();
    }

    #[test]
    fn random_bytes_never_panic_decoding(bytes: Vec<u8>) {
        let _ = from_bytes::<Vec<(u8, String)>>(&bytes);
        let _ = from_bytes::<BTreeMap<String, u64>>(&bytes);
        let _ = from_bytes::<Option<Vec<i64>>>(&bytes);
        let mut r = FrameReader::new(&bytes);
        let _ = r.read_all_tolerant();
    }
}
