use std::fmt;

/// Errors produced while decoding or framing binary data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran out of bytes before the value was complete.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A varint ran past its maximum encodable width.
    VarintOverflow,
    /// A length prefix exceeded the configured or sane maximum.
    LengthOverflow {
        /// The offending length.
        length: u64,
        /// The maximum permitted.
        max: u64,
    },
    /// String data was not valid UTF-8.
    InvalidUtf8,
    /// An enum discriminant did not match any known variant.
    InvalidDiscriminant {
        /// The type being decoded (static description).
        ty: &'static str,
        /// The unrecognised discriminant.
        value: u64,
    },
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// The value decoded but unconsumed bytes remained.
    TrailingBytes {
        /// Count of bytes left over.
        remaining: usize,
    },
    /// A frame's magic bytes did not match [`crate::FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// A frame declared an unsupported format version.
    UnsupportedVersion(u16),
    /// A frame's checksum did not match its payload.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A frame was truncated mid-record (e.g. torn write at log tail).
    TruncatedFrame,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, available } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {available} available"
            ),
            CodecError::VarintOverflow => write!(f, "varint exceeded maximum width"),
            CodecError::LengthOverflow { length, max } => {
                write!(f, "length {length} exceeds maximum {max}")
            }
            CodecError::InvalidUtf8 => write!(f, "string data was not valid UTF-8"),
            CodecError::InvalidDiscriminant { ty, value } => {
                write!(f, "invalid discriminant {value} for {ty}")
            }
            CodecError::InvalidBool(b) => write!(f, "invalid boolean byte {b:#04x}"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} unconsumed bytes after value")
            }
            CodecError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CodecError::TruncatedFrame => write!(f, "truncated frame"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases = [
            CodecError::UnexpectedEof {
                needed: 4,
                available: 1,
            },
            CodecError::VarintOverflow,
            CodecError::LengthOverflow { length: 9, max: 4 },
            CodecError::InvalidUtf8,
            CodecError::InvalidDiscriminant { ty: "T", value: 9 },
            CodecError::InvalidBool(7),
            CodecError::TrailingBytes { remaining: 3 },
            CodecError::BadMagic(*b"nope"),
            CodecError::UnsupportedVersion(99),
            CodecError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
            CodecError::TruncatedFrame,
        ];
        for case in cases {
            let text = case.to_string();
            assert!(!text.is_empty());
            let first = text.chars().next().unwrap();
            assert!(
                !first.is_uppercase(),
                "message should not start capitalised: {text}"
            );
        }
    }
}
