use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::time::Duration;

use crate::writer::ByteWriter;

/// Serialises a value into a [`ByteWriter`].
///
/// Implementations must be deterministic: encoding equal values must
/// produce identical bytes (hash maps are therefore encoded in sorted key
/// order). This property is what lets the write-ahead log and the 2PC
/// participants compare states byte-wise.
///
/// ```
/// use flowscript_codec::{ByteWriter, Encode};
///
/// struct Point { x: i32, y: i32 }
///
/// impl Encode for Point {
///     fn encode(&self, w: &mut ByteWriter) {
///         self.x.encode(w);
///         self.y.encode(w);
///     }
/// }
///
/// let mut w = ByteWriter::new();
/// Point { x: 1, y: -2 }.encode(&mut w);
/// assert_eq!(w.len(), 8);
/// ```
pub trait Encode {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);
}

impl Encode for u8 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(*self);
    }
}

impl Encode for u16 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u16(*self);
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(*self);
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
}

impl Encode for u128 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u128(*self);
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_var_u64(*self as u64);
    }
}

impl Encode for i8 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_i8(*self);
    }
}

impl Encode for i16 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_i16(*self);
    }
}

impl Encode for i32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_i32(*self);
    }
}

impl Encode for i64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_i64(*self);
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(*self);
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bool(*self);
    }
}

impl Encode for str {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
}

impl Encode for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
}

impl Encode for Duration {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.as_secs());
        w.put_u32(self.subsec_nanos());
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, w: &mut ByteWriter) {
        (**self).encode(w);
    }
}

impl<T: Encode> Encode for Box<T> {
    fn encode(&self, w: &mut ByteWriter) {
        (**self).encode(w);
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Encode, E: Encode> Encode for Result<T, E> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Ok(v) => {
                w.put_u8(0);
                v.encode(w);
            }
            Err(e) => {
                w.put_u8(1);
                e.encode(w);
            }
        }
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        self.as_slice().encode(w);
    }
}

impl<T: Encode> Encode for VecDeque<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<K: Encode + Ord, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.len());
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
}

impl<K: Encode + Ord> Encode for BTreeSet<K> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.len());
        for k in self {
            k.encode(w);
        }
    }
}

impl<K, V, S> Encode for HashMap<K, V, S>
where
    K: Encode + Ord,
    V: Encode,
    S: std::hash::BuildHasher,
{
    fn encode(&self, w: &mut ByteWriter) {
        // Sort keys so equal maps encode identically (determinism contract).
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.put_len(entries.len());
        for (k, v) in entries {
            k.encode(w);
            v.encode(w);
        }
    }
}

impl<K, S> Encode for HashSet<K, S>
where
    K: Encode + Ord,
    S: std::hash::BuildHasher,
{
    fn encode(&self, w: &mut ByteWriter) {
        let mut entries: Vec<&K> = self.iter().collect();
        entries.sort();
        w.put_len(entries.len());
        for k in entries {
            k.encode(w);
        }
    }
}

impl Encode for () {
    fn encode(&self, _w: &mut ByteWriter) {}
}

macro_rules! impl_encode_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, w: &mut ByteWriter) {
                $(self.$idx.encode(w);)+
            }
        }
    };
}

impl_encode_tuple!(A: 0);
impl_encode_tuple!(A: 0, B: 1);
impl_encode_tuple!(A: 0, B: 1, C: 2);
impl_encode_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_encode_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_bytes;

    #[test]
    fn hashmap_encoding_is_order_independent() {
        let mut a = HashMap::new();
        a.insert("x".to_string(), 1u32);
        a.insert("y".to_string(), 2u32);
        let mut b = HashMap::new();
        b.insert("y".to_string(), 2u32);
        b.insert("x".to_string(), 1u32);
        assert_eq!(to_bytes(&a), to_bytes(&b));
    }

    #[test]
    fn option_discriminants() {
        assert_eq!(to_bytes(&Option::<u8>::None), vec![0]);
        assert_eq!(to_bytes(&Some(9u8)), vec![1, 9]);
    }

    #[test]
    fn unit_encodes_to_nothing() {
        assert!(to_bytes(&()).is_empty());
    }

    #[test]
    fn duration_encodes_secs_then_nanos() {
        let bytes = to_bytes(&Duration::new(1, 2));
        assert_eq!(bytes.len(), 12);
        assert_eq!(bytes[0], 1);
        assert_eq!(bytes[8], 2);
    }
}
