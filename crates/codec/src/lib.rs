#![warn(missing_docs)]
//! Binary encoding, decoding, framing and checksums for `flowscript`.
//!
//! The transaction log (`flowscript-tx`), the simulated network messages
//! (`flowscript-sim`) and the engine's persistent control blocks all need a
//! stable, self-contained binary representation. This crate provides:
//!
//! - [`ByteWriter`] / [`ByteReader`]: primitive-level little-endian and
//!   varint encoding over [`bytes`] buffers,
//! - [`Encode`] / [`Decode`]: structured value (de)serialisation traits with
//!   implementations for common standard-library types,
//! - [`crc32`]: a table-driven CRC-32 (ISO-HDLC polynomial),
//! - [`frame`]: length-prefixed, checksummed, versioned record frames used
//!   by the write-ahead log and the RPC layer.
//!
//! # Examples
//!
//! ```
//! use flowscript_codec::{Decode, Encode};
//!
//! # fn main() -> Result<(), flowscript_codec::CodecError> {
//! let value = (42u64, String::from("hello"), vec![1u32, 2, 3]);
//! let bytes = flowscript_codec::to_bytes(&value);
//! let back: (u64, String, Vec<u32>) = flowscript_codec::from_bytes(&bytes)?;
//! assert_eq!(value, back);
//! # Ok(())
//! # }
//! ```

mod crc;
mod decode;
mod encode;
mod error;
pub mod frame;
mod reader;
mod writer;

pub use crc::{crc32, Crc32};
pub use decode::Decode;
pub use encode::Encode;
pub use error::CodecError;
pub use frame::{FrameReader, FrameWriter, FRAME_MAGIC, FRAME_VERSION};
pub use reader::ByteReader;
pub use writer::ByteWriter;

/// Encodes a value into a freshly allocated byte vector.
///
/// ```
/// let bytes = flowscript_codec::to_bytes(&7u32);
/// assert_eq!(bytes, vec![7, 0, 0, 0]);
/// ```
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut writer = ByteWriter::new();
    value.encode(&mut writer);
    writer.into_vec()
}

/// Decodes a value from a byte slice, requiring the slice to be fully
/// consumed.
///
/// # Errors
///
/// Returns [`CodecError::TrailingBytes`] when the value decodes successfully
/// but bytes remain, and propagates any decode failure.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut reader = ByteReader::new(bytes);
    let value = T::decode(&mut reader)?;
    if reader.remaining() != 0 {
        return Err(CodecError::TrailingBytes {
            remaining: reader.remaining(),
        });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_helpers() {
        let v = vec![(1u8, -5i64), (2, 9)];
        let bytes = to_bytes(&v);
        let back: Vec<(u8, i64)> = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&3u16);
        bytes.push(0xFF);
        let err = from_bytes::<u16>(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::TrailingBytes { remaining: 1 }));
    }
}
