//! Length-prefixed, checksummed record frames.
//!
//! A frame wraps an opaque payload with enough metadata to detect
//! corruption and torn writes:
//!
//! ```text
//! +-------+---------+-----------+--------------+----------+
//! | magic | version | len (u32) | crc32 (u32)  | payload  |
//! | 4B    | u16     | 4B        | of payload   | len B    |
//! +-------+---------+-----------+--------------+----------+
//! ```
//!
//! The write-ahead log appends frames; on recovery, a truncated or
//! corrupt tail frame terminates the scan cleanly (see
//! [`FrameReader::read_frame`]).

use crate::crc::crc32;
use crate::error::CodecError;

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"FSRC";

/// Current frame format version.
pub const FRAME_VERSION: u16 = 1;

/// Maximum payload a frame may carry (64 MiB).
pub const MAX_FRAME_PAYLOAD: u32 = 64 * 1024 * 1024;

const HEADER_LEN: usize = 4 + 2 + 4 + 4;

/// Serialises payloads into framed records on an in-memory buffer.
///
/// ```
/// use flowscript_codec::{FrameReader, FrameWriter};
///
/// # fn main() -> Result<(), flowscript_codec::CodecError> {
/// let mut w = FrameWriter::new();
/// w.write_frame(b"record one")?;
/// w.write_frame(b"record two")?;
/// let mut r = FrameReader::new(w.as_bytes());
/// assert_eq!(r.read_frame()?.unwrap(), b"record one");
/// assert_eq!(r.read_frame()?.unwrap(), b"record two");
/// assert!(r.read_frame()?.is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct FrameWriter {
    buf: Vec<u8>,
}

impl FrameWriter {
    /// Creates an empty frame writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Appends one framed payload.
    ///
    /// # Errors
    ///
    /// [`CodecError::LengthOverflow`] if the payload exceeds
    /// [`MAX_FRAME_PAYLOAD`].
    pub fn write_frame(&mut self, payload: &[u8]) -> Result<(), CodecError> {
        encode_frame_into(&mut self.buf, payload)
    }

    /// The framed bytes accumulated so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the framed bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Total framed length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether any frame has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Encodes a single frame around `payload`, appending to `out`.
///
/// # Errors
///
/// [`CodecError::LengthOverflow`] if the payload exceeds
/// [`MAX_FRAME_PAYLOAD`].
pub fn encode_frame_into(out: &mut Vec<u8>, payload: &[u8]) -> Result<(), CodecError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_PAYLOAD) {
        return Err(CodecError::LengthOverflow {
            length: payload.len() as u64,
            max: u64::from(MAX_FRAME_PAYLOAD),
        });
    }
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Encodes a single frame around `payload` into a fresh vector.
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_frame_into(&mut out, payload)?;
    Ok(out)
}

/// Sequentially decodes frames from a byte slice.
#[derive(Debug, Clone)]
pub struct FrameReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FrameReader<'a> {
    /// Creates a reader over framed `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Byte offset of the next unread frame.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads the next frame's payload, or `None` at clean end of input.
    ///
    /// A *partial* trailing frame (e.g. a torn write at a log tail)
    /// reports [`CodecError::TruncatedFrame`]; callers recovering a log
    /// treat that as end-of-log and truncate. Corrupt payloads report
    /// [`CodecError::ChecksumMismatch`].
    ///
    /// # Errors
    ///
    /// [`CodecError::BadMagic`], [`CodecError::UnsupportedVersion`],
    /// [`CodecError::LengthOverflow`], [`CodecError::TruncatedFrame`] or
    /// [`CodecError::ChecksumMismatch`] on malformed input.
    pub fn read_frame(&mut self) -> Result<Option<&'a [u8]>, CodecError> {
        if self.pos == self.bytes.len() {
            return Ok(None);
        }
        let rest = &self.bytes[self.pos..];
        if rest.len() < HEADER_LEN {
            return Err(CodecError::TruncatedFrame);
        }
        let magic: [u8; 4] = rest[0..4].try_into().unwrap();
        if magic != FRAME_MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        let version = u16::from_le_bytes(rest[4..6].try_into().unwrap());
        if version != FRAME_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        let len = u32::from_le_bytes(rest[6..10].try_into().unwrap());
        if len > MAX_FRAME_PAYLOAD {
            return Err(CodecError::LengthOverflow {
                length: u64::from(len),
                max: u64::from(MAX_FRAME_PAYLOAD),
            });
        }
        let stored_crc = u32::from_le_bytes(rest[10..14].try_into().unwrap());
        let body_end = HEADER_LEN + len as usize;
        if rest.len() < body_end {
            return Err(CodecError::TruncatedFrame);
        }
        let payload = &rest[HEADER_LEN..body_end];
        let computed = crc32(payload);
        if computed != stored_crc {
            return Err(CodecError::ChecksumMismatch {
                stored: stored_crc,
                computed,
            });
        }
        self.pos += body_end;
        Ok(Some(payload))
    }

    /// Reads all remaining well-formed frames, stopping cleanly at a
    /// truncated tail.
    ///
    /// Returns the payloads plus a flag that is `true` when the scan ended
    /// at a torn (truncated) frame rather than clean end of input.
    ///
    /// # Errors
    ///
    /// Propagates corruption errors other than truncation, since a bad
    /// checksum mid-log means data loss rather than an interrupted append.
    pub fn read_all_tolerant(&mut self) -> Result<(Vec<&'a [u8]>, bool), CodecError> {
        let mut frames = Vec::new();
        loop {
            let checkpoint = self.pos;
            match self.read_frame() {
                Ok(Some(payload)) => frames.push(payload),
                Ok(None) => return Ok((frames, false)),
                Err(CodecError::TruncatedFrame) => {
                    self.pos = checkpoint;
                    return Ok((frames, true));
                }
                Err(other) => return Err(other),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_clean_eof() {
        let mut r = FrameReader::new(&[]);
        assert_eq!(r.read_frame().unwrap(), None);
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut framed = encode_frame(b"payload").unwrap();
        let last = framed.len() - 1;
        framed[last] ^= 0xFF;
        let mut r = FrameReader::new(&framed);
        assert!(matches!(
            r.read_frame().unwrap_err(),
            CodecError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn torn_tail_is_truncated_frame() {
        let mut w = FrameWriter::new();
        w.write_frame(b"complete").unwrap();
        w.write_frame(b"torn").unwrap();
        let bytes = w.into_vec();
        // Drop the last 2 bytes to simulate a torn write.
        let torn = &bytes[..bytes.len() - 2];
        let mut r = FrameReader::new(torn);
        assert_eq!(r.read_frame().unwrap().unwrap(), b"complete");
        assert_eq!(r.read_frame().unwrap_err(), CodecError::TruncatedFrame);
    }

    #[test]
    fn tolerant_scan_recovers_prefix() {
        let mut w = FrameWriter::new();
        w.write_frame(b"one").unwrap();
        w.write_frame(b"two").unwrap();
        let bytes = w.into_vec();
        let torn = &bytes[..bytes.len() - 1];
        let mut r = FrameReader::new(torn);
        let (frames, torn_tail) = r.read_all_tolerant().unwrap();
        assert_eq!(frames, vec![b"one".as_slice()]);
        assert!(torn_tail);
        // Position is left at the start of the torn frame (usable as a
        // truncation offset).
        assert_eq!(r.position(), encode_frame(b"one").unwrap().len());
    }

    #[test]
    fn bad_magic_detected() {
        let mut framed = encode_frame(b"x").unwrap();
        framed[0] = b'X';
        let mut r = FrameReader::new(&framed);
        assert!(matches!(
            r.read_frame().unwrap_err(),
            CodecError::BadMagic(_)
        ));
    }

    #[test]
    fn version_mismatch_detected() {
        let mut framed = encode_frame(b"x").unwrap();
        framed[4] = 0xFE;
        framed[5] = 0xFF;
        let mut r = FrameReader::new(&framed);
        assert_eq!(
            r.read_frame().unwrap_err(),
            CodecError::UnsupportedVersion(0xFFFE)
        );
    }

    #[test]
    fn oversize_payload_rejected_at_write() {
        // Construct the header directly to avoid allocating 64 MiB.
        let mut w = FrameWriter::new();
        let payload = vec![0u8; 8];
        assert!(w.write_frame(&payload).is_ok());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let framed = encode_frame(b"").unwrap();
        let mut r = FrameReader::new(&framed);
        assert_eq!(r.read_frame().unwrap().unwrap(), b"");
        assert_eq!(r.read_frame().unwrap(), None);
    }
}
