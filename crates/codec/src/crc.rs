//! Table-driven CRC-32 (ISO-HDLC / "CRC-32" as used by zlib and Ethernet).
//!
//! The write-ahead log stores a checksum with every frame so that torn
//! writes and bit rot are detected during recovery instead of being
//! replayed as garbage.

/// The reflected ISO-HDLC polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// Incremental CRC-32 state.
///
/// ```
/// use flowscript_codec::Crc32;
///
/// let mut crc = Crc32::new();
/// crc.update(b"hello ");
/// crc.update(b"world");
/// assert_eq!(crc.finish(), flowscript_codec::crc32(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = table();
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ table[idx];
        }
    }

    /// Finalises and returns the checksum value.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        for split in [0, 1, 17, 128, 255, 256] {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the quick brown fox".to_vec();
        let original = crc32(&data);
        data[3] ^= 0x01;
        assert_ne!(crc32(&data), original);
    }
}
