/// An append-only binary writer with little-endian primitives and varints.
///
/// `ByteWriter` is the sink for [`crate::Encode`]. All multi-byte integers
/// are little-endian; lengths are LEB128 varints so small collections stay
/// compact in the log.
///
/// ```
/// use flowscript_codec::ByteWriter;
///
/// let mut w = ByteWriter::new();
/// w.put_u16(0xBEEF);
/// w.put_var_u64(300);
/// assert_eq!(w.into_vec(), vec![0xEF, 0xBE, 0xAC, 0x02]);
/// ```
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Creates a writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a signed byte.
    pub fn put_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `i16`.
    pub fn put_i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a LEB128 varint.
    pub fn put_var_u64(&mut self, mut v: u64) {
        loop {
            let mut byte = (v & 0x7F) as u8;
            v >>= 7;
            if v != 0 {
                byte |= 0x80;
            }
            self.buf.push(byte);
            if v == 0 {
                break;
            }
        }
    }

    /// Appends a zig-zag encoded signed varint.
    pub fn put_var_i64(&mut self, v: i64) {
        self.put_var_u64(zigzag_encode(v));
    }

    /// Appends a collection length as a varint.
    pub fn put_len(&mut self, len: usize) {
        self.put_var_u64(len as u64);
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_len_prefixed(&mut self, bytes: &[u8]) {
        self.put_len(bytes.len());
        self.put_bytes(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len_prefixed(s.as_bytes());
    }

    /// Appends a boolean as a single `0`/`1` byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }
}

/// Maps a signed integer onto an unsigned one so small magnitudes stay
/// small when varint encoded.
pub(crate) fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub(crate) fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_small_values_single_byte() {
        for v in 0..128u64 {
            let mut w = ByteWriter::new();
            w.put_var_u64(v);
            assert_eq!(w.len(), 1, "value {v}");
        }
    }

    #[test]
    fn varint_max_width() {
        let mut w = ByteWriter::new();
        w.put_var_u64(u64::MAX);
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn zigzag_roundtrip_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -64, 63] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_small_codes() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }

    #[test]
    fn little_endian_layout() {
        let mut w = ByteWriter::new();
        w.put_u32(0x0102_0304);
        assert_eq!(w.into_vec(), vec![4, 3, 2, 1]);
    }

    #[test]
    fn string_has_length_prefix() {
        let mut w = ByteWriter::new();
        w.put_str("ab");
        assert_eq!(w.into_vec(), vec![2, b'a', b'b']);
    }
}
