use crate::error::CodecError;
use crate::writer::zigzag_decode;

/// Maximum length a decoder will accept for a single collection or string.
///
/// This is a safety net against corrupt frames claiming multi-gigabyte
/// lengths and causing pathological allocations during recovery.
pub(crate) const MAX_DECODE_LEN: u64 = 1 << 30;

/// A cursor over a byte slice with little-endian and varint primitives.
///
/// `ByteReader` is the source for [`crate::Decode`]. Every read is bounds
/// checked and reports [`CodecError::UnexpectedEof`] rather than panicking.
///
/// ```
/// use flowscript_codec::ByteReader;
///
/// # fn main() -> Result<(), flowscript_codec::CodecError> {
/// let mut r = ByteReader::new(&[0xEF, 0xBE]);
/// assert_eq!(r.get_u16()?, 0xBEEF);
/// assert_eq!(r.remaining(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Current byte offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                available: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if the input is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads a signed byte.
    pub fn get_i8(&mut self) -> Result<i8, CodecError> {
        Ok(self.get_u8()? as i8)
    }

    /// Reads a little-endian `i16`.
    pub fn get_i16(&mut self) -> Result<i16, CodecError> {
        Ok(self.get_u16()? as i16)
    }

    /// Reads a little-endian `i32`.
    pub fn get_i32(&mut self) -> Result<i32, CodecError> {
        Ok(self.get_u32()? as i32)
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a little-endian IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`CodecError::VarintOverflow`] if the encoding exceeds 10 bytes or
    /// sets bits above the 64th.
    pub fn get_var_u64(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(CodecError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(CodecError::VarintOverflow);
            }
        }
    }

    /// Reads a zig-zag encoded signed varint.
    pub fn get_var_i64(&mut self) -> Result<i64, CodecError> {
        Ok(zigzag_decode(self.get_var_u64()?))
    }

    /// Reads a collection length, bounding it by an internal 1 GiB cap.
    ///
    /// # Errors
    ///
    /// [`CodecError::LengthOverflow`] if the length exceeds the bound.
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let len = self.get_var_u64()?;
        if len > MAX_DECODE_LEN {
            return Err(CodecError::LengthOverflow {
                length: len,
                max: MAX_DECODE_LEN,
            });
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed byte slice.
    pub fn get_len_prefixed(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_len()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`CodecError::InvalidUtf8`] if the bytes are not valid UTF-8.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.get_len_prefixed()?).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Reads a boolean encoded as a `0`/`1` byte.
    ///
    /// # Errors
    ///
    /// [`CodecError::InvalidBool`] for any other byte value.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::InvalidBool(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::ByteWriter;

    #[test]
    fn eof_reports_needed_and_available() {
        let mut r = ByteReader::new(&[1, 2]);
        let err = r.get_u32().unwrap_err();
        assert_eq!(
            err,
            CodecError::UnexpectedEof {
                needed: 4,
                available: 2
            }
        );
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut w = ByteWriter::new();
            w.put_var_u64(v);
            let bytes = w.into_vec();
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.get_var_u64().unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn varint_overflow_detected() {
        // 11 continuation bytes can never be a valid u64 varint.
        let bytes = [0xFFu8; 11];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_var_u64().unwrap_err(), CodecError::VarintOverflow);
    }

    #[test]
    fn varint_overflow_top_bits() {
        // 10th byte may only contribute one bit.
        let bytes = [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_var_u64().unwrap_err(), CodecError::VarintOverflow);
    }

    #[test]
    fn invalid_utf8_reported() {
        let mut w = ByteWriter::new();
        w.put_len_prefixed(&[0xFF, 0xFE]);
        let bytes = w.into_vec();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str().unwrap_err(), CodecError::InvalidUtf8);
    }

    #[test]
    fn bool_rejects_junk() {
        let mut r = ByteReader::new(&[7]);
        assert_eq!(r.get_bool().unwrap_err(), CodecError::InvalidBool(7));
    }

    #[test]
    fn position_tracks_consumption() {
        let mut r = ByteReader::new(&[0; 8]);
        r.get_u16().unwrap();
        assert_eq!(r.position(), 2);
        r.get_u32().unwrap();
        assert_eq!(r.position(), 6);
        assert_eq!(r.remaining(), 2);
    }
}
