use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::time::Duration;

use crate::error::CodecError;
use crate::reader::ByteReader;

/// Deserialises a value from a [`ByteReader`].
///
/// The inverse of [`crate::Encode`]: for every implementing type,
/// `decode(encode(v)) == v` (property-tested in this crate).
///
/// ```
/// use flowscript_codec::{ByteReader, Decode};
///
/// # fn main() -> Result<(), flowscript_codec::CodecError> {
/// let bytes = flowscript_codec::to_bytes(&vec![1u16, 2, 3]);
/// let v = Vec::<u16>::decode(&mut ByteReader::new(&bytes))?;
/// assert_eq!(v, vec![1, 2, 3]);
/// # Ok(())
/// # }
/// ```
pub trait Decode: Sized {
    /// Reads one value from `r`.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] raised by malformed or truncated input.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;
}

impl Decode for u8 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_u8()
    }
}

impl Decode for u16 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_u16()
    }
}

impl Decode for u32 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_u32()
    }
}

impl Decode for u64 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_u64()
    }
}

impl Decode for u128 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_u128()
    }
}

impl Decode for usize {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(r.get_var_u64()? as usize)
    }
}

impl Decode for i8 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_i8()
    }
}

impl Decode for i16 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_i16()
    }
}

impl Decode for i32 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_i32()
    }
}

impl Decode for i64 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_i64()
    }
}

impl Decode for f64 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_f64()
    }
}

impl Decode for bool {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_bool()
    }
}

impl Decode for String {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(r.get_str()?.to_owned())
    }
}

impl Decode for Duration {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let secs = r.get_u64()?;
        let nanos = r.get_u32()?;
        Ok(Duration::new(secs, nanos))
    }
}

impl<T: Decode> Decode for Box<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(CodecError::InvalidDiscriminant {
                ty: "Option",
                value: u64::from(other),
            }),
        }
    }
}

impl<T: Decode, E: Decode> Decode for Result<T, E> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Ok(T::decode(r)?)),
            1 => Ok(Err(E::decode(r)?)),
            other => Err(CodecError::InvalidDiscriminant {
                ty: "Result",
                value: u64::from(other),
            }),
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        // Guard the pre-allocation: a corrupt length must not OOM us even
        // when it passes the global bound, so cap by what could possibly
        // fit in the remaining input (each element needs >= 1 byte, except
        // zero-sized ones which we just collect without reservation).
        let cap = len.min(r.remaining().max(1));
        let mut out = Vec::with_capacity(cap);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Decode> Decode for VecDeque<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(Vec::<T>::decode(r)?.into())
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Decode + Ord> Decode for BTreeSet<K> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(K::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Decode + Eq + Hash, V: Decode> Decode for HashMap<K, V> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut out = HashMap::with_capacity(len.min(r.remaining().max(1)));
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Decode + Eq + Hash> Decode for HashSet<K> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut out = HashSet::with_capacity(len.min(r.remaining().max(1)));
        for _ in 0..len {
            out.insert(K::decode(r)?);
        }
        Ok(out)
    }
}

impl Decode for () {
    fn decode(_r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }
}

macro_rules! impl_decode_tuple {
    ($($name:ident),+) => {
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_decode_tuple!(A);
impl_decode_tuple!(A, B);
impl_decode_tuple!(A, B, C);
impl_decode_tuple!(A, B, C, D);
impl_decode_tuple!(A, B, C, D, E);
impl_decode_tuple!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};

    #[test]
    fn collections_roundtrip() {
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), vec![1u8, 2]);
        map.insert("b".to_string(), vec![]);
        let bytes = to_bytes(&map);
        assert_eq!(
            from_bytes::<BTreeMap<String, Vec<u8>>>(&bytes).unwrap(),
            map
        );

        let set: HashSet<u32> = [5, 9, 1].into_iter().collect();
        let bytes = to_bytes(&set);
        assert_eq!(from_bytes::<HashSet<u32>>(&bytes).unwrap(), set);
    }

    #[test]
    fn corrupt_length_does_not_allocate_unbounded() {
        // Claim a huge vector with only 2 bytes of payload.
        let mut bytes = Vec::new();
        let mut w = crate::ByteWriter::new();
        w.put_var_u64(1_000_000);
        bytes.extend_from_slice(w.as_slice());
        bytes.extend_from_slice(&[1, 2]);
        let err = from_bytes::<Vec<u8>>(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::UnexpectedEof { .. }));
    }

    #[test]
    fn option_bad_discriminant() {
        let err = from_bytes::<Option<u8>>(&[9]).unwrap_err();
        assert_eq!(
            err,
            CodecError::InvalidDiscriminant {
                ty: "Option",
                value: 9
            }
        );
    }

    #[test]
    fn result_roundtrip() {
        let ok: Result<u8, String> = Ok(3);
        let err: Result<u8, String> = Err("bad".into());
        assert_eq!(
            from_bytes::<Result<u8, String>>(&to_bytes(&ok)).unwrap(),
            ok
        );
        assert_eq!(
            from_bytes::<Result<u8, String>>(&to_bytes(&err)).unwrap(),
            err
        );
    }

    #[test]
    fn nested_tuples_roundtrip() {
        let v = ((1u8, "x".to_string()), Some((2u64, false)));
        let bytes = to_bytes(&v);
        let back: ((u8, String), Option<(u64, bool)>) = from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }
}
