//! The [`Strategy`] trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a value from the deterministic per-test stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    alternatives: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` pairs; weights must sum > 0.
    pub fn new(alternatives: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = alternatives.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Self {
            alternatives,
            total_weight,
        }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.alternatives {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights exhausted")
    }
}

// ---------------------------------------------------------------------
// Ranges.
// ---------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (u128::from(rng.next_u64()) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128)
                    .wrapping_sub(*self.start() as u128)
                    .wrapping_add(1);
                let draw = (u128::from(rng.next_u64()) % span) as $t;
                self.start().wrapping_add(draw)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------
// String patterns and tuples.
// ---------------------------------------------------------------------

/// A `&str` is a regex-subset pattern strategy generating matching
/// strings (see [`crate::string`] for the supported subset).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy drawing via [`crate::arbitrary::Arbitrary`] (see
/// [`crate::arbitrary::any`]).
pub struct AnyStrategy<T> {
    pub(crate) _marker: PhantomData<T>,
}

impl<T: crate::arbitrary::Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
