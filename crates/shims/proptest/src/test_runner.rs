//! Per-test configuration and the deterministic case generator.

/// A rejected or failed test case, returned early from a test body
/// (`return Err(TestCaseError::fail(..))`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }

    /// A rejected (filtered-out) case; the shim treats it as a failure
    /// since it has no retry budget to spend.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic random source for case generation (splitmix64, seeded
/// from the fully qualified test name so every test draws an
/// independent, reproducible stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: hash }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
