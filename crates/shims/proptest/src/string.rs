//! Generation of strings matching a small regex subset.
//!
//! Supported syntax (everything the workspace's patterns use, plus a
//! little headroom): literal characters, `.` (any printable
//! non-newline), character classes `[a-z0-9_]` (ranges and literals, no
//! negation), the quantifiers `*`, `+`, `?`, `{n}`, `{m,n}`, and `\`
//! escapes for literals. Unsupported constructs (groups, alternation)
//! are treated as literal characters — the workspace does not use them.

use crate::test_runner::TestRng;

/// Maximum repetitions chosen for open-ended quantifiers (`*`, `+`).
const UNBOUNDED_MAX: usize = 16;

#[derive(Debug, Clone)]
enum Atom {
    /// `.`: any printable character except `\n`.
    Any,
    /// `[...]`: one of the listed inclusive ranges.
    Class(Vec<(char, char)>),
    /// A literal character.
    Lit(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates a string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = rng.usize_inclusive(piece.min, piece.max);
        for _ in 0..count {
            out.push(sample_atom(&piece.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Any => {
            // Mostly printable ASCII, occasionally further afield.
            if rng.below(20) == 0 {
                char::from_u32(0xA1 + rng.below(0x2000) as u32).unwrap_or('¤')
            } else {
                (0x20 + rng.below(0x5F) as u32) as u8 as char
            }
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total.max(1));
            for (lo, hi) in ranges {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                }
                pick -= span;
            }
            ranges.first().map(|(lo, _)| *lo).unwrap_or('a')
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let (class, next) = parse_class(&chars, i + 1);
                i = next;
                class
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Lit(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i);
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(chars: &[char], mut i: usize) -> (Atom, usize) {
    let mut ranges = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let lo = if chars[i] == '\\' && i + 1 < chars.len() {
            i += 1;
            chars[i]
        } else {
            chars[i]
        };
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            ranges.push((lo, hi.max(lo)));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    // Skip the closing bracket.
    if i < chars.len() {
        i += 1;
    }
    if ranges.is_empty() {
        ranges.push(('a', 'a'));
    }
    (Atom::Class(ranges), i)
}

fn parse_quantifier(chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('*') => (0, UNBOUNDED_MAX, i + 1),
        Some('+') => (1, UNBOUNDED_MAX, i + 1),
        Some('?') => (0, 1, i + 1),
        Some('{') => {
            let close = chars[i..].iter().position(|c| *c == '}').map(|off| i + off);
            let Some(close) = close else {
                return (1, 1, i);
            };
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(UNBOUNDED_MAX),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            };
            (min, max.max(min), close + 1)
        }
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("string-tests")
    }

    #[test]
    fn literal_patterns_reproduce_themselves() {
        let mut rng = rng();
        assert_eq!(generate_matching("abc", &mut rng), "abc");
    }

    #[test]
    fn bounded_repetition_respected() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_matching(".{0,400}", &mut rng);
            assert!(s.chars().count() <= 400);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn identifier_pattern_yields_identifiers() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-zA-Z_][a-zA-Z0-9_]{0,12}", &mut rng);
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "{s}");
            assert!(chars.all(|c| c.is_ascii_alphanumeric() || c == '_'), "{s}");
            assert!(s.chars().count() <= 13);
        }
    }

    #[test]
    fn escapes_are_literal() {
        let mut rng = rng();
        assert_eq!(generate_matching(r"a\.b", &mut rng), "a.b");
    }
}
