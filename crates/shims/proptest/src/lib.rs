//! Offline drop-in shim for the subset of the `proptest` API this
//! workspace uses.
//!
//! The build container has no crate-registry access, so this local path
//! dependency provides the pieces the test-suite relies on:
//!
//! - the [`proptest!`] macro with both `arg: Type` (via [`Arbitrary`])
//!   and `arg in strategy` bindings, plus `#![proptest_config(..)]`,
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - strategies: integer/float ranges, regex-subset string patterns,
//!   [`strategy::Just`], tuples, `prop_oneof!` (weighted and plain),
//!   [`collection::vec`], [`option::of`], `prop_map`,
//! - [`arbitrary::Arbitrary`] for the common standard types.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (no `PROPTEST_*` env handling) and
//! failures are reported by panic without input shrinking. Those are
//! acceptable trade-offs for an air-gapped CI; the test *properties*
//! are unchanged, so swapping the real crate back in later is a
//! manifest-only change.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The common imports: strategies, config, assertion and test macros.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines a block of property tests.
///
/// Each `fn name(bindings) { body }` item becomes a `#[test]` that runs
/// the body for `cases` generated inputs. Bindings are either
/// `name: Type` (drawn via [`arbitrary::Arbitrary`]) or
/// `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_bind!(__rng; $($args)*);
                // Real proptest rewrites the body to return
                // `Result<(), TestCaseError>`; mirror that so bodies may
                // `return Err(TestCaseError::fail(..))`.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = __outcome {
                    panic!("proptest case failed: {err}");
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $s:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $s:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
}

/// Asserts a property holds for the current case (panics otherwise).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two expressions differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks among alternative strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn typed_and_strategy_bindings_work(a: u8, b in 10u32..20, s in "[a-c]{2,4}") {
            prop_assert!(u32::from(a) <= 255);
            prop_assert!((10..20).contains(&b));
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn collections_and_oneof_work(
            v in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 0..9),
            o in crate::option::of(0i32..5),
        ) {
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|x| *x == 1 || *x == 2));
            if let Some(x) = o {
                prop_assert!((0..5).contains(&x));
            }
        }

        #[test]
        fn weighted_oneof_and_map_work(
            x in prop_oneof![3 => (0u8..4).prop_map(|v| v * 10), 1 => Just(99u8)],
        ) {
            prop_assert!(x == 99 || x % 10 == 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let s = crate::collection::vec(0u64..1000, 0..20);
        for _ in 0..32 {
            assert_eq!(
                crate::strategy::Strategy::generate(&s, &mut a),
                crate::strategy::Strategy::generate(&s, &mut b)
            );
        }
    }
}
