//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Some` of the inner strategy half the time, `None`
/// otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64() & 1 == 1 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
