//! The [`Arbitrary`] trait backing `any::<T>()` and `name: Type`
//! bindings in [`crate::proptest!`].

use std::marker::PhantomData;

use crate::strategy::AnyStrategy;
use crate::test_runner::TestRng;

/// Types with a default generation recipe.
pub trait Arbitrary: Sized {
    /// Draws one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias towards boundary values now and then: without
                // shrinking, edge cases must arrive by generation.
                match rng.below(16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => 1,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                match rng.below(16) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => -1,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(16) {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            _ => {
                // Finite values across magnitudes.
                let mantissa = rng.unit_f64() * 2.0 - 1.0;
                let exponent = rng.below(64) as i32 - 32;
                mantissa * (2f64).powi(exponent)
            }
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(8) {
            // Mostly printable ASCII: the lexers under test see far more
            // interesting collisions there than in astral planes.
            0..=4 => (0x20 + rng.below(0x5F) as u32) as u8 as char,
            5 => char::from_u32(rng.below(0xD800 - 1) as u32 + 1).unwrap_or('a'),
            6 => ['\n', '\t', '\r', '\0', '{', '}', ';', '"'][rng.below(8) as usize],
            _ => char::from_u32(0xE000 + rng.below(0x1000) as u32).unwrap_or('b'),
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.usize_inclusive(0, 24);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.usize_inclusive(0, 16);
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

impl<K, V> Arbitrary for std::collections::BTreeMap<K, V>
where
    K: Arbitrary + Ord,
    V: Arbitrary,
{
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.usize_inclusive(0, 12);
        (0..len)
            .map(|_| (K::arbitrary(rng), V::arbitrary(rng)))
            .collect()
    }
}

impl<K, V> Arbitrary for std::collections::HashMap<K, V>
where
    K: Arbitrary + std::hash::Hash + Eq,
    V: Arbitrary,
{
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.usize_inclusive(0, 12);
        (0..len)
            .map(|_| (K::arbitrary(rng), V::arbitrary(rng)))
            .collect()
    }
}

macro_rules! impl_arbitrary_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )*};
}

impl_arbitrary_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
