//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        Self {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        Self {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Generates a `Vec` whose elements are drawn from `element` and whose
/// length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_inclusive(self.size.min, self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
