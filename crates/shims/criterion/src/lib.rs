#![warn(missing_docs)]
//! Offline drop-in shim for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build container has no crate-registry access, so `cargo bench`
//! runs on this minimal harness instead: each benchmark is timed with
//! `std::time::Instant` over a fixed number of samples (auto-batched
//! when a single iteration is too fast to time), and a
//! `group/benchmark: median .. mean ..` line is printed per benchmark.
//! There is no statistical analysis, HTML report or regression
//! detection — swapping the real crate back in later is a
//! manifest-only change.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples when a group does not override it.
const DEFAULT_SAMPLE_SIZE: usize = 10;
/// Untimed warm-up iterations before sampling.
const WARMUP_ITERS: usize = 2;
/// Target duration for one auto-batched sample.
const TARGET_SAMPLE: Duration = Duration::from_micros(250);

/// The benchmark harness handle passed to every target function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().label, sample_size, None, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (drop would do; mirrors the real API).
    pub fn finish(self) {}
}

/// A benchmark identifier, possibly parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Declared per-iteration work for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored: setup is
/// always run per iteration, untimed).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: one per batch in real criterion.
    LargeInput,
    /// Exactly one input per batch.
    PerIteration,
}

/// Collects timed samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    /// Iterations represented by each recorded sample.
    batch: u64,
}

impl Bencher {
    /// Times `f`, auto-batching when one call is too fast to measure.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        // Calibrate: batch enough calls that a sample is measurable.
        let probe = Instant::now();
        black_box(f());
        let one = probe.elapsed();
        self.batch = if one >= TARGET_SAMPLE {
            1
        } else {
            (TARGET_SAMPLE.as_nanos() / one.as_nanos().max(1)).clamp(1, 100_000) as u64
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.batch {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over per-sample inputs built by the untimed
    /// `setup` closure.
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        self.batch = 1;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
        batch: 1,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label}: no samples recorded");
        return;
    }
    let batch = bencher.batch.max(1);
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / batch as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => {
            format!(
                " ({:.1} MiB/s)",
                bytes as f64 / median * 1e9 / (1024.0 * 1024.0)
            )
        }
        Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 / median * 1e9),
    });
    println!(
        "bench {label}: median {} mean {} ({} samples x {batch} iters){}",
        format_ns(median),
        format_ns(mean),
        per_iter.len(),
        rate.unwrap_or_default(),
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group of benchmark targets as a callable function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("chain", 8).label, "chain/8");
        assert_eq!(BenchmarkId::from_parameter(42).label, "42");
    }

    #[test]
    fn harness_runs_and_records() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("input", 5), &5u64, |b, &n| {
            b.iter_batched(|| n, |n| n * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
