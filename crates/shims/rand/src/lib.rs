#![warn(missing_docs)]
//! Offline drop-in shim for the subset of the `rand` crate API this
//! workspace uses (`SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen::<f64>()`, `Rng::gen_range(lo..hi)`).
//!
//! The build container has no access to a crate registry, so the
//! workspace ships this minimal, dependency-free implementation as a
//! path dependency. The generator is splitmix64: not cryptographic, but
//! deterministic, well distributed and more than adequate for the
//! simulator's latency jitter and loss sampling. Determinism per seed is
//! the property the test-suite actually relies on.

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling conveniences (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of a type with a standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types drawable via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types drawable via [`Rng::gen_range`].
pub trait UniformSample: Sized {
    /// Draws one value in `[range.start, range.end)`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as $t;
                range.start.wrapping_add(draw)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

/// Pre-seeded small generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
