//! Shared workloads for the per-figure benchmark harness.
//!
//! Each bench target regenerates the behaviour of one figure of the
//! ICDCS'98 paper (see DESIGN.md §4 for the experiment index). This crate
//! holds the workload builders: fully-bound workflow systems for the
//! paper's applications and parameterised generators (chains, fans,
//! nesting depths, redundant-source counts, random scripts).

pub mod report;

use std::cell::Cell;
use std::rc::Rc;

use flowscript_core::builder;
use flowscript_core::fmt::format_script;
use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{
    CommitBatch, EngineError, InvokeCtx, ObjectVal, ObserveLevel, SchedPolicy, TaskBehavior,
    WorkflowSystem,
};
use flowscript_sim::{SimDuration, SimTime};

/// A workflow system with benchmarking defaults (trace off).
pub fn bench_system(seed: u64, executors: usize) -> WorkflowSystem {
    WorkflowSystem::builder()
        .executors(executors)
        .seed(seed)
        .trace(false)
        .build()
}

/// A system with a custom engine config (trace off).
pub fn bench_system_with(seed: u64, executors: usize, config: EngineConfig) -> WorkflowSystem {
    WorkflowSystem::builder()
        .executors(executors)
        .seed(seed)
        .config(config)
        .trace(false)
        .build()
}

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

// ---------------------------------------------------------------------
// Paper applications, fully bound.
// ---------------------------------------------------------------------

/// Registers and binds the Fig. 1 diamond; returns the ready system.
pub fn diamond_system(seed: u64) -> WorkflowSystem {
    let mut sys = bench_system(seed, 3);
    sys.register_script("diamond", samples::FIG1_DIAMOND, "diamond")
        .expect("sample valid");
    sys.bind_fn("refT1", |_| {
        TaskBehavior::outcome("done").with_object("out", text("Data", "1"))
    });
    sys.bind_fn("refT2", |_| {
        TaskBehavior::outcome("done").with_object("out", text("Data", "2"))
    });
    sys.bind_fn("refT3", |_| {
        TaskBehavior::outcome("done").with_object("out", text("Data", "3"))
    });
    sys.bind_fn("refT4", |_| {
        TaskBehavior::outcome("done").with_object("out", text("Data", "4"))
    });
    sys
}

/// Runs one diamond instance to completion; panics unless it completes.
pub fn run_diamond(sys: &mut WorkflowSystem, instance: &str) {
    sys.start(instance, "diamond", "main", [("seed", text("Data", "s"))])
        .expect("starts");
    sys.run();
    assert!(sys.outcome(instance).is_some());
}

/// Registers and binds §5.1's service impact application.
pub fn service_impact_system(seed: u64) -> WorkflowSystem {
    let mut sys = bench_system(seed, 3);
    sys.register_script("si", samples::SERVICE_IMPACT, "serviceImpactApplication")
        .expect("sample valid");
    sys.bind_fn("refAlarmCorrelator", |_| {
        TaskBehavior::outcome("foundFault").with_object("faultReport", text("FaultReport", "f"))
    });
    sys.bind_fn("refServiceImpactAnalysis", |_| {
        TaskBehavior::outcome("foundImpacts")
            .with_object("serviceImpactReports", text("ServiceImpactReports", "i"))
    });
    sys.bind_fn("refServiceImpactResolution", |_| {
        TaskBehavior::outcome("foundResolution")
            .with_object("resolutionReport", text("ResolutionReport", "r"))
    });
    sys
}

/// Runs one service-impact incident; asserts `resolved`.
pub fn run_service_impact(sys: &mut WorkflowSystem, instance: &str) {
    sys.start(
        instance,
        "si",
        "main",
        [("alarmsSource", text("AlarmsSource", "a"))],
    )
    .expect("starts");
    sys.run();
    assert_eq!(sys.outcome(instance).expect("completes").name, "resolved");
}

/// Registers and binds §5.2's order processing application.
pub fn order_system(seed: u64) -> WorkflowSystem {
    let mut sys = bench_system(seed, 4);
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .expect("sample valid");
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised").with_object("paymentInfo", text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable").with_object("stockInfo", text("StockInfo", "st"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_object("dispatchNote", text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
    sys
}

/// Runs one order; asserts `orderCompleted`.
pub fn run_order(sys: &mut WorkflowSystem, instance: &str) {
    sys.start(instance, "order", "main", [("order", text("Order", "o"))])
        .expect("starts");
    sys.run();
    assert_eq!(
        sys.outcome(instance).expect("completes").name,
        "orderCompleted"
    );
}

/// Registers and binds §5.3's business trip; the hotel fails
/// `hotel_failures` times before confirming (each failure costs one
/// compensation plus one compound repeat).
pub fn trip_system(seed: u64, hotel_failures: u32) -> WorkflowSystem {
    let mut sys = bench_system(seed, 4);
    sys.register_script("trip", samples::BUSINESS_TRIP, "tripReservation")
        .expect("sample valid");
    sys.bind_fn("refDataAcquisition", |_| {
        TaskBehavior::outcome("acquired").with_object("tripData", text("TripData", "t"))
    });
    sys.bind_fn("refAirlineQueryA", |_| {
        TaskBehavior::outcome("notFound").with_work(SimDuration::from_millis(5))
    });
    sys.bind_fn("refAirlineQueryB", |_| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(12))
            .with_object("flightList", text("FlightList", "fl"))
    });
    sys.bind_fn("refAirlineQueryC", |_| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(30))
            .with_object("flightList", text("FlightList", "fl2"))
    });
    sys.bind_fn("refFlightReservation", |_| {
        TaskBehavior::outcome("reserved")
            .with_object("plane", text("Plane", "p"))
            .with_object("cost", text("Cost", "c"))
    });
    let remaining = Rc::new(Cell::new(hotel_failures));
    sys.bind_fn("refHotelReservation", move |_| {
        if remaining.get() > 0 {
            remaining.set(remaining.get() - 1);
            TaskBehavior::outcome("failed")
        } else {
            TaskBehavior::outcome("hotelBooked").with_object("hotel", text("Hotel", "h"))
        }
    });
    sys.bind_fn("refFlightCancellation", |_| {
        TaskBehavior::outcome("cancelled")
    });
    sys.bind_fn("refPrintTickets", |_| {
        TaskBehavior::outcome("printed").with_object("tickets", text("Tickets", "tk"))
    });
    sys
}

/// Runs one trip; asserts `booked`.
pub fn run_trip(sys: &mut WorkflowSystem, instance: &str) {
    sys.start(instance, "trip", "main", [("user", text("User", "u"))])
        .expect("starts");
    sys.run();
    assert_eq!(sys.outcome(instance).expect("completes").name, "booked");
}

// ---------------------------------------------------------------------
// Sharded-coordinator waves (the 10k-concurrent-instances workload).
// ---------------------------------------------------------------------

/// A sharded system bound to the Fig. 1 diamond with long virtual work
/// per task, so a whole wave of instances is in flight simultaneously
/// (the multi-instance scalability workload; see the `plan_dispatch`
/// bench's `sharded` variant).
pub fn sharded_diamond_system(seed: u64, coordinators: usize, executors: usize) -> WorkflowSystem {
    observed_diamond_system(seed, coordinators, executors, ObserveLevel::Off)
}

/// [`sharded_diamond_system`] with an explicit observability level (the
/// `obs_overhead` bench variant times the same wave at every level).
pub fn observed_diamond_system(
    seed: u64,
    coordinators: usize,
    executors: usize,
    observe: ObserveLevel,
) -> WorkflowSystem {
    let config = EngineConfig {
        // Tasks deliberately take 30 virtual seconds; keep watchdogs out
        // of the way (nothing fails in this workload).
        dispatch_timeout: SimDuration::from_secs(300),
        observe,
        ..EngineConfig::default()
    };
    diamond_wave_system(seed, coordinators, executors, config, None)
}

/// [`sharded_diamond_system`] with explicit group-commit batching knobs
/// (the `batched` bench variant compares the batched pipeline against
/// the [`CommitBatch::disabled`] one-frame-per-commit baseline arm).
pub fn batched_diamond_system(
    seed: u64,
    coordinators: usize,
    executors: usize,
    batch: CommitBatch,
) -> WorkflowSystem {
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_secs(300),
        commit_batch: batch,
        ..EngineConfig::default()
    };
    diamond_wave_system(seed, coordinators, executors, config, None)
}

/// [`durable_diamond_system`] with the adaptive commit window enabled:
/// the shard tracks an EWMA of report inter-arrival gaps and narrows
/// the batch window to `min_window` when reports are sparse (commit
/// latency), re-widening to the configured maximum under bursts (sync
/// amortization). The `batched` bench variant runs this as a
/// no-regression arm against the static-window pipeline.
pub fn adaptive_durable_diamond_system(
    seed: u64,
    coordinators: usize,
    executors: usize,
    batch: CommitBatch,
    min_window: SimDuration,
    wal_dir: &std::path::Path,
) -> WorkflowSystem {
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_secs(300),
        commit_batch: batch,
        adaptive_min_window: Some(min_window),
        ..EngineConfig::default()
    };
    diamond_wave_system(seed, coordinators, executors, config, Some(wal_dir))
}

/// [`batched_diamond_system`] on a durable file-backed WAL: every shard
/// logs to a fresh `shard{i}.wal` under `wal_dir`, and every log frame
/// is an `fdatasync`ed file write. This is the configuration where group
/// commit earns its keep — the per-frame sync cost is real, so folding a
/// whole drain's worth of commits into one frame amortizes it (the
/// `batched` bench variant runs both arms on this storage class).
pub fn durable_diamond_system(
    seed: u64,
    coordinators: usize,
    executors: usize,
    batch: CommitBatch,
    wal_dir: &std::path::Path,
) -> WorkflowSystem {
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_secs(300),
        commit_batch: batch,
        ..EngineConfig::default()
    };
    diamond_wave_system(seed, coordinators, executors, config, Some(wal_dir))
}

fn diamond_wave_system(
    seed: u64,
    coordinators: usize,
    executors: usize,
    config: EngineConfig,
    wal_dir: Option<&std::path::Path>,
) -> WorkflowSystem {
    let mut builder = WorkflowSystem::builder()
        .executors(executors)
        .coordinators(coordinators)
        .seed(seed)
        .config(config)
        .trace(false);
    if let Some(dir) = wal_dir {
        builder = builder.wal_dir(dir);
    }
    let sys = builder.build();
    let mut sys = sys;
    sys.register_script("diamond", samples::FIG1_DIAMOND, "diamond")
        .expect("sample valid");
    for code in ["refT1", "refT2", "refT3", "refT4"] {
        sys.bind_fn(code, |_| {
            TaskBehavior::outcome("done")
                .with_work(SimDuration::from_secs(30))
                .with_object("out", ObjectVal::text("Data", "d"))
        });
    }
    sys
}

/// Starts `count` diamond instances (`wave-0` … `wave-{count-1}`)
/// without running the world — the live-rebalance bench needs the wave
/// *in flight* when the fleet grows, not finished.
pub fn start_instance_wave(sys: &mut WorkflowSystem, count: usize) {
    for i in 0..count {
        sys.start(
            &format!("wave-{i}"),
            "diamond",
            "main",
            [("seed", text("Data", "s"))],
        )
        .expect("wave instance starts");
    }
}

/// How many instances of a started wave reached an outcome.
pub fn completed_wave(sys: &WorkflowSystem, count: usize) -> usize {
    (0..count)
        .filter(|i| sys.outcome(&format!("wave-{i}")).is_some())
        .count()
}

/// Starts `count` diamond instances, runs the world to quiescence and
/// returns how many completed. The 30s virtual work per task dwarfs the
/// start window, so the whole wave is concurrently in flight.
pub fn run_instance_wave(sys: &mut WorkflowSystem, count: usize) -> usize {
    start_instance_wave(sys, count);
    sys.run();
    completed_wave(sys, count)
}

// ---------------------------------------------------------------------
// Skewed-duration scheduling waves (the `scheduled` bench variant).
// ---------------------------------------------------------------------

/// Width of the skewed fan (one long worker, the rest short).
pub const SKEW_WIDTH: usize = 6;

/// Source of a fan of [`SKEW_WIDTH`] independent workers per instance.
pub fn skewed_fan_source() -> String {
    let mut source = String::from(
        r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
"#,
    );
    for i in 0..SKEW_WIDTH {
        source.push_str(&format!(
            r#"    task w{i} of taskclass Work {{
        implementation {{ "code" is "refW{i}" }};
        inputs {{ input main {{ inputobject in from {{ seed of task root if input main }} }} }}
    }};
"#
        ));
    }
    source.push_str("    outputs { outcome done {\n");
    for i in 0..SKEW_WIDTH {
        let sep = if i + 1 < SKEW_WIDTH { ";" } else { "" };
        source.push_str(&format!(
            "        notification from {{ task w{i} if output done }}{sep}\n"
        ));
    }
    source.push_str("    } }\n}\n");
    source
}

/// A system for the scheduling comparison: `executors` **serial**
/// executor nodes (one task at a time, so load shows up as virtual
/// latency), dispatch under `policy`, and the skewed fan bound —
/// worker 0 takes 400ms of virtual work, the rest 50ms.
pub fn skewed_fan_system(seed: u64, executors: usize, policy: SchedPolicy) -> WorkflowSystem {
    let config = EngineConfig {
        scheduler: policy,
        // Serial queues stretch latency; watchdogs stay out of the way.
        dispatch_timeout: SimDuration::from_secs(3600),
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(executors)
        .serial_executors(true)
        .seed(seed)
        .config(config)
        .trace(false)
        .build();
    sys.register_script("skew", &skewed_fan_source(), "root")
        .expect("skew source valid");
    for i in 0..SKEW_WIDTH {
        let work = if i == 0 {
            SimDuration::from_millis(400)
        } else {
            SimDuration::from_millis(50)
        };
        sys.bind_fn(&format!("refW{i}"), move |_| {
            TaskBehavior::outcome("done").with_work(work)
        });
    }
    sys
}

/// Starts `count` skewed fans, runs to quiescence, asserts they all
/// complete and returns the **virtual makespan** — the deterministic
/// measure the scheduling comparison is made on.
pub fn run_skew_wave(sys: &mut WorkflowSystem, count: usize) -> SimDuration {
    for i in 0..count {
        sys.start(
            &format!("wave-{i}"),
            "skew",
            "main",
            [("seed", text("Data", "s"))],
        )
        .expect("wave instance starts");
    }
    sys.run();
    for i in 0..count {
        assert!(
            sys.outcome(&format!("wave-{i}")).is_some(),
            "skew wave instance {i} must complete"
        );
    }
    sys.now().since(SimTime::ZERO)
}

// ---------------------------------------------------------------------
// Lying-hint feedback waves (the `adaptive` bench variant).
// ---------------------------------------------------------------------

/// Source of the probe→liar chain behind the observed-duration
/// comparison. Both tasks share one implementation code (`refShared`,
/// 400ms of real work); the probe declares its duration honestly, the
/// downstream liar declares 1ms. Under declared hints alone, the
/// liar's watchdog (`base + 1ms`) can never fit the real execution, so
/// every attempt times out, relocates and retries until the attempt
/// budget strands the instance; with observed-duration feedback the
/// probe's completion teaches the per-code cost model the real 400ms
/// before the liar ever dispatches.
pub fn lying_chain_source() -> String {
    String::from(
        r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
    task probe of taskclass Work {
        implementation { "code" is "refShared"; "duration_ms" is "400" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    task liar of taskclass Work {
        implementation { "code" is "refShared"; "duration_ms" is "1" };
        inputs { input main { inputobject in from { out of task probe if output done } } }
    };
    outputs { outcome done { notification from { task liar if output done } } }
}
"#,
    )
}

/// A system for the adaptive-scheduling comparison: 2 serial executors,
/// the probe→liar chain bound, a base watchdog (200ms) the liar's
/// declared 1ms can never stretch over its real 400ms execution.
/// `cost_feedback` toggles the observed-duration EWMA;
/// `max_inflight` adds the per-shard admission cap (queue depth 0, so
/// excess starts get a typed `Busy` to retry with backoff).
pub fn feedback_chain_system(
    seed: u64,
    cost_feedback: bool,
    max_inflight: Option<usize>,
) -> WorkflowSystem {
    let config = EngineConfig {
        scheduler: SchedPolicy::LeastLoaded,
        dispatch_timeout: SimDuration::from_millis(200),
        retry_backoff: SimDuration::from_millis(50),
        max_retries: 3,
        cost_feedback,
        max_inflight_instances: max_inflight,
        admission_queue_limit: 0,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .serial_executors(true)
        .seed(seed)
        .config(config)
        .trace(false)
        .build();
    sys.register_script("lying", &lying_chain_source(), "root")
        .expect("lying chain source valid");
    sys.bind_fn("refShared", |_| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(400))
            .with_object("out", ObjectVal::text("Data", "d"))
    });
    sys
}

/// Starts `count` probe→liar chains, runs to quiescence and returns
/// `(virtual makespan, completed instances)`. Every instance must at
/// least reach a terminal verdict: the declared-hints arm strands its
/// liars stuck after the retry budget, so `completed` may be below
/// `count` there — that gap *is* the cost of wrong hints.
pub fn run_lying_wave(sys: &mut WorkflowSystem, count: usize) -> (SimDuration, usize) {
    for i in 0..count {
        sys.start(
            &format!("wave-{i}"),
            "lying",
            "main",
            [("seed", text("Data", "s"))],
        )
        .expect("wave instance starts");
    }
    sys.run();
    let mut completed = 0;
    for i in 0..count {
        let name = format!("wave-{i}");
        let status = sys.status(&name).expect("instance known");
        assert!(status.is_terminal(), "{name} not terminal: {status:?}");
        if sys.outcome(&name).is_some() {
            completed += 1;
        }
    }
    (sys.now().since(SimTime::ZERO), completed)
}

/// Starts `count` chains against a shard admission cap, retrying typed
/// `Busy` rejections with virtual-time backoff (the client half of the
/// backpressure contract). Returns how many rejections were retried;
/// the caller still runs the world to quiescence.
pub fn start_admitted_wave(sys: &mut WorkflowSystem, count: usize, backoff: SimDuration) -> u64 {
    let mut rejections = 0u64;
    for i in 0..count {
        let name = format!("wave-{i}");
        loop {
            match sys.start(&name, "lying", "main", [("seed", text("Data", "s"))]) {
                Ok(()) => break,
                Err(EngineError::Busy { .. }) => {
                    rejections += 1;
                    sys.run_for(backoff);
                }
                Err(err) => panic!("{name} failed to start: {err}"),
            }
        }
    }
    rejections
}

// ---------------------------------------------------------------------
// Generated topologies.
// ---------------------------------------------------------------------

/// Canonical source of an `n`-stage chain.
pub fn chain_source(n: usize) -> String {
    format_script(&builder::chain(n))
}

/// Canonical source of a `width`-way fan-out/fan-in.
pub fn fan_source(width: usize) -> String {
    format_script(&builder::fan(width))
}

/// Binds the chain implementations onto `sys`.
pub fn bind_chain(sys: &WorkflowSystem, n: usize) {
    for i in 0..n {
        sys.bind_fn(&format!("ref{i}"), |ctx: &InvokeCtx| {
            TaskBehavior::outcome("done")
                .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
        });
    }
}

/// Binds the fan implementations onto `sys`.
pub fn bind_fan(sys: &WorkflowSystem, width: usize) {
    sys.bind_fn("refSource", |ctx: &InvokeCtx| {
        TaskBehavior::outcome("done")
            .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
    });
    for i in 0..width {
        sys.bind_fn(&format!("refW{i}"), |ctx: &InvokeCtx| {
            TaskBehavior::outcome("done")
                .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
        });
    }
    sys.bind_fn("refJoin", |_| {
        TaskBehavior::outcome("done").with_object("out", ObjectVal::text("Data", "joined"))
    });
}

/// A compound nested `depth` scopes deep with one leaf at the bottom
/// (Fig. 5 generalised). Root compound is named `root`.
pub fn nested_source(depth: usize) -> String {
    let mut source = String::from(
        r#"
class Data;
taskclass Leaf {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}
taskclass Wrap {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}
"#,
    );
    // Innermost first: build nested compound text inside-out.
    let mut inner = String::from(
        r#"
        task leaf of taskclass Leaf {
            implementation { "code" is "refLeaf" };
            inputs { input main { inputobject in from { in of task LEVEL if input main } } }
        };
        outputs { outcome done { outputobject out from { out of task leaf if output done } } }
"#,
    );
    for level in (0..depth).rev() {
        let name = if level == 0 {
            "root".to_string()
        } else {
            format!("level{level}")
        };
        let body = inner.replace("LEVEL", &name);
        if level == 0 {
            source.push_str(&format!(
                "compoundtask root of taskclass Wrap {{\n{body}\n}}\n"
            ));
        } else {
            let parent = if level == 1 {
                "root".to_string()
            } else {
                format!("level{}", level - 1)
            };
            inner = format!(
                r#"
        compoundtask {name} of taskclass Wrap {{
            inputs {{ input main {{ inputobject in from {{ in of task {parent} if input main }} }} }};
            {body}
        }};
        outputs {{ outcome done {{ outputobject out from {{ out of task {name} if output done }} }} }}
"#
            );
        }
    }
    source
}

/// A script whose consumer has `k` alternative sources; only producer
/// `k-1` succeeds, the rest abort (redundant data sources, §3).
pub fn alternatives_source(k: usize) -> String {
    let mut source = String::from(
        r#"
class Data;
taskclass Producer {
    inputs { input main { in of class Data } };
    outputs { outcome ok { out of class Data }; outcome failed { } }
}
taskclass Consumer {
    inputs { input main { in of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
"#,
    );
    for i in 0..k {
        source.push_str(&format!(
            r#"    task p{i} of taskclass Producer {{
        implementation {{ "code" is "refP{i}" }};
        inputs {{ input main {{ inputobject in from {{ seed of task root if input main }} }} }}
    }};
"#
        ));
    }
    source.push_str(
        r#"    task consumer of taskclass Consumer {
        implementation { "code" is "refConsumer" };
        inputs { input main { inputobject in from {
"#,
    );
    for i in 0..k {
        let sep = if i + 1 < k { ";" } else { "" };
        source.push_str(&format!("            out of task p{i} if output ok{sep}\n"));
    }
    source.push_str(
        r#"        } } }
    };
    outputs { outcome done { notification from { task consumer if output done } } }
}
"#,
    );
    source
}

/// Binds the alternatives workload: producers `0..k-1` fail, `k-1`
/// succeeds after `winner_delay`.
pub fn bind_alternatives(sys: &WorkflowSystem, k: usize, winner_delay: SimDuration) {
    for i in 0..k {
        if i + 1 == k {
            sys.bind_fn(&format!("refP{i}"), move |_: &InvokeCtx| {
                TaskBehavior::outcome("ok")
                    .with_work(winner_delay)
                    .with_object("out", ObjectVal::text("Data", "good"))
            });
        } else {
            sys.bind_fn(&format!("refP{i}"), |_: &InvokeCtx| {
                TaskBehavior::outcome("failed")
            });
        }
    }
    sys.bind_fn("refConsumer", |_: &InvokeCtx| TaskBehavior::outcome("done"));
}

// ---------------------------------------------------------------------
// Fact-read workloads (the `fact_reads` bench variant).
// ---------------------------------------------------------------------

/// A `width`-way fan of workers whose `done` outputs each carry
/// `objects` objects, joined by one wide consumer taking a single
/// object from every worker. Every readiness probe of the join touches
/// exactly one object of a fat fact — the workload where whole-record
/// decoding pays for all the bytes it does not need.
pub fn fat_fan_source(width: usize, objects: usize) -> String {
    let decl: Vec<String> = (0..objects)
        .map(|j| format!("o{j} of class Data"))
        .collect();
    let join_sig: Vec<String> = (0..width).map(|i| format!("x{i} of class Data")).collect();
    let mut source = format!(
        r#"
class Data;
taskclass Work {{
    inputs {{ input main {{ in of class Data }} }};
    outputs {{ outcome done {{ {decl} }} }}
}}
taskclass Join {{
    inputs {{ input main {{ {join_sig} }} }};
    outputs {{ outcome done {{ }} }}
}}
taskclass Root {{
    inputs {{ input main {{ seed of class Data }} }};
    outputs {{ outcome done {{ }} }}
}}
compoundtask root of taskclass Root {{
"#,
        decl = decl.join("; "),
        join_sig = join_sig.join("; "),
    );
    for i in 0..width {
        source.push_str(&format!(
            r#"    task w{i} of taskclass Work {{
        implementation {{ "code" is "refW{i}" }};
        inputs {{ input main {{ inputobject in from {{ seed of task root if input main }} }} }}
    }};
"#
        ));
    }
    source.push_str(
        r#"    task join of taskclass Join {
        implementation { "code" is "refJoin" };
        inputs { input main {
"#,
    );
    for i in 0..width {
        let sep = if i + 1 < width { ";" } else { "" };
        source.push_str(&format!(
            "            inputobject x{i} from {{ o{obj} of task w{i} if output done }}{sep}\n",
            obj = i % objects
        ));
    }
    source.push_str(
        r#"        } }
    };
    outputs { outcome done { notification from { task join if output done } } }
}
"#,
    );
    source
}

/// The mid-loop readiness shape of a high-degree repeat loop: task `t`
/// is still looping (its `done` fact absent, its fat `again` fact
/// rewritten once per iteration), and consumer `c`'s slot falls back
/// from `t`'s missing outcome to the root's fat input binding (which
/// carries `objects` objects). Every loop iteration re-evaluates `c`:
/// one miss probe plus one object fetched out of a fat record.
pub fn repeat_probe_source(objects: usize) -> String {
    let root_sig: Vec<String> = (0..objects)
        .map(|j| format!("s{j} of class Data"))
        .collect();
    format!(
        r#"
class Data;
taskclass Stage {{
    inputs {{ input main {{ in of class Data }} }};
    outputs {{
        outcome done {{ o0 of class Data }};
        repeat outcome again {{ o0 of class Data }}
    }}
}}
taskclass Consumer {{
    inputs {{ input main {{ x of class Data }} }};
    outputs {{ outcome done {{ }} }}
}}
taskclass Root {{
    inputs {{ input main {{ {root_sig} }} }};
    outputs {{ outcome done {{ }} }}
}}
compoundtask root of taskclass Root {{
    task t of taskclass Stage {{
        implementation {{ "code" is "refT" }};
        inputs {{ input main {{ inputobject in from {{ s0 of task root if input main }} }} }}
    }};
    task c of taskclass Consumer {{
        implementation {{ "code" is "refC" }};
        inputs {{ input main {{ inputobject x from {{
            o0 of task t if output done;
            s1 of task root if input main
        }} }} }}
    }};
    outputs {{ outcome done {{ notification from {{ task c if output done }} }} }}
}}
"#,
        root_sig = root_sig.join("; "),
    )
}

/// Generates a valid script with `n` chained tasks (each also falling
/// back to the root input) for parser/sema/compile throughput
/// measurements.
pub fn generated_script(n: usize) -> String {
    let mut source = String::from("class Data;\n");
    source.push_str(
        r#"taskclass Stage {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data }; abort outcome failed { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
"#,
    );
    for i in 0..n {
        let from = if i == 0 {
            "inputobject in from { seed of task root if input main }".to_string()
        } else {
            format!(
                "inputobject in from {{ out of task t{} if output done; seed of task root if input main }}",
                i - 1
            )
        };
        source.push_str(&format!(
            r#"    task t{i} of taskclass Stage {{
        implementation {{ "code" is "ref{i}"; "priority" is "{p}" }};
        inputs {{ input main {{ {from} }} }}
    }};
"#,
            p = i % 7
        ));
    }
    source.push_str(&format!(
        "    outputs {{ outcome done {{ notification from {{ task t{} if output done }} }} }}\n}}\n",
        n.saturating_sub(1)
    ));
    source
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads_run() {
        let mut sys = diamond_system(1);
        run_diamond(&mut sys, "d");
        let mut sys = service_impact_system(2);
        run_service_impact(&mut sys, "s");
        let mut sys = order_system(3);
        run_order(&mut sys, "o");
        let mut sys = trip_system(4, 1);
        run_trip(&mut sys, "t");
    }

    #[test]
    fn sharded_wave_completes_on_every_shard() {
        let mut sys = sharded_diamond_system(9, 2, 3);
        assert_eq!(run_instance_wave(&mut sys, 40), 40);
        let all = sys.stats();
        assert_eq!(all.dispatches, 4 * 40);
        // Both shards actually worked.
        for shard in 0..sys.shard_count() {
            assert!(sys.shard_stats(shard).dispatches > 0, "shard {shard} idle");
        }
    }

    #[test]
    fn skewed_fan_completes_and_least_loaded_wins() {
        let mut hash = skewed_fan_system(5, 4, SchedPolicy::PathHash);
        let hash_makespan = run_skew_wave(&mut hash, 16);
        let mut scheduled = skewed_fan_system(5, 4, SchedPolicy::LeastLoaded);
        let sched_makespan = run_skew_wave(&mut scheduled, 16);
        assert!(
            sched_makespan < hash_makespan,
            "least-loaded {sched_makespan:?} vs hash {hash_makespan:?}"
        );
    }

    #[test]
    fn lying_chain_feedback_restores_completion() {
        // Declared hints alone: the liar's watchdog can never fit the
        // real execution, so the retry budget strands it.
        let mut declared = feedback_chain_system(3, false, None);
        let (declared_makespan, declared_done) = run_lying_wave(&mut declared, 4);
        assert!(declared_done < 4, "a lying hint must strand instances");
        assert!(declared.stats().retries > 0);
        // Observed durations: the probe teaches the cost model before
        // the liar dispatches; everything completes, zero retries.
        let mut ewma = feedback_chain_system(3, true, None);
        let (ewma_makespan, ewma_done) = run_lying_wave(&mut ewma, 4);
        assert_eq!(ewma_done, 4);
        assert_eq!(ewma.stats().retries, 0);
        assert!(
            ewma_makespan < declared_makespan,
            "feedback {ewma_makespan:?} vs declared {declared_makespan:?}"
        );
    }

    #[test]
    fn admission_cap_backpressures_and_loses_nothing() {
        let mut sys = feedback_chain_system(4, true, Some(2));
        let rejections = start_admitted_wave(&mut sys, 6, SimDuration::from_millis(100));
        sys.run();
        assert!(rejections > 0, "a 3x-overload wave must see Busy");
        assert_eq!(sys.stats().busy_rejections, rejections);
        for i in 0..6 {
            assert!(sys.outcome(&format!("wave-{i}")).is_some(), "wave-{i} lost");
        }
    }

    #[test]
    fn nested_source_compiles_at_depths() {
        for depth in [1, 2, 5] {
            let source = nested_source(depth);
            let schema = flowscript_core::schema::compile_source(&source, "root")
                .unwrap_or_else(|d| panic!("depth {depth}: {d}\n{source}"));
            assert_eq!(schema.leaf_count(), 1, "depth {depth}");
        }
    }

    #[test]
    fn nested_workload_runs() {
        let source = nested_source(4);
        let mut sys = bench_system(9, 2);
        sys.register_script("nested", &source, "root").unwrap();
        sys.bind_fn("refLeaf", |ctx: &InvokeCtx| {
            TaskBehavior::outcome("done")
                .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
        });
        sys.start(
            "n1",
            "nested",
            "main",
            [("in", ObjectVal::text("Data", "x"))],
        )
        .unwrap();
        sys.run();
        assert!(sys.outcome("n1").is_some(), "{:?}", sys.status("n1"));
    }

    #[test]
    fn alternatives_workload_runs() {
        for k in [1, 3, 6] {
            let source = alternatives_source(k);
            let mut sys = bench_system(10 + k as u64, 3);
            sys.register_script("alts", &source, "root").unwrap();
            bind_alternatives(&sys, k, SimDuration::from_millis(5));
            sys.start(
                "a1",
                "alts",
                "main",
                [("seed", ObjectVal::text("Data", "s"))],
            )
            .unwrap();
            sys.run();
            assert!(sys.outcome("a1").is_some(), "k={k}: {:?}", sys.status("a1"));
        }
    }

    #[test]
    fn fact_read_workloads_compile() {
        for (width, objects) in [(2, 2), (16, 8), (32, 16)] {
            let source = fat_fan_source(width, objects);
            let schema = flowscript_core::schema::compile_source(&source, "root")
                .unwrap_or_else(|d| panic!("w{width}x{objects}: {d}"));
            assert_eq!(schema.leaf_count(), width + 1);
        }
        let source = repeat_probe_source(8);
        let schema = flowscript_core::schema::compile_source(&source, "root").unwrap();
        assert_eq!(schema.leaf_count(), 2);
    }

    #[test]
    fn generated_script_compiles() {
        for n in [1, 10, 50] {
            let source = generated_script(n);
            let schema = flowscript_core::schema::compile_source(&source, "root")
                .unwrap_or_else(|d| panic!("n={n}: {d}"));
            assert_eq!(schema.leaf_count(), n);
        }
    }
}
