//! Benchmark comparison tables (the paper's fig. 2/fig. 6 "impact"
//! plots, as CSV).
//!
//! The criterion shim prints per-benchmark medians but produces no
//! machine-readable artifact; this module is the comparison-table
//! generator ROADMAP asked for: feed it paired measurements (baseline
//! vs candidate per workload) and it emits a CSV with a speedup column,
//! ready for plotting or regression tracking.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One paired measurement: the same workload under two strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Workload label (e.g. `fig7_order/mid_run`).
    pub workload: String,
    /// Median nanoseconds under the baseline strategy.
    pub baseline_ns: f64,
    /// Median nanoseconds under the candidate strategy.
    pub candidate_ns: f64,
}

impl ComparisonRow {
    /// Baseline time over candidate time (>1 means the candidate wins).
    pub fn speedup(&self) -> f64 {
        if self.candidate_ns > 0.0 {
            self.baseline_ns / self.candidate_ns
        } else {
            f64::INFINITY
        }
    }
}

/// Renders the comparison table as CSV: one header naming the two
/// strategies, one row per workload, speedup column last.
pub fn comparison_csv(baseline: &str, candidate: &str, rows: &[ComparisonRow]) -> String {
    let mut out = format!("workload,{baseline}_ns,{candidate}_ns,speedup\n");
    for row in rows {
        out.push_str(&format!(
            "{},{:.1},{:.1},{:.2}\n",
            row.workload,
            row.baseline_ns,
            row.candidate_ns,
            row.speedup()
        ));
    }
    out
}

/// Writes the CSV next to the other bench artifacts and returns the
/// path (printed by the bench so the table is easy to find).
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_comparison_csv(
    path: impl AsRef<Path>,
    baseline: &str,
    candidate: &str,
    rows: &[ComparisonRow],
) -> io::Result<PathBuf> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, comparison_csv(baseline, candidate, rows))?;
    Ok(path.to_path_buf())
}

/// One throughput measurement: `items` units of work finished in
/// `wall_ns` wall-clock nanoseconds under the labelled configuration
/// (e.g. `4_shards`).
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Configuration label (e.g. `4_shards`).
    pub workload: String,
    /// Units of work completed (e.g. workflow instances).
    pub items: u64,
    /// Wall-clock nanoseconds for the whole batch.
    pub wall_ns: f64,
}

impl ThroughputRow {
    /// Completed items per wall-clock second.
    pub fn per_second(&self) -> f64 {
        if self.wall_ns > 0.0 {
            self.items as f64 * 1e9 / self.wall_ns
        } else {
            f64::INFINITY
        }
    }
}

/// Renders throughput rows as CSV (the shards-vs-throughput table):
/// one row per configuration with wall time and rate columns.
pub fn throughput_csv(item_label: &str, rows: &[ThroughputRow]) -> String {
    let mut out = format!("workload,{item_label},wall_ms,{item_label}_per_sec\n");
    for row in rows {
        out.push_str(&format!(
            "{},{},{:.1},{:.1}\n",
            row.workload,
            row.items,
            row.wall_ns / 1e6,
            row.per_second()
        ));
    }
    out
}

/// Writes the throughput CSV and returns the path.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_throughput_csv(
    path: impl AsRef<Path>,
    item_label: &str,
    rows: &[ThroughputRow],
) -> io::Result<PathBuf> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, throughput_csv(item_label, rows))?;
    Ok(path.to_path_buf())
}

/// Median wall-clock nanoseconds of `f` over `samples` runs (each run
/// batched `batch` times) — the direct measurement used to fill
/// comparison rows, independent of the criterion shim's printing.
pub fn median_ns(samples: usize, batch: usize, mut f: impl FnMut()) -> f64 {
    let samples = samples.max(1);
    let batch = batch.max(1);
    // Warm up once outside timing.
    f();
    let mut timings: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..batch {
                f();
            }
            start.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    timings.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    timings[timings.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_has_header_rows_and_speedup() {
        let rows = vec![
            ComparisonRow {
                workload: "fig7/mid".into(),
                baseline_ns: 1000.0,
                candidate_ns: 250.0,
            },
            ComparisonRow {
                workload: "fig8/end".into(),
                baseline_ns: 900.0,
                candidate_ns: 900.0,
            },
        ];
        let csv = comparison_csv("full_scan", "worklist", &rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "workload,full_scan_ns,worklist_ns,speedup");
        assert!(
            lines[1].starts_with("fig7/mid,1000.0,250.0,4.00"),
            "{}",
            lines[1]
        );
        assert!(lines[2].ends_with("1.00"), "{}", lines[2]);
    }

    #[test]
    fn zero_candidate_reports_infinite_speedup() {
        let row = ComparisonRow {
            workload: "w".into(),
            baseline_ns: 10.0,
            candidate_ns: 0.0,
        };
        assert!(row.speedup().is_infinite());
    }

    #[test]
    fn throughput_csv_has_rate_column() {
        let rows = vec![
            ThroughputRow {
                workload: "1_shards".into(),
                items: 10_000,
                wall_ns: 2e9,
            },
            ThroughputRow {
                workload: "8_shards".into(),
                items: 10_000,
                wall_ns: 1e9,
            },
        ];
        assert!((rows[0].per_second() - 5000.0).abs() < 1e-6);
        let csv = throughput_csv("instances", &rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "workload,instances,wall_ms,instances_per_sec");
        assert_eq!(lines[1], "1_shards,10000,2000.0,5000.0");
        assert_eq!(lines[2], "8_shards,10000,1000.0,10000.0");
    }

    #[test]
    fn throughput_write_roundtrips() {
        let dir = std::env::temp_dir().join(format!("fs-throughput-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sharding_impact.csv");
        let written = write_throughput_csv(
            &path,
            "instances",
            &[ThroughputRow {
                workload: "2_shards".into(),
                items: 5,
                wall_ns: 10.0,
            }],
        )
        .unwrap();
        assert_eq!(written, path);
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .contains("2_shards,5,"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn median_is_positive_and_stable() {
        let ns = median_ns(5, 4, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(ns > 0.0);
    }

    #[test]
    fn write_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("fs-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("impact.csv");
        let written = write_comparison_csv(&path, "a", "b", &[]).unwrap();
        assert_eq!(written, path);
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .starts_with("workload,a_ns,b_ns"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
