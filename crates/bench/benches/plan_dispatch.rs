//! P2 — dispatch decisions: schema-map evaluation vs the compiled plan.
//!
//! The coordinator's hottest loop is the ready-task scan: after every
//! committed fact it re-evaluates input-set satisfaction for waiting
//! tasks and output mappings for active scopes. This bench runs that
//! exact scan over the fig. 7 (order processing) and fig. 8 (business
//! trip) workloads at mid-run and end-of-run fact states, twice: once
//! interpreting the name-keyed `Schema` (`flowscript_engine::deps`,
//! string paths formatted per probe) and once off the compiled
//! `flowscript_plan::Plan` (interned ids, precomputed producer paths).
//! Both scans are asserted to agree before timing starts.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowscript_core::ast::OutputKind;
use flowscript_core::samples;
use flowscript_core::schema::{
    compile_source, CompiledScope, CompiledTask, OutputInfo, Schema, TaskBody,
};
use flowscript_engine::deps::{self, FactView, MemFacts};
use flowscript_engine::ObjectVal;
use flowscript_plan::{eval as plan_eval, Plan, PlanFacts};

/// Adapter: the engine's in-memory fact store viewed through the
/// plan-eval trait.
struct PlanMemFacts<'a>(&'a MemFacts);

impl PlanFacts for PlanMemFacts<'_> {
    type Value = ObjectVal;

    fn output_object(&self, producer: &str, output: &str, object: &str) -> Option<ObjectVal> {
        self.0
            .output_fact(producer, output)
            .and_then(|mut objects| objects.remove(object))
    }

    fn input_object(&self, producer: &str, set: &str, object: &str) -> Option<ObjectVal> {
        self.0
            .input_fact(producer, set)
            .and_then(|mut objects| objects.remove(object))
    }

    fn output_fired(&self, producer: &str, output: &str) -> bool {
        self.0.output_fact(producer, output).is_some()
    }

    fn input_fired(&self, producer: &str, set: &str) -> bool {
        self.0.input_fact(producer, set).is_some()
    }
}

/// Every `(enclosing scope path, task)` pair, depth first.
fn all_tasks(schema: &Schema) -> Vec<(String, &CompiledTask)> {
    fn walk<'a>(scope: &'a CompiledScope, path: &str, out: &mut Vec<(String, &'a CompiledTask)>) {
        for task in &scope.tasks {
            out.push((path.to_string(), task));
            if let TaskBody::Scope(inner) = &task.body {
                walk(inner, &format!("{path}/{}", task.name), out);
            }
        }
    }
    let mut out = Vec::new();
    walk(&schema.root, &schema.root.name, &mut out);
    out
}

/// Every `(scope path, scope)` pair, root included.
fn all_scopes(schema: &Schema) -> Vec<(String, &CompiledScope)> {
    fn walk<'a>(scope: &'a CompiledScope, path: &str, out: &mut Vec<(String, &'a CompiledScope)>) {
        out.push((path.to_string(), scope));
        for task in &scope.tasks {
            if let TaskBody::Scope(inner) = &task.body {
                walk(inner, &format!("{path}/{}", task.name), out);
            }
        }
    }
    let mut out = Vec::new();
    walk(&schema.root, &schema.root.name, &mut out);
    out
}

fn happy_objects(output: &OutputInfo) -> BTreeMap<String, ObjectVal> {
    output
        .objects
        .iter()
        .map(|o| (o.name.clone(), ObjectVal::text(o.class.clone(), "v")))
        .collect()
}

/// Drives the fact store one "wavefront" forward, emulating what the
/// coordinator commits: bind satisfied input sets, let leaves take
/// their first declared outcome, map satisfied scope outputs. Returns
/// whether anything new was published.
fn advance(schema: &Schema, facts: &mut MemFacts) -> bool {
    let mut progressed = false;
    for (scope_path, task) in all_tasks(schema) {
        let path = format!("{scope_path}/{}", task.name);
        if let Some((set, bound)) = deps::eval_task_inputs(&scope_path, task, facts) {
            if facts.input_fact(&path, &set).is_none() {
                facts.add_input(path.clone(), set, bound);
                progressed = true;
            }
            if matches!(task.body, TaskBody::Leaf) {
                let class = schema.task_class(&task.class).expect("class exists");
                if let Some(outcome) = class.outputs.iter().find(|o| o.kind == OutputKind::Outcome)
                {
                    if facts.output_fact(&path, &outcome.name).is_none() {
                        facts.add_output(path, outcome.name.clone(), happy_objects(outcome));
                        progressed = true;
                    }
                }
            }
        }
    }
    for (scope_path, scope) in all_scopes(schema) {
        let satisfied: Vec<(String, BTreeMap<String, ObjectVal>)> =
            deps::eval_scope_outputs(&scope_path, scope, facts)
                .into_iter()
                .filter(|(output, _)| output.kind == OutputKind::Outcome)
                .map(|(output, objects)| (output.name.clone(), objects))
                .collect();
        for (name, objects) in satisfied {
            if facts.output_fact(&scope_path, &name).is_none() {
                facts.add_output(scope_path.clone(), name, objects);
                progressed = true;
            }
        }
    }
    progressed
}

/// The coordinator's full ready-scan, interpreted over the schema.
fn scan_schema(schema: &Schema, facts: &MemFacts) -> usize {
    let mut satisfied = 0;
    for (scope_path, task) in all_tasks(schema) {
        if deps::eval_task_inputs(&scope_path, task, facts).is_some() {
            satisfied += 1;
        }
    }
    for (scope_path, scope) in all_scopes(schema) {
        satisfied += deps::eval_scope_outputs(&scope_path, scope, facts).len();
    }
    satisfied
}

/// The same scan compiled: flat id iteration, interned paths.
fn scan_plan(plan: &Plan, facts: &PlanMemFacts<'_>) -> usize {
    let mut satisfied = 0;
    for id in 1..plan.tasks.len() as u32 {
        if plan_eval::eval_task_inputs(plan, id, facts).is_some() {
            satisfied += 1;
        }
    }
    for id in 0..plan.tasks.len() as u32 {
        if plan.task(id).is_scope {
            satisfied += plan_eval::eval_scope_outputs(plan, id, facts).len();
        }
    }
    satisfied
}

struct Workload {
    label: &'static str,
    schema: Schema,
    plan: Plan,
    root_set: &'static str,
    root_inputs: &'static [(&'static str, &'static str)],
}

fn workloads() -> Vec<Workload> {
    let order = compile_source(samples::ORDER_PROCESSING, "processOrderApplication").unwrap();
    let trip = compile_source(samples::BUSINESS_TRIP, "tripReservation").unwrap();
    vec![
        Workload {
            label: "fig7_order",
            plan: Plan::lower(&order),
            schema: order,
            root_set: "main",
            root_inputs: &[("order", "Order")],
        },
        Workload {
            label: "fig8_trip",
            plan: Plan::lower(&trip),
            schema: trip,
            root_set: "main",
            root_inputs: &[("user", "User")],
        },
    ]
}

fn facts_at(workload: &Workload, rounds: usize) -> MemFacts {
    let mut facts = MemFacts::new();
    facts.add_input(
        workload.schema.root.name.clone(),
        workload.root_set,
        workload
            .root_inputs
            .iter()
            .map(|(name, class)| ((*name).to_string(), ObjectVal::text(*class, "v")))
            .collect(),
    );
    for _ in 0..rounds {
        if !advance(&workload.schema, &mut facts) {
            break;
        }
    }
    facts
}

fn dispatch(c: &mut Criterion) {
    for workload in workloads() {
        let mut group = c.benchmark_group(format!("plan_dispatch/{}", workload.label));
        for (stage, rounds) in [("mid_run", 1), ("end_of_run", 16)] {
            let facts = facts_at(&workload, rounds);
            let plan_facts = PlanMemFacts(&facts);
            // The two evaluators must agree before we time them.
            assert_eq!(
                scan_schema(&workload.schema, &facts),
                scan_plan(&workload.plan, &plan_facts),
                "schema and plan scans disagree on {}/{stage}",
                workload.label
            );
            group.bench_with_input(BenchmarkId::new("schema_map", stage), &facts, |b, facts| {
                b.iter(|| scan_schema(&workload.schema, facts))
            });
            group.bench_with_input(
                BenchmarkId::new("compiled_plan", stage),
                &facts,
                |b, facts| b.iter(|| scan_plan(&workload.plan, &PlanMemFacts(facts))),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, dispatch);
criterion_main!(benches);
