//! P2 — dispatch decisions: schema-map evaluation vs the compiled plan
//! vs worklist re-evaluation.
//!
//! The coordinator's hottest loop is deciding what became runnable
//! after a committed fact. This bench runs that decision over the
//! fig. 7 (order processing) and fig. 8 (business trip) workloads at
//! mid-run and end-of-run fact states, three ways:
//!
//! - **schema_map** — interpreting the name-keyed `Schema`
//!   (`flowscript_engine::deps`, string paths formatted per probe),
//! - **compiled_plan** — the PR 1 full plan scan (interned ids,
//!   precomputed producer paths, but still re-checking *every* task
//!   after every commit),
//! - **worklist** — the event-driven re-evaluation: seed only the
//!   changed task's consumers off the plan's reverse dependency edges
//!   and re-check those.
//!
//! All evaluators are asserted to agree before timing starts (the
//! worklist via a coverage check: every task a commit newly satisfies
//! must be on the seeded agenda). A `plan_dispatch_impact.csv`
//! comparison table (full scan vs worklist, per workload/stage) is
//! written next to the bench output.

use std::collections::BTreeMap;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowscript_bench::report::{self, ComparisonRow, ThroughputRow};
use flowscript_bench::{
    adaptive_durable_diamond_system, completed_wave, durable_diamond_system, fat_fan_source,
    feedback_chain_system, repeat_probe_source, run_instance_wave, run_lying_wave, run_skew_wave,
    sharded_diamond_system, skewed_fan_system, start_admitted_wave, start_instance_wave,
};
use flowscript_core::ast::OutputKind;
use flowscript_core::samples;
use flowscript_core::schema::{
    compile_source, CompiledScope, CompiledTask, OutputInfo, Schema, TaskBody,
};
use flowscript_engine::deps::{self, FactView, MemFacts};
use flowscript_engine::CommitBatch;
use flowscript_engine::ObjectVal;
use flowscript_engine::ObserveLevel;
use flowscript_engine::SchedPolicy;
use flowscript_engine::{facts as engine_facts, InstanceKeys, StoreFacts};
use flowscript_plan::{eval as plan_eval, Plan, PlanFacts, Probe, TaskId, Worklist};
use flowscript_sim::{SimDuration, SimTime};
use flowscript_tx::TxManager;

/// Adapter: the engine's in-memory fact store viewed through the
/// plan-eval trait.
struct PlanMemFacts<'a>(&'a MemFacts);

impl PlanFacts for PlanMemFacts<'_> {
    type Value = ObjectVal;

    fn fact_object(&self, probe: Probe<'_>, object: &str) -> Option<ObjectVal> {
        let fact = if probe.is_input {
            self.0.input_fact(probe.producer, probe.name)
        } else {
            self.0.output_fact(probe.producer, probe.name)
        };
        fact.and_then(|mut objects| objects.remove(object))
    }

    fn fact_fired(&self, probe: Probe<'_>) -> bool {
        if probe.is_input {
            self.0.input_fact(probe.producer, probe.name).is_some()
        } else {
            self.0.output_fact(probe.producer, probe.name).is_some()
        }
    }
}

/// Every `(enclosing scope path, task)` pair, depth first.
fn all_tasks(schema: &Schema) -> Vec<(String, &CompiledTask)> {
    fn walk<'a>(scope: &'a CompiledScope, path: &str, out: &mut Vec<(String, &'a CompiledTask)>) {
        for task in &scope.tasks {
            out.push((path.to_string(), task));
            if let TaskBody::Scope(inner) = &task.body {
                walk(inner, &format!("{path}/{}", task.name), out);
            }
        }
    }
    let mut out = Vec::new();
    walk(&schema.root, &schema.root.name, &mut out);
    out
}

/// Every `(scope path, scope)` pair, root included.
fn all_scopes(schema: &Schema) -> Vec<(String, &CompiledScope)> {
    fn walk<'a>(scope: &'a CompiledScope, path: &str, out: &mut Vec<(String, &'a CompiledScope)>) {
        out.push((path.to_string(), scope));
        for task in &scope.tasks {
            if let TaskBody::Scope(inner) = &task.body {
                walk(inner, &format!("{path}/{}", task.name), out);
            }
        }
    }
    let mut out = Vec::new();
    walk(&schema.root, &schema.root.name, &mut out);
    out
}

fn happy_objects(output: &OutputInfo) -> BTreeMap<String, ObjectVal> {
    output
        .objects
        .iter()
        .map(|o| (o.name.clone(), ObjectVal::text(o.class.clone(), "v")))
        .collect()
}

/// Drives the fact store one "wavefront" forward, emulating what the
/// coordinator commits: bind satisfied input sets, let leaves take
/// their first declared outcome, map satisfied scope outputs. Returns
/// whether anything new was published.
fn advance(schema: &Schema, facts: &mut MemFacts) -> bool {
    let mut progressed = false;
    for (scope_path, task) in all_tasks(schema) {
        let path = format!("{scope_path}/{}", task.name);
        if let Some((set, bound)) = deps::eval_task_inputs(&scope_path, task, facts) {
            if facts.input_fact(&path, &set).is_none() {
                facts.add_input(path.clone(), set, bound);
                progressed = true;
            }
            if matches!(task.body, TaskBody::Leaf) {
                let class = schema.task_class(&task.class).expect("class exists");
                if let Some(outcome) = class.outputs.iter().find(|o| o.kind == OutputKind::Outcome)
                {
                    if facts.output_fact(&path, &outcome.name).is_none() {
                        facts.add_output(path, outcome.name.clone(), happy_objects(outcome));
                        progressed = true;
                    }
                }
            }
        }
    }
    for (scope_path, scope) in all_scopes(schema) {
        let satisfied: Vec<(String, BTreeMap<String, ObjectVal>)> =
            deps::eval_scope_outputs(&scope_path, scope, facts)
                .into_iter()
                .filter(|(output, _)| output.kind == OutputKind::Outcome)
                .map(|(output, objects)| (output.name.clone(), objects))
                .collect();
        for (name, objects) in satisfied {
            if facts.output_fact(&scope_path, &name).is_none() {
                facts.add_output(scope_path.clone(), name, objects);
                progressed = true;
            }
        }
    }
    progressed
}

/// The coordinator's full ready-scan, interpreted over the schema.
fn scan_schema(schema: &Schema, facts: &MemFacts) -> usize {
    let mut satisfied = 0;
    for (scope_path, task) in all_tasks(schema) {
        if deps::eval_task_inputs(&scope_path, task, facts).is_some() {
            satisfied += 1;
        }
    }
    for (scope_path, scope) in all_scopes(schema) {
        satisfied += deps::eval_scope_outputs(&scope_path, scope, facts).len();
    }
    satisfied
}

/// The same scan compiled: flat id iteration, interned paths.
fn scan_plan(plan: &Plan, facts: &PlanMemFacts<'_>) -> usize {
    let mut satisfied = 0;
    for id in 1..plan.tasks.len() as u32 {
        if plan_eval::eval_task_inputs(plan, id, facts).is_some() {
            satisfied += 1;
        }
    }
    for id in 0..plan.tasks.len() as u32 {
        if plan.task(id).is_scope {
            satisfied += plan_eval::eval_scope_outputs(plan, id, facts).len();
        }
    }
    satisfied
}

/// Worklist re-evaluation after `changed` committed a fact: only the
/// reverse-edge consumers are re-checked.
fn scan_worklist(plan: &Plan, changed: TaskId, facts: &PlanMemFacts<'_>) -> usize {
    let mut worklist = Worklist::new();
    worklist.seed_commit(plan, changed);
    let mut satisfied = 0;
    while let Some(id) = worklist.pop_start() {
        if plan_eval::eval_task_inputs(plan, id, facts).is_some() {
            satisfied += 1;
        }
    }
    while let Some(id) = worklist.pop_output(plan) {
        satisfied += plan_eval::eval_scope_outputs(plan, id, facts).len();
    }
    satisfied
}

struct Workload {
    label: &'static str,
    schema: Schema,
    plan: Plan,
    root_set: &'static str,
    root_inputs: &'static [(&'static str, &'static str)],
}

fn workloads() -> Vec<Workload> {
    let order = compile_source(samples::ORDER_PROCESSING, "processOrderApplication").unwrap();
    let trip = compile_source(samples::BUSINESS_TRIP, "tripReservation").unwrap();
    vec![
        Workload {
            label: "fig7_order",
            plan: Plan::lower(&order),
            schema: order,
            root_set: "main",
            root_inputs: &[("order", "Order")],
        },
        Workload {
            label: "fig8_trip",
            plan: Plan::lower(&trip),
            schema: trip,
            root_set: "main",
            root_inputs: &[("user", "User")],
        },
    ]
}

fn facts_at(workload: &Workload, rounds: usize) -> MemFacts {
    let mut facts = MemFacts::new();
    facts.add_input(
        workload.schema.root.name.clone(),
        workload.root_set,
        workload
            .root_inputs
            .iter()
            .map(|(name, class)| ((*name).to_string(), ObjectVal::text(*class, "v")))
            .collect(),
    );
    for _ in 0..rounds {
        if !advance(&workload.schema, &mut facts) {
            break;
        }
    }
    facts
}

/// Task ids satisfiable in `after` but not in `before`.
fn newly_satisfied(plan: &Plan, before: &MemFacts, after: &MemFacts) -> Vec<TaskId> {
    (1..plan.tasks.len() as u32)
        .filter(|&id| {
            plan_eval::eval_task_inputs(plan, id, &PlanMemFacts(after)).is_some()
                && plan_eval::eval_task_inputs(plan, id, &PlanMemFacts(before)).is_none()
        })
        .collect()
}

/// Verifies the reverse-edge seeding is complete: for every producer,
/// committing its first declared outcome enables only tasks on the
/// seeded agenda.
fn assert_worklist_covers(workload: &Workload, facts: &MemFacts) {
    let plan = &workload.plan;
    for (scope_path, task) in all_tasks(&workload.schema) {
        let path = format!("{scope_path}/{}", task.name);
        let Some(task_id) = plan.task_by_path(&path) else {
            continue;
        };
        let class = workload.schema.task_class(&task.class).expect("class");
        let Some(outcome) = class.outputs.iter().find(|o| o.kind == OutputKind::Outcome) else {
            continue;
        };
        if facts.output_fact(&path, &outcome.name).is_some() {
            continue;
        }
        let mut after = facts.clone();
        after.add_output(path.clone(), outcome.name.clone(), happy_objects(outcome));
        let enabled = newly_satisfied(plan, facts, &after);
        let mut worklist = Worklist::new();
        worklist.seed_commit(plan, task_id);
        let seeded: Vec<TaskId> = std::iter::from_fn(|| worklist.pop_start()).collect();
        for id in enabled {
            assert!(
                seeded.contains(&id),
                "{}: committing {path} enables task {} but the worklist never seeds it",
                workload.label,
                plan.str(plan.task(id).path)
            );
        }
    }
}

fn dispatch(c: &mut Criterion) {
    let mut impact: Vec<ComparisonRow> = Vec::new();
    for workload in workloads() {
        let mut group = c.benchmark_group(format!("plan_dispatch/{}", workload.label));
        for (stage, rounds) in [("mid_run", 1), ("end_of_run", 16)] {
            let facts = facts_at(&workload, rounds);
            let plan_facts = PlanMemFacts(&facts);
            // The full-scan evaluators must agree before we time them,
            // and the worklist seeding must cover every enablement.
            assert_eq!(
                scan_schema(&workload.schema, &facts),
                scan_plan(&workload.plan, &plan_facts),
                "schema and plan scans disagree on {}/{stage}",
                workload.label
            );
            assert_worklist_covers(&workload, &facts);
            // Per-commit re-evaluation: one round over every producer,
            // as the coordinator would after each commit in turn.
            let producers: Vec<TaskId> = (1..workload.plan.tasks.len() as TaskId).collect();
            group.bench_with_input(BenchmarkId::new("schema_map", stage), &facts, |b, facts| {
                b.iter(|| scan_schema(&workload.schema, facts))
            });
            group.bench_with_input(
                BenchmarkId::new("compiled_plan", stage),
                &facts,
                |b, facts| b.iter(|| scan_plan(&workload.plan, &PlanMemFacts(facts))),
            );
            // One per-commit re-evaluation per iteration (the changed
            // task rotates), directly comparable to one full scan.
            let rotor = std::cell::Cell::new(0usize);
            group.bench_with_input(BenchmarkId::new("worklist", stage), &facts, |b, facts| {
                b.iter(|| {
                    let i = rotor.get();
                    rotor.set(i + 1);
                    let changed = producers[i % producers.len()];
                    scan_worklist(&workload.plan, changed, &PlanMemFacts(facts))
                })
            });
            // The impact table compares per-commit work directly:
            // full plan scan vs worklist re-evaluation for one commit
            // (averaged over every possible changed task).
            let full_ns = report::median_ns(15, 8, || {
                std::hint::black_box(scan_plan(&workload.plan, &PlanMemFacts(&facts)));
            });
            let worklist_ns = report::median_ns(15, 8, || {
                let total: usize = producers
                    .iter()
                    .map(|&p| scan_worklist(&workload.plan, p, &PlanMemFacts(&facts)))
                    .sum();
                std::hint::black_box(total);
            }) / producers.len() as f64;
            impact.push(ComparisonRow {
                workload: format!("{}/{stage}", workload.label),
                baseline_ns: full_ns,
                candidate_ns: worklist_ns,
            });
        }
        group.finish();
    }
    for row in &impact {
        assert!(
            row.speedup() > 1.0,
            "worklist re-evaluation must beat the full plan scan on {}: {:.0}ns vs {:.0}ns",
            row.workload,
            row.baseline_ns,
            row.candidate_ns
        );
    }
    let path = report::write_comparison_csv(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/plan_dispatch_impact.csv"
        ),
        "full_plan_scan",
        "worklist",
        &impact,
    )
    .expect("impact table written");
    println!("impact table: {}", path.display());
}

/// The `sharded` variant: instance ownership split across 1/2/4/8
/// coordinator nodes, each wave 10 000 **concurrently in-flight**
/// instances of the Fig. 1 diamond (30 virtual seconds of work per
/// task, so the whole wave overlaps). One measured wall-clock run per
/// shard count feeds the shards-vs-throughput CSV; a smaller
/// criterion-timed wave tracks the trend per run.
fn sharded(c: &mut Criterion) {
    let wave = 10_000usize;
    let mut rows: Vec<ThroughputRow> = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let mut sys = sharded_diamond_system(9, shards, 4);
        let completed = run_instance_wave(&mut sys, wave);
        let wall = start.elapsed();
        assert_eq!(completed, wave, "{shards} shards: wave must complete");
        rows.push(ThroughputRow {
            workload: format!("{shards}_shards"),
            items: wave as u64,
            wall_ns: wall.as_nanos() as f64,
        });
    }
    for row in &rows {
        println!(
            "plan_dispatch/sharded {}: {} instances in {:.0}ms ({:.0}/s)",
            row.workload,
            row.items,
            row.wall_ns / 1e6,
            row.per_second()
        );
    }
    let path = report::write_throughput_csv(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/sharding_impact.csv"
        ),
        "instances",
        &rows,
    )
    .expect("throughput table written");
    println!("shards-vs-throughput table: {}", path.display());

    let mut group = c.benchmark_group("plan_dispatch/sharded");
    group.sample_size(2);
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(
            BenchmarkId::new("wave_512", format!("{shards}_shards")),
            |b| {
                b.iter(|| {
                    let mut sys = sharded_diamond_system(9, shards, 4);
                    assert_eq!(run_instance_wave(&mut sys, 512), 512);
                })
            },
        );
    }
    group.finish();
}

/// The `rebalance` variant: growing a 2-shard fleet to 3 while a
/// 10 000-instance diamond wave is live. Ten virtual seconds into the
/// wave — every instance mid-execution — a third coordinator is added
/// and every instance the epoch-bumped map reassigns is moved by the
/// batched 2PC hand-off. The wave must still complete **losslessly**
/// (every instance reaches its outcome; every move counted exactly
/// once), and the cost of a move is the per-instance *pause*: the
/// wall-clock from hand-off intent to destination adoption, during
/// which that instance accepts no new work. Max/mean/total pause and
/// the whole-wave wall land in `rebalance_impact.csv`.
fn rebalance(c: &mut Criterion) {
    let wave = 10_000usize;
    let start = Instant::now();
    let mut sys = sharded_diamond_system(9, 2, 4);
    start_instance_wave(&mut sys, wave);
    sys.run_until(SimTime::from_nanos(10_000_000_000));
    let report = sys
        .add_coordinator("coordinator2")
        .expect("live rebalance under load");
    sys.run();
    let wall = start.elapsed();
    assert_eq!(
        completed_wave(&sys, wave),
        wave,
        "no outcome may be lost to the rebalance"
    );
    assert!(report.moved > 0, "the new shard must take over instances");
    assert_eq!(report.epoch, 2, "one membership change after epoch 1");
    assert_eq!(
        sys.stats().handoffs,
        report.moved as u64,
        "every move committed exactly once"
    );
    assert_eq!(
        sys.stats().forward_loops,
        0,
        "a clean rebalance must not trip the loop guard"
    );

    let total_pause: u64 = report.pause_ns.iter().sum();
    let rows = vec![
        ThroughputRow {
            workload: "add_shard_2to3/max_pause".into(),
            items: 1,
            wall_ns: report.max_pause_ns() as f64,
        },
        ThroughputRow {
            workload: "add_shard_2to3/mean_pause".into(),
            items: 1,
            wall_ns: total_pause as f64 / report.moved.max(1) as f64,
        },
        ThroughputRow {
            workload: "add_shard_2to3/all_moves".into(),
            items: report.moved as u64,
            wall_ns: total_pause as f64,
        },
        ThroughputRow {
            workload: format!("add_shard_2to3/wave_{wave}"),
            items: wave as u64,
            wall_ns: wall.as_nanos() as f64,
        },
    ];
    for row in &rows {
        println!(
            "plan_dispatch/rebalance {}: {} moves/instances in {:.3}ms",
            row.workload,
            row.items,
            row.wall_ns / 1e6
        );
    }
    let path = report::write_throughput_csv(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/rebalance_impact.csv"
        ),
        "moves",
        &rows,
    )
    .expect("rebalance table written");
    println!("rebalance impact table: {}", path.display());

    let mut group = c.benchmark_group("plan_dispatch/rebalance");
    group.sample_size(2);
    group.bench_function(BenchmarkId::new("wave_512", "add_shard_2to3"), |b| {
        b.iter(|| {
            let mut sys = sharded_diamond_system(9, 2, 4);
            start_instance_wave(&mut sys, 512);
            sys.run_until(SimTime::from_nanos(10_000_000_000));
            let report = sys.add_coordinator("coordinator2").expect("rebalance");
            sys.run();
            assert_eq!(completed_wave(&sys, 512), 512);
            std::hint::black_box(report.moved)
        })
    });
    group.finish();
}

/// The `drain` variant: the elastic fleet shrinking under load. Ten
/// virtual seconds into a 10 000-instance diamond wave on 3 shards,
/// one coordinator is drained and removed: its whole live population
/// moves to the survivors in batched 2PC rounds (one intent batch, one
/// prepared id range, one atomic decision frame per round) before the
/// node leaves the map. The wave must complete losslessly, and the
/// batching must amortize — strictly fewer prepare rounds than moved
/// instances. Max/mean per-round pause and the whole-wave wall land in
/// `drain_impact.csv`.
fn drain(c: &mut Criterion) {
    let wave = 10_000usize;
    let start = Instant::now();
    let mut sys = sharded_diamond_system(9, 3, 4);
    start_instance_wave(&mut sys, wave);
    sys.run_until(SimTime::from_nanos(10_000_000_000));
    let report = sys
        .remove_coordinator("coordinator1")
        .expect("live drain under load");
    sys.run();
    let wall = start.elapsed();
    assert_eq!(
        completed_wave(&sys, wave),
        wave,
        "no outcome may be lost to the drain"
    );
    assert!(report.moved > 0, "the drained shard must have had work");
    assert!(
        report.rounds < report.moved,
        "batching must amortize: {} prepare rounds for {} instances",
        report.rounds,
        report.moved
    );
    assert_eq!(
        sys.stats().handoffs,
        report.moved as u64,
        "every move committed exactly once"
    );
    assert_eq!(
        sys.stats().forward_loops,
        0,
        "a clean drain must not trip the loop guard"
    );

    let total_pause: u64 = report.pause_ns.iter().sum();
    let rows = vec![
        ThroughputRow {
            workload: "remove_shard_3to2/max_pause".into(),
            items: 1,
            wall_ns: report.max_pause_ns() as f64,
        },
        ThroughputRow {
            workload: "remove_shard_3to2/mean_pause".into(),
            items: 1,
            wall_ns: total_pause as f64 / report.rounds.max(1) as f64,
        },
        ThroughputRow {
            workload: format!("remove_shard_3to2/rounds_{}", report.rounds),
            items: report.moved as u64,
            wall_ns: total_pause as f64,
        },
        ThroughputRow {
            workload: format!("remove_shard_3to2/wave_{wave}"),
            items: wave as u64,
            wall_ns: wall.as_nanos() as f64,
        },
    ];
    for row in &rows {
        println!(
            "plan_dispatch/drain {}: {} moves/instances in {:.3}ms",
            row.workload,
            row.items,
            row.wall_ns / 1e6
        );
    }
    let path = report::write_throughput_csv(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/drain_impact.csv"),
        "moves",
        &rows,
    )
    .expect("drain table written");
    println!("drain impact table: {}", path.display());

    let mut group = c.benchmark_group("plan_dispatch/drain");
    group.sample_size(2);
    group.bench_function(BenchmarkId::new("wave_512", "remove_shard_3to2"), |b| {
        b.iter(|| {
            let mut sys = sharded_diamond_system(9, 3, 4);
            start_instance_wave(&mut sys, 512);
            sys.run_until(SimTime::from_nanos(10_000_000_000));
            let report = sys.remove_coordinator("coordinator1").expect("drain");
            sys.run();
            assert_eq!(completed_wave(&sys, 512), 512);
            std::hint::black_box(report.moved)
        })
    });
    group.finish();
}

/// The `batched` variant: the same 10 000-instance diamond wave per
/// shard count on a **durable file-backed WAL** (every frame is an
/// `fdatasync`ed write), group-commit batching off vs on. Every task
/// takes 30 virtual seconds, so thousands of `Done` reports land in
/// the same simulated instant; the unbatched arm pays one synced frame
/// per commit (~10 per instance), the batched arm coalesces whole
/// drains into shared lock passes and single `GroupCommit` frames. The
/// batched arm widens the window to 20 virtual ms — the classic group
/// commit trade: bounded virtual-time commit latency bought for an
/// order of magnitude fewer log syncs. One measured wall-clock run per
/// arm feeds `batching_impact.csv`; the batched pipeline must clear 2x
/// the unbatched throughput at 4 shards.
fn batched(c: &mut Criterion) {
    let wave = 10_000usize;
    let arms = [
        ("unbatched", CommitBatch::disabled()),
        (
            "batched",
            CommitBatch {
                max_events: 256,
                max_window: SimDuration::from_millis(20),
            },
        ),
    ];
    let wal_dir = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/batched_wal"
    ));
    let mut rows: Vec<ThroughputRow> = Vec::new();
    let mut per_s: BTreeMap<String, f64> = BTreeMap::new();
    for shards in [1usize, 2, 4, 8] {
        for (label, batch) in arms {
            let start = Instant::now();
            let mut sys = durable_diamond_system(9, shards, 4, batch, wal_dir);
            let completed = run_instance_wave(&mut sys, wave);
            let wall = start.elapsed();
            assert_eq!(
                completed, wave,
                "{shards} shards/{label}: wave must complete"
            );
            let row = ThroughputRow {
                workload: format!("{shards}_shards_{label}"),
                items: wave as u64,
                wall_ns: wall.as_nanos() as f64,
            };
            per_s.insert(row.workload.clone(), row.per_second());
            rows.push(row);
        }
    }
    for row in &rows {
        println!(
            "plan_dispatch/batched {}: {} instances in {:.0}ms ({:.0}/s)",
            row.workload,
            row.items,
            row.wall_ns / 1e6,
            row.per_second()
        );
    }
    // The adaptive-window arm: same batched pipeline, but the window
    // auto-narrows to 1 virtual ms when report arrivals are sparse and
    // re-widens to the full 20ms under bursts. On this wave the
    // arrivals *are* bursty, so auto-tuning must not give back the
    // group-commit win (same 2x-over-unbatched bar, asserted below).
    {
        let start = Instant::now();
        let mut sys = adaptive_durable_diamond_system(
            9,
            4,
            4,
            CommitBatch {
                max_events: 256,
                max_window: SimDuration::from_millis(20),
            },
            SimDuration::from_millis(1),
            wal_dir,
        );
        let completed = run_instance_wave(&mut sys, wave);
        let wall = start.elapsed();
        assert_eq!(completed, wave, "4 shards/adaptive: wave must complete");
        let row = ThroughputRow {
            workload: "4_shards_adaptive".into(),
            items: wave as u64,
            wall_ns: wall.as_nanos() as f64,
        };
        println!(
            "plan_dispatch/batched {}: {} instances in {:.0}ms ({:.0}/s)",
            row.workload,
            row.items,
            row.wall_ns / 1e6,
            row.per_second()
        );
        per_s.insert(row.workload.clone(), row.per_second());
        rows.push(row);
    }
    let baseline = per_s["4_shards_unbatched"];
    let candidate = per_s["4_shards_batched"];
    assert!(
        candidate >= 2.0 * baseline,
        "group commit must clear 2x unbatched throughput at 4 shards: \
         {baseline:.0}/s unbatched vs {candidate:.0}/s batched ({:.2}x)",
        candidate / baseline
    );
    let adaptive = per_s["4_shards_adaptive"];
    assert!(
        adaptive >= 2.0 * baseline,
        "the adaptive window must keep the group-commit win at 4 shards: \
         {baseline:.0}/s unbatched vs {adaptive:.0}/s adaptive ({:.2}x)",
        adaptive / baseline
    );
    let path = report::write_throughput_csv(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/batching_impact.csv"
        ),
        "instances",
        &rows,
    )
    .expect("throughput table written");
    println!("batching-vs-throughput table: {}", path.display());

    let mut group = c.benchmark_group("plan_dispatch/batched");
    group.sample_size(2);
    for (label, batch) in arms {
        group.bench_function(BenchmarkId::new("wave_512", label), |b| {
            b.iter(|| {
                let mut sys = durable_diamond_system(9, 4, 4, batch, wal_dir);
                assert_eq!(run_instance_wave(&mut sys, 512), 512);
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(wal_dir);
}

/// The `scheduled` variant: skewed task durations (one 400ms worker,
/// five 50ms workers per instance) on 4 **serial** executors, under
/// the legacy path-hash dispatch vs the load-aware scheduler. The
/// comparison is made in deterministic *virtual* time — the makespan
/// of the whole wave — because that is exactly what executor queueing
/// under a bad placement costs; wall-clock criterion samples track the
/// simulation overhead trend per run. A `scheduling_impact.csv`
/// comparison table (hash vs scheduled per wave size) lands next to
/// the other impact artifacts.
fn scheduled(c: &mut Criterion) {
    let mut impact: Vec<ComparisonRow> = Vec::new();
    for wave in [64usize, 256] {
        let mut hash_sys = skewed_fan_system(7, 4, SchedPolicy::PathHash);
        let hash_makespan = run_skew_wave(&mut hash_sys, wave);
        let mut sched_sys = skewed_fan_system(7, 4, SchedPolicy::LeastLoaded);
        let sched_makespan = run_skew_wave(&mut sched_sys, wave);
        println!(
            "plan_dispatch/scheduled wave_{wave}: path_hash {:.0}ms vs scheduled {:.0}ms virtual \
             makespan ({:.1} vs {:.1} instances/virtual-s)",
            hash_makespan.as_nanos() as f64 / 1e6,
            sched_makespan.as_nanos() as f64 / 1e6,
            wave as f64 * 1e9 / hash_makespan.as_nanos() as f64,
            wave as f64 * 1e9 / sched_makespan.as_nanos() as f64,
        );
        impact.push(ComparisonRow {
            workload: format!("skewed_fan/wave_{wave}"),
            baseline_ns: hash_makespan.as_nanos() as f64,
            candidate_ns: sched_makespan.as_nanos() as f64,
        });
    }
    for row in &impact {
        assert!(
            row.speedup() > 1.0,
            "the load-aware scheduler must beat the hash baseline on {}: {:.0}ms vs {:.0}ms",
            row.workload,
            row.baseline_ns / 1e6,
            row.candidate_ns / 1e6
        );
    }
    let path = report::write_comparison_csv(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/scheduling_impact.csv"
        ),
        "path_hash",
        "scheduled",
        &impact,
    )
    .expect("impact table written");
    println!("scheduling impact table: {}", path.display());

    let mut group = c.benchmark_group("plan_dispatch/scheduled");
    group.sample_size(2);
    for policy in [SchedPolicy::PathHash, SchedPolicy::LeastLoaded] {
        group.bench_function(BenchmarkId::new("wave_64", format!("{policy:?}")), |b| {
            b.iter(|| {
                let mut sys = skewed_fan_system(7, 4, policy);
                std::hint::black_box(run_skew_wave(&mut sys, 64));
            })
        });
    }
    group.finish();
}

/// The `adaptive` variant: the adaptive scheduling stack measured in
/// deterministic virtual time on the probe→liar chain (two tasks
/// sharing one 400ms implementation; the probe declares 400ms
/// honestly, the liar declares 1ms):
///
/// - **declared_hints** — `cost_feedback` off. The liar's watchdog is
///   `base + 1ms`, which can never fit the real 400ms execution: every
///   attempt times out, relocates and retries until the attempt budget
///   strands the instance stuck, and each timed-out attempt leaves a
///   zombie execution occupying a serial executor lane. That churn is
///   the cost of a wrong static hint — wasted executor time *and* lost
///   outcomes.
/// - **ewma_feedback** — the per-code cost model learns the real 400ms
///   from the probe's completion before the liar ever dispatches, so
///   its watchdog stretches to cover the observed duration: the whole
///   wave completes with zero retries and a ≥1.3x virtual-makespan win
///   (asserted).
/// - **ewma_admitted** — same feedback arm, plus
///   `max_inflight_instances` capping the shard at half the wave (2x
///   admission overload) with queue depth 0: excess starts get a typed
///   `Busy` and retry with virtual-time backoff. The cap must cost
///   little makespan (≤1.25x the uncapped arm, asserted) and lose
///   **zero** outcomes while bounding the live set.
///
/// The declared-vs-feedback and capped-vs-uncapped comparisons land in
/// `adaptive_sched_impact.csv`.
fn adaptive(c: &mut Criterion) {
    let wave = 32usize;

    let mut declared_sys = feedback_chain_system(11, false, None);
    let (declared_makespan, declared_done) = run_lying_wave(&mut declared_sys, wave);
    assert!(
        declared_done < wave,
        "the declared-hints arm must strand lying instances ({declared_done}/{wave} completed)"
    );
    assert!(
        declared_sys.stats().retries > 0,
        "lying hints must burn retries"
    );

    let mut ewma_sys = feedback_chain_system(11, true, None);
    let (ewma_makespan, ewma_done) = run_lying_wave(&mut ewma_sys, wave);
    assert_eq!(ewma_done, wave, "the feedback arm must complete the wave");
    assert_eq!(
        ewma_sys.stats().retries,
        0,
        "learned watchdogs must not retry"
    );

    let cap = wave / 2;
    let mut admitted_sys = feedback_chain_system(11, true, Some(cap));
    let rejections = start_admitted_wave(&mut admitted_sys, wave, SimDuration::from_millis(100));
    admitted_sys.run();
    let admitted_makespan = admitted_sys.now().since(SimTime::ZERO);
    assert!(rejections > 0, "a 2x-overload wave must see Busy");
    assert_eq!(admitted_sys.stats().busy_rejections, rejections);
    for i in 0..wave {
        assert!(
            admitted_sys.outcome(&format!("wave-{i}")).is_some(),
            "admission control lost wave-{i}"
        );
    }

    let impact = vec![
        ComparisonRow {
            workload: format!("lying_chain/wave_{wave}"),
            baseline_ns: declared_makespan.as_nanos() as f64,
            candidate_ns: ewma_makespan.as_nanos() as f64,
        },
        ComparisonRow {
            workload: format!("lying_chain/admitted_cap{cap}_wave_{wave}"),
            baseline_ns: ewma_makespan.as_nanos() as f64,
            candidate_ns: admitted_makespan.as_nanos() as f64,
        },
    ];
    println!(
        "plan_dispatch/adaptive wave_{wave}: declared {:.0}ms ({declared_done}/{wave} completed, \
         {} retries) vs ewma {:.0}ms ({ewma_done}/{wave}, 0 retries): {:.2}x",
        declared_makespan.as_nanos() as f64 / 1e6,
        declared_sys.stats().retries,
        ewma_makespan.as_nanos() as f64 / 1e6,
        impact[0].speedup()
    );
    println!(
        "plan_dispatch/adaptive admitted cap {cap}: {:.0}ms, {rejections} Busy retried, \
         0 outcomes lost",
        admitted_makespan.as_nanos() as f64 / 1e6
    );
    assert!(
        impact[0].speedup() >= 1.3,
        "observed-duration feedback must win >=1.3x virtual makespan on the lying chain: \
         declared {:.0}ms vs ewma {:.0}ms",
        declared_makespan.as_nanos() as f64 / 1e6,
        ewma_makespan.as_nanos() as f64 / 1e6
    );
    assert!(
        admitted_makespan.as_nanos() as f64 <= ewma_makespan.as_nanos() as f64 * 1.25,
        "the admission cap must cost little makespan: capped {:.0}ms vs uncapped {:.0}ms",
        admitted_makespan.as_nanos() as f64 / 1e6,
        ewma_makespan.as_nanos() as f64 / 1e6
    );
    let path = report::write_comparison_csv(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/adaptive_sched_impact.csv"
        ),
        "declared_hints",
        "ewma_feedback",
        &impact,
    )
    .expect("impact table written");
    println!("adaptive scheduling impact table: {}", path.display());

    let mut group = c.benchmark_group("plan_dispatch/adaptive");
    group.sample_size(2);
    for (label, feedback) in [("declared_hints", false), ("ewma_feedback", true)] {
        group.bench_function(BenchmarkId::new("wave_8", label), |b| {
            b.iter(|| {
                let mut sys = feedback_chain_system(11, feedback, None);
                std::hint::black_box(run_lying_wave(&mut sys, 8))
            })
        });
    }
    group.finish();
}

/// The `fact_reads` variant: per-commit readiness evaluation over a
/// real transactional store, whole-record fact layout vs per-object
/// sub-keys. Wide fan-in joins (a consumer taking one object from each
/// of `width` producers whose facts carry `objects` objects apiece) are
/// where wholesale record decoding hurts the most: the baseline decodes
/// `objects` values per probe to use one, the per-object layout point
/// reads exactly the bytes it needs. A high-degree repeat loop (an
/// `AnyOf` consumer over a producer that rewrote its fat repeat fact 64
/// times) covers the repeat-probe path. The whole-record/per-object
/// comparison lands in `fact_reads_impact.csv`; the wide fan-in rows
/// must show at least a 1.5× per-commit evaluation speedup.
fn fact_reads(c: &mut Criterion) {
    /// Builds a store holding one instance's facts for `plan` under the
    /// chosen layout: the given root input binding plus `objects` per
    /// producer output fact (rewritten `rewrites` times, as a repeat
    /// loop would), each object carrying a 64-byte payload.
    fn populate(
        plan: &Plan,
        root_inputs: &BTreeMap<String, ObjectVal>,
        producers: &[(TaskId, &str)],
        objects: usize,
        rewrites: usize,
        whole: bool,
    ) -> (TxManager, InstanceKeys) {
        let mut mgr = TxManager::in_memory();
        let keys = InstanceKeys::build(plan, "bench", 0);
        let root_in = keys.in_key(plan, 0, "main").expect("root set");
        let action = mgr.begin();
        engine_facts::write_fact_map(&mut mgr, &action, plan, root_in, root_inputs, whole)
            .expect("root input");
        for &(task, output) in producers {
            let out = keys.out_key(plan, task, output).expect("declared output");
            for round in 0..rewrites.max(1) {
                let fact: BTreeMap<String, ObjectVal> = (0..objects)
                    .map(|j| {
                        (
                            format!("o{j}"),
                            ObjectVal::new("Data", vec![(round + j) as u8; 64]),
                        )
                    })
                    .collect();
                engine_facts::write_fact_map(&mut mgr, &action, plan, out, &fact, whole)
                    .expect("producer output");
            }
        }
        mgr.commit(action).expect("population commits");
        (mgr, keys)
    }

    let mut impact: Vec<ComparisonRow> = Vec::new();
    let mut group = c.benchmark_group("plan_dispatch/fact_reads");

    // Wide fan-in joins.
    for (width, objects) in [(16usize, 8usize), (32, 16)] {
        let schema = compile_source(&fat_fan_source(width, objects), "root").unwrap();
        let plan = Plan::lower(&schema);
        let join = plan.task_by_path("root/join").unwrap();
        let producers: Vec<(TaskId, String)> = (0..width)
            .map(|i| {
                (
                    plan.task_by_path(&format!("root/w{i}")).unwrap(),
                    "done".to_string(),
                )
            })
            .collect();
        let producers: Vec<(TaskId, &str)> = producers
            .iter()
            .map(|(task, output)| (*task, output.as_str()))
            .collect();
        let seed: BTreeMap<String, ObjectVal> =
            [("seed".to_string(), ObjectVal::new("Data", vec![7u8; 64]))].into();
        let (whole_mgr, whole_keys) = populate(&plan, &seed, &producers, objects, 1, true);
        let (po_mgr, po_keys) = populate(&plan, &seed, &producers, objects, 1, false);
        // Both layouts must agree on the evaluation before timing.
        let whole_eval = plan_eval::eval_task_inputs(
            &plan,
            join,
            &StoreFacts::new(&whole_mgr, &whole_keys, true),
        )
        .expect("join satisfiable");
        let po_eval =
            plan_eval::eval_task_inputs(&plan, join, &StoreFacts::new(&po_mgr, &po_keys, false))
                .expect("join satisfiable");
        assert_eq!(
            whole_eval, po_eval,
            "layouts disagree on w{width}x{objects}"
        );
        let label = format!("w{width}x{objects}");
        group.bench_function(BenchmarkId::new("whole_record", &label), |b| {
            b.iter(|| {
                let facts = StoreFacts::new(&whole_mgr, &whole_keys, true);
                std::hint::black_box(plan_eval::eval_task_inputs(&plan, join, &facts))
            })
        });
        group.bench_function(BenchmarkId::new("per_object", &label), |b| {
            b.iter(|| {
                let facts = StoreFacts::new(&po_mgr, &po_keys, false);
                std::hint::black_box(plan_eval::eval_task_inputs(&plan, join, &facts))
            })
        });
        let baseline_ns = report::median_ns(15, 32, || {
            let facts = StoreFacts::new(&whole_mgr, &whole_keys, true);
            std::hint::black_box(plan_eval::eval_task_inputs(&plan, join, &facts));
        });
        let candidate_ns = report::median_ns(15, 32, || {
            let facts = StoreFacts::new(&po_mgr, &po_keys, false);
            std::hint::black_box(plan_eval::eval_task_inputs(&plan, join, &facts));
        });
        impact.push(ComparisonRow {
            workload: format!("wide_fan/{label}"),
            baseline_ns,
            candidate_ns,
        });
    }

    // High-degree repeat loop, mid-iteration: the producer's fat
    // `again` fact has been rewritten 64 times and its `done` fact is
    // still absent, so the consumer's probe misses and falls back to
    // one object of the fat root input binding.
    {
        let objects = 16usize;
        let schema = compile_source(&repeat_probe_source(objects), "root").unwrap();
        let plan = Plan::lower(&schema);
        let producer = plan.task_by_path("root/t").unwrap();
        let consumer = plan.task_by_path("root/c").unwrap();
        let producers = [(producer, "again")];
        let root_inputs: BTreeMap<String, ObjectVal> = (0..objects)
            .map(|j| (format!("s{j}"), ObjectVal::new("Data", vec![j as u8; 64])))
            .collect();
        let (whole_mgr, whole_keys) = populate(&plan, &root_inputs, &producers, 1, 64, true);
        let (po_mgr, po_keys) = populate(&plan, &root_inputs, &producers, 1, 64, false);
        let whole_eval = plan_eval::eval_task_inputs(
            &plan,
            consumer,
            &StoreFacts::new(&whole_mgr, &whole_keys, true),
        )
        .expect("consumer satisfiable via the root-input fallback");
        let po_eval = plan_eval::eval_task_inputs(
            &plan,
            consumer,
            &StoreFacts::new(&po_mgr, &po_keys, false),
        )
        .expect("consumer satisfiable via the root-input fallback");
        assert_eq!(whole_eval, po_eval, "layouts disagree on the repeat probe");
        let baseline_ns = report::median_ns(15, 64, || {
            let facts = StoreFacts::new(&whole_mgr, &whole_keys, true);
            std::hint::black_box(plan_eval::eval_task_inputs(&plan, consumer, &facts));
        });
        let candidate_ns = report::median_ns(15, 64, || {
            let facts = StoreFacts::new(&po_mgr, &po_keys, false);
            std::hint::black_box(plan_eval::eval_task_inputs(&plan, consumer, &facts));
        });
        impact.push(ComparisonRow {
            workload: format!("repeat_loop/x{objects}r64"),
            baseline_ns,
            candidate_ns,
        });
    }
    group.finish();

    for row in &impact {
        println!(
            "plan_dispatch/fact_reads {}: whole_record {:.0}ns vs per_object {:.0}ns ({:.2}x)",
            row.workload,
            row.baseline_ns,
            row.candidate_ns,
            row.speedup()
        );
        if row.workload.starts_with("wide_fan/") {
            assert!(
                row.speedup() >= 1.5,
                "per-object reads must give >=1.5x per-commit evaluation on {}: \
                 {:.0}ns vs {:.0}ns",
                row.workload,
                row.baseline_ns,
                row.candidate_ns
            );
        } else {
            assert!(
                row.speedup() > 1.0,
                "per-object reads must not regress {}: {:.0}ns vs {:.0}ns",
                row.workload,
                row.baseline_ns,
                row.candidate_ns
            );
        }
    }
    let path = report::write_comparison_csv(
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/fact_reads_impact.csv"
        ),
        "whole_record",
        "per_object",
        &impact,
    )
    .expect("impact table written");
    println!("fact-reads impact table: {}", path.display());
}

/// The `obs_overhead` variant: the same 2-shard diamond wave with the
/// observability hooks Off, at Metrics, and at full Trace. The hooks
/// are the contract under test — `observe: Off` must stay within noise
/// of the pre-observability engine (the acceptance bound is ≤5% on this
/// bench, and Off *is* the engine's default), and even full tracing
/// must stay cheap because the recorder is a bounded ring of small
/// structs. The enabled-vs-disabled comparison lands in
/// `obs_overhead.csv`, and the Trace run's aggregated registry is
/// exported to `metrics_snapshot.json` (the artifact CI uploads).
fn obs_overhead(c: &mut Criterion) {
    let wave = 1024usize;
    let run_wave = |level: ObserveLevel| {
        let mut sys = flowscript_bench::observed_diamond_system(9, 2, 4, level);
        assert_eq!(run_instance_wave(&mut sys, wave), wave);
        sys
    };
    let time_level = |level: ObserveLevel| {
        report::median_ns(5, 1, || {
            std::hint::black_box(run_wave(level));
        })
    };
    let off_ns = time_level(ObserveLevel::Off);
    let metrics_ns = time_level(ObserveLevel::Metrics);
    let trace_ns = time_level(ObserveLevel::Trace);
    let impact = vec![
        ComparisonRow {
            workload: format!("diamond_wave_{wave}/metrics"),
            baseline_ns: off_ns,
            candidate_ns: metrics_ns,
        },
        ComparisonRow {
            workload: format!("diamond_wave_{wave}/trace"),
            baseline_ns: off_ns,
            candidate_ns: trace_ns,
        },
    ];
    for row in &impact {
        println!(
            "plan_dispatch/obs_overhead {}: off {:.1}ms vs enabled {:.1}ms ({:+.1}% overhead)",
            row.workload,
            row.baseline_ns / 1e6,
            row.candidate_ns / 1e6,
            (row.candidate_ns / row.baseline_ns - 1.0) * 100.0
        );
        // Full tracing must stay in the same cost class as Off; the
        // tighter 5% target applies to the *disabled* path, which is
        // the baseline itself here. A generous bound keeps wall-clock
        // jitter on shared CI runners from flaking the suite.
        assert!(
            row.candidate_ns <= row.baseline_ns * 1.30,
            "observability must be cheap on {}: off {:.0}ms vs enabled {:.0}ms",
            row.workload,
            row.baseline_ns / 1e6,
            row.candidate_ns / 1e6
        );
    }
    let path = report::write_comparison_csv(
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/obs_overhead.csv"),
        "observe_off",
        "observe_enabled",
        &impact,
    )
    .expect("overhead table written");
    println!("observability overhead table: {}", path.display());

    // Export the Trace run's aggregated registry for the CI artifact.
    let sys = run_wave(ObserveLevel::Trace);
    let snapshot_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/metrics_snapshot.json"
    );
    std::fs::write(snapshot_path, sys.metrics_snapshot().to_json())
        .expect("metrics snapshot written");
    println!("metrics snapshot: {snapshot_path}");

    let mut group = c.benchmark_group("plan_dispatch/obs_overhead");
    group.sample_size(2);
    for (label, level) in [("off", ObserveLevel::Off), ("trace", ObserveLevel::Trace)] {
        group.bench_function(BenchmarkId::new("wave_256", label), |b| {
            b.iter(|| {
                let mut sys = flowscript_bench::observed_diamond_system(9, 2, 4, level);
                assert_eq!(run_instance_wave(&mut sys, 256), 256);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    dispatch,
    sharded,
    rebalance,
    drain,
    batched,
    scheduled,
    adaptive,
    fact_reads,
    obs_overhead
);
criterion_main!(benches);
