//! F8 — Fig. 8 / §5.3: tripReservation — the compound repeat loop.
//!
//! The series sweeps the number of hotel failures (0, 1, 2, 4): each
//! failure adds one compensation + one scope reset + one re-execution of
//! the businessReservation subtree, so cost should grow roughly linearly
//! in the repeat count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowscript_bench as wl;

fn trip_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8/repeat_loop");
    group.sample_size(15);
    for failures in [0u32, 1, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(failures),
            &failures,
            |b, &failures| {
                let mut counter = u64::from(failures) * 1000;
                b.iter(|| {
                    counter += 1;
                    let mut sys = wl::trip_system(counter, failures);
                    wl::run_trip(&mut sys, "t");
                    assert_eq!(sys.stats().repeats, u64::from(failures));
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, trip_loop);
criterion_main!(benches);
