//! F2 — Fig. 2: task anatomy — alternative input sets and alternative
//! sources.
//!
//! Measures (a) the input-set race between a data producer and a timer
//! (the paper's timeout idiom) and (b) readiness evaluation as the
//! number of alternative sources per slot grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowscript_bench as wl;
use flowscript_engine::{ObjectVal, TaskBehavior};
use flowscript_sim::SimDuration;

const TIMEOUT_SCRIPT: &str = r#"
class Data;
taskclass Slow {
    inputs { input main { seed of class Data } };
    outputs { outcome done { out of class Data } }
}
taskclass Timer {
    inputs { input main { seed of class Data } };
    outputs { outcome fired { } }
}
taskclass Consumer {
    inputs {
        input main { in of class Data };
        input fallback { }
    };
    outputs { outcome fromData { }; outcome fromTimeout { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome viaData { }; outcome viaTimeout { } }
}
compoundtask root of taskclass Root {
    task slow of taskclass Slow {
        implementation { "code" is "refSlow" };
        inputs { input main { inputobject seed from { seed of task root if input main } } }
    };
    task timeout of taskclass Timer {
        implementation { "code" is "builtin:timer"; "duration_ms" is "100" };
        inputs { input main { inputobject seed from { seed of task root if input main } } }
    };
    task consumer of taskclass Consumer {
        implementation { "code" is "refConsumer" };
        inputs {
            input main { inputobject in from { out of task slow if output done } };
            input fallback { notification from { task timeout if output fired } }
        }
    };
    outputs {
        outcome viaData { notification from { task consumer if output fromData } };
        outcome viaTimeout { notification from { task consumer if output fromTimeout } }
    }
}
"#;

fn input_set_race(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/input_set_race");
    group.sample_size(15);
    for (label, slow_ms) in [("data_wins", 10u64), ("timer_wins", 10_000)] {
        group.bench_function(label, |b| {
            let mut counter = 0u64;
            b.iter(|| {
                counter += 1;
                let mut sys = wl::bench_system(counter, 2);
                sys.register_script("t", TIMEOUT_SCRIPT, "root").unwrap();
                sys.bind_fn("refSlow", move |_| {
                    TaskBehavior::outcome("done")
                        .with_work(SimDuration::from_millis(slow_ms))
                        .with_object("out", ObjectVal::text("Data", "d"))
                });
                sys.bind_fn("refConsumer", |ctx| {
                    if ctx.set == "main" {
                        TaskBehavior::outcome("fromData")
                    } else {
                        TaskBehavior::outcome("fromTimeout")
                    }
                });
                sys.start("i", "t", "main", [("seed", ObjectVal::text("Data", "s"))])
                    .unwrap();
                sys.run();
                let outcome = sys.outcome("i").unwrap();
                if slow_ms < 100 {
                    assert_eq!(outcome.name, "viaData");
                } else {
                    assert_eq!(outcome.name, "viaTimeout");
                }
            })
        });
    }
    group.finish();
}

fn alternative_sources(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/alternative_sources");
    group.sample_size(10);
    for k in [1usize, 4, 8] {
        let source = wl::alternatives_source(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut counter = 0u64;
            b.iter(|| {
                counter += 1;
                let mut sys = wl::bench_system(counter, 3);
                sys.register_script("alts", &source, "root").unwrap();
                wl::bind_alternatives(&sys, k, SimDuration::from_millis(3));
                sys.start(
                    "a",
                    "alts",
                    "main",
                    [("seed", ObjectVal::text("Data", "s"))],
                )
                .unwrap();
                sys.run();
                assert!(sys.outcome("a").is_some());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, input_set_race, alternative_sources);
criterion_main!(benches);
