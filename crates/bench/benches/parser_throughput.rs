//! A5 — ablation: front-end throughput vs script size.
//!
//! Parse, template-expand, check and compile generated scripts of
//! increasing size; throughput is reported in bytes so the series shows
//! the front end's scaling behaviour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flowscript_bench as wl;
use flowscript_core::schema::compile_source;
use flowscript_core::{parse, sema};

fn front_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser/front_end");
    for n in [10usize, 100, 500] {
        let source = wl::generated_script(n);
        group.throughput(Throughput::Bytes(source.len() as u64));

        group.bench_with_input(BenchmarkId::new("parse_only", n), &source, |b, source| {
            b.iter(|| parse(source).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parse_check", n), &source, |b, source| {
            b.iter(|| {
                let script = parse(source).unwrap();
                sema::check(&script).unwrap();
            })
        });
        group.bench_with_input(BenchmarkId::new("full_compile", n), &source, |b, source| {
            b.iter(|| compile_source(source, "root").unwrap())
        });
    }
    group.finish();
}

fn formatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser/formatter");
    let source = wl::generated_script(200);
    let script = parse(&source).unwrap();
    group.throughput(Throughput::Bytes(source.len() as u64));
    group.bench_function("format_200_tasks", |b| {
        b.iter(|| flowscript_core::fmt::format_script(&script))
    });
    group.finish();
}

criterion_group!(benches, front_end, formatter);
criterion_main!(benches);
