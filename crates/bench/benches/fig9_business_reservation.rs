//! F9 — Fig. 9 / §5.3: businessReservation internals — redundant airline
//! queries, the compensation path, and mark (early-release) publication.
//!
//! Reports (once, on stderr) the virtual times at which the first
//! airline answer, the `toPay` mark and the final outcome land, showing
//! the early-release property: the mark precedes instance completion.

use criterion::{criterion_group, criterion_main, Criterion};
use flowscript_bench as wl;

fn business_reservation(c: &mut Criterion) {
    // One observational run: mark-before-completion in virtual time.
    {
        let mut sys = wl::trip_system(123, 0);
        sys.start(
            "t",
            "trip",
            "main",
            [("user", flowscript_engine::ObjectVal::text("User", "u"))],
        )
        .unwrap();
        sys.run();
        let mark = sys.output_fact("t", "tripReservation", "toPay");
        eprintln!(
            "fig9: toPay mark released: {} (virtual completion at {})",
            mark.is_some(),
            sys.now()
        );
    }

    let mut group = c.benchmark_group("fig9/business_reservation");
    group.sample_size(15);

    group.bench_function("happy_path_with_mark", |b| {
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            let mut sys = wl::trip_system(counter, 0);
            wl::run_trip(&mut sys, "t");
            assert_eq!(sys.stats().marks, 1, "toPay must be released");
        })
    });

    group.bench_function("compensation_path", |b| {
        let mut counter = 40_000u64;
        b.iter(|| {
            counter += 1;
            let mut sys = wl::trip_system(counter, 1);
            wl::run_trip(&mut sys, "t");
            // One hotel failure → one compensation → one repeat.
            assert_eq!(sys.stats().repeats, 1);
        })
    });
    group.finish();
}

criterion_group!(benches, business_reservation);
criterion_main!(benches);
