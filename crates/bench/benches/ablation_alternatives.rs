//! A3 — ablation: redundant data sources.
//!
//! A consumer's input slot lists `k` alternative producers; all but one
//! fail. With `k = 1` (the failing producer is the only source) the
//! instance gets stuck; for `k > 1` the first available alternative is
//! used (§3: "the principal way of introducing redundant data sources").
//! The series shows the cost of carrying more alternatives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowscript_bench as wl;
use flowscript_engine::{InstanceStatus, ObjectVal};
use flowscript_sim::SimDuration;

fn run_alternatives(seed: u64, k: usize) -> InstanceStatus {
    let source = wl::alternatives_source(k);
    let mut sys = wl::bench_system(seed, 3);
    sys.register_script("alts", &source, "root").unwrap();
    wl::bind_alternatives(&sys, k, SimDuration::from_millis(3));
    sys.start(
        "a",
        "alts",
        "main",
        [("seed", ObjectVal::text("Data", "s"))],
    )
    .unwrap();
    sys.run();
    sys.status("a").unwrap()
}

fn run_all_failing(seed: u64, k: usize) -> InstanceStatus {
    // Every producer fails: no alternative helps; the consumer waits
    // forever and the engine reports Stuck.
    let source = wl::alternatives_source(k);
    let mut sys = wl::bench_system(seed, 3);
    sys.register_script("alts", &source, "root").unwrap();
    for i in 0..k {
        sys.bind_fn(&format!("refP{i}"), |_: &flowscript_engine::InvokeCtx| {
            flowscript_engine::TaskBehavior::outcome("failed")
        });
    }
    sys.bind_fn("refConsumer", |_: &flowscript_engine::InvokeCtx| {
        flowscript_engine::TaskBehavior::outcome("done")
    });
    sys.start(
        "a",
        "alts",
        "main",
        [("seed", ObjectVal::text("Data", "s"))],
    )
    .unwrap();
    sys.run();
    sys.status("a").unwrap()
}

fn alternatives(c: &mut Criterion) {
    // Availability report: with redundancy, the lone good producer is
    // found; without any good producer, the engine reports Stuck.
    for k in [1usize, 2, 4, 8] {
        let with_winner = matches!(run_alternatives(7, k), InstanceStatus::Completed(_));
        let all_failing = matches!(run_all_failing(7, k), InstanceStatus::Stuck { .. });
        eprintln!(
            "ablation_alternatives: k={k}: completes with one good source: {with_winner}; \
             stuck when all fail: {all_failing}"
        );
    }

    let mut group = c.benchmark_group("ablation/alternatives");
    group.sample_size(10);
    for k in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut counter = 0u64;
            b.iter(|| {
                counter += 1;
                let status = run_alternatives(counter, k);
                assert!(matches!(status, InstanceStatus::Completed(_)));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, alternatives);
criterion_main!(benches);
