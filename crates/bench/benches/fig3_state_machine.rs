//! F3 — Fig. 3: the task state machine.
//!
//! Micro-benchmarks of the lifecycle substrate every task transition
//! rides on: legal-transition checks, control-block transitions
//! (wait → execute → outcome, with repeat loops), and the codec
//! round-trip each persisted transition pays.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flowscript_engine::{CbState, TaskCb};

fn transitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/state_machine");
    group.bench_function("legality_check", |b| {
        let exec = CbState::Executing { set: "main".into() };
        let done = CbState::Done {
            outcome: "done".into(),
        };
        b.iter(|| {
            black_box(TaskCb::transition_allowed(
                black_box(&exec),
                black_box(&done),
            ))
        })
    });

    group.bench_function("full_lifecycle", |b| {
        b.iter(|| {
            let mut cb = TaskCb::new("bench/task");
            cb.transition(CbState::Executing { set: "main".into() });
            // A repeat re-entry (Fig. 3's Repeat1).
            cb.transition(CbState::Executing { set: "main".into() });
            cb.repeats += 1;
            cb.transition(CbState::Done {
                outcome: "ok".into(),
            });
            black_box(cb)
        })
    });

    group.bench_function("scope_reset", |b| {
        b.iter(|| {
            let mut cb = TaskCb::new("bench/task");
            cb.transition(CbState::Executing { set: "main".into() });
            cb.marks_emitted.push("m".into());
            cb.reset_for_incarnation(3);
            black_box(cb)
        })
    });

    group.bench_function("persisted_transition_codec", |b| {
        let cb = TaskCb {
            path: "order/dispatch".into(),
            state: CbState::Executing { set: "main".into() },
            incarnation: 2,
            scope_inc: 1,
            attempt: 1,
            marks_emitted: vec!["progress".into()],
            repeats: 1,
        };
        b.iter(|| {
            let bytes = flowscript_codec::to_bytes(black_box(&cb));
            let back: TaskCb = flowscript_codec::from_bytes(&bytes).unwrap();
            black_box(back)
        })
    });
    group.finish();
}

criterion_group!(benches, transitions);
criterion_main!(benches);
