//! A4 — ablation: dynamic reconfiguration latency vs instance size.
//!
//! Applies the paper's §2 add-a-task operation to running chains of
//! increasing size. The op is transactional (persisted + applied
//! atomically), so its cost includes the schema clone and the control
//! block write.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowscript_bench as wl;
use flowscript_engine::{ObjectVal, Reconfig, TaskBehavior, WorkflowSystem};

fn running_chain(seed: u64, n: usize, source: &str) -> WorkflowSystem {
    let mut sys = wl::bench_system(seed, 3);
    sys.register_script("chain", source, "root").unwrap();
    wl::bind_chain(&sys, n);
    sys.bind_fn("refExtra", |_: &flowscript_engine::InvokeCtx| {
        TaskBehavior::outcome("done").with_object("out", ObjectVal::text("Data", "x"))
    });
    sys.start(
        "c",
        "chain",
        "main",
        [("seed", ObjectVal::text("Data", "s"))],
    )
    .unwrap();
    sys
}

const ADDED_TASK: &str = r#"
    task extra of taskclass Stage {
        implementation { "code" is "refExtra" };
        inputs { input main { inputobject in from { out of task s0 if output done } } }
    }
"#;

fn reconfig(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/reconfig_add_task");
    group.sample_size(10);
    for n in [10usize, 50, 200] {
        let source = wl::chain_source(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut counter = 0u64;
            b.iter_batched(
                || {
                    counter += 1;
                    running_chain(counter, n, &source)
                },
                |mut sys| {
                    sys.reconfigure(
                        "c",
                        Reconfig::AddTask {
                            scope_path: "root".into(),
                            task_source: ADDED_TASK.into(),
                        },
                    )
                    .expect("reconfig applies");
                    sys
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn rebind(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/reconfig_rebind");
    group.sample_size(10);
    let source = wl::chain_source(20);
    group.bench_function("rebind_on_chain_20", |b| {
        let mut counter = 50_000u64;
        b.iter_batched(
            || {
                counter += 1;
                running_chain(counter, 20, &source)
            },
            |mut sys| {
                sys.reconfigure(
                    "c",
                    Reconfig::Rebind {
                        code: "ref10".into(),
                        to: "refExtra".into(),
                    },
                )
                .expect("rebind applies");
                sys
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, reconfig, rebind);
criterion_main!(benches);
