//! P1 — plan lowering: the compile-once cost of the execution-plan IR.
//!
//! Measures the three stages a repository registration pays: the full
//! front end (parse → templates → sema → schema), the schema → plan
//! lowering, and the plan's binary codec round-trip (what persisting
//! through the WAL or serving over RPC costs). Lowering and codec cost
//! are paid once per version; every instance start then reuses the
//! cached plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowscript_bench as wl;
use flowscript_core::samples;
use flowscript_core::schema::compile_source;
use flowscript_plan::Plan;

fn compile_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_compile/samples");
    for (name, source) in samples::all() {
        let root = samples::root_of(name);
        let schema = compile_source(source, root).expect("sample compiles");
        group.bench_with_input(BenchmarkId::new("front_end", name), &source, |b, source| {
            b.iter(|| compile_source(source, root).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lower", name), &schema, |b, schema| {
            b.iter(|| Plan::lower(schema))
        });
    }
    group.finish();
}

fn generated_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_compile/generated_chain");
    for n in [10usize, 50, 200] {
        let source = wl::generated_script(n);
        let schema = compile_source(&source, "root").expect("generated compiles");
        group.bench_with_input(BenchmarkId::new("front_end", n), &source, |b, source| {
            b.iter(|| compile_source(source, "root").unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lower", n), &schema, |b, schema| {
            b.iter(|| Plan::lower(schema))
        });
    }
    group.finish();
}

fn codec_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_compile/codec");
    let schema = compile_source(samples::BUSINESS_TRIP, "tripReservation").unwrap();
    let plan = Plan::lower(&schema);
    let bytes = flowscript_codec::to_bytes(&plan);
    group.bench_function("encode_trip", |b| {
        b.iter(|| flowscript_codec::to_bytes(&plan))
    });
    group.bench_with_input(
        BenchmarkId::new("decode_trip", bytes.len()),
        &bytes,
        |b, bytes| b.iter(|| flowscript_codec::from_bytes::<Plan>(bytes).unwrap()),
    );
    group.finish();
}

criterion_group!(benches, compile_stages, generated_sizes, codec_roundtrip);
criterion_main!(benches);
