//! F7 — Fig. 7 / §5.2: electronic order processing.
//!
//! Both script outcomes (completed / cancelled) plus sustained
//! throughput, exercising the mixed notification+dataflow join at
//! `dispatch` and the abort-outcome cancellation path.

use criterion::{criterion_group, criterion_main, Criterion};
use flowscript_bench as wl;
use flowscript_core::samples;
use flowscript_engine::{ObjectVal, TaskBehavior};

fn orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/order_processing");
    group.sample_size(20);

    group.bench_function("order_completed_path", |b| {
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            let mut sys = wl::order_system(counter);
            wl::run_order(&mut sys, "o");
        })
    });

    group.bench_function("order_cancelled_path", |b| {
        let mut counter = 20_000u64;
        b.iter(|| {
            counter += 1;
            let mut sys = wl::bench_system(counter, 4);
            sys.register_script(
                "order",
                samples::ORDER_PROCESSING,
                "processOrderApplication",
            )
            .unwrap();
            sys.bind_fn("refPaymentAuthorisation", |_| {
                TaskBehavior::outcome("authorised")
                    .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
            });
            sys.bind_fn("refCheckStock", |_| {
                TaskBehavior::outcome("stockNotAvailable")
            });
            sys.bind_fn("refDispatch", |_| {
                TaskBehavior::outcome("dispatchCompleted")
                    .with_object("dispatchNote", ObjectVal::text("DispatchNote", "n"))
            });
            sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
            sys.start(
                "o",
                "order",
                "main",
                [("order", ObjectVal::text("Order", "o"))],
            )
            .unwrap();
            sys.run();
            assert_eq!(sys.outcome("o").unwrap().name, "orderCancelled");
        })
    });
    group.finish();
}

criterion_group!(benches, orders);
criterion_main!(benches);
