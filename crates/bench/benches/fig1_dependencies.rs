//! F1 — Fig. 1: inter-task dependencies.
//!
//! Measures end-to-end completion of the four-task diamond (notification
//! and dataflow mixed) and its generalisations: N-deep chains and N-wide
//! fans. The paper's claim is structural (dependencies order execution);
//! the series here shows how coordination cost scales with graph shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowscript_bench as wl;

fn diamond(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/diamond");
    group.sample_size(20);
    let mut counter = 0u64;
    group.bench_function("four_task_diamond", |b| {
        b.iter(|| {
            counter += 1;
            let mut sys = wl::diamond_system(counter);
            wl::run_diamond(&mut sys, "d");
            sys.stats().dispatches
        })
    });
    group.finish();
}

fn chains(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/chain_depth");
    group.sample_size(10);
    for n in [4usize, 16, 64] {
        let source = wl::chain_source(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut counter = 0u64;
            b.iter(|| {
                counter += 1;
                let mut sys = wl::bench_system(counter, 3);
                sys.register_script("chain", &source, "root").unwrap();
                wl::bind_chain(&sys, n);
                sys.start(
                    "c",
                    "chain",
                    "main",
                    [("seed", flowscript_engine::ObjectVal::text("Data", "s"))],
                )
                .unwrap();
                sys.run();
                assert!(sys.outcome("c").is_some());
            })
        });
    }
    group.finish();
}

fn fans(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1/fan_width");
    group.sample_size(10);
    for width in [4usize, 16, 64] {
        let source = wl::fan_source(width);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &width| {
            let mut counter = 1000u64;
            b.iter(|| {
                counter += 1;
                let mut sys = wl::bench_system(counter, 4);
                sys.register_script("fan", &source, "root").unwrap();
                wl::bind_fan(&sys, width);
                sys.start(
                    "f",
                    "fan",
                    "main",
                    [("seed", flowscript_engine::ObjectVal::text("Data", "s"))],
                )
                .unwrap();
                sys.run();
                assert!(sys.outcome("f").is_some());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, diamond, chains, fans);
criterion_main!(benches);
