//! F6 — Fig. 6 / §5.1: the network-management service impact application.
//!
//! Single-incident latency and sustained incident throughput for the
//! paper's first example application.

use criterion::{criterion_group, criterion_main, Criterion};
use flowscript_bench as wl;
use flowscript_engine::ObjectVal;

fn service_impact(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6/service_impact");
    group.sample_size(20);

    group.bench_function("single_incident", |b| {
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            let mut sys = wl::service_impact_system(counter);
            wl::run_service_impact(&mut sys, "i");
        })
    });

    group.bench_function("ten_concurrent_incidents", |b| {
        let mut counter = 10_000u64;
        b.iter(|| {
            counter += 1;
            let mut sys = wl::service_impact_system(counter);
            for i in 0..10 {
                sys.start(
                    &format!("i{i}"),
                    "si",
                    "main",
                    [("alarmsSource", ObjectVal::text("AlarmsSource", "a"))],
                )
                .unwrap();
            }
            sys.run();
            for i in 0..10 {
                assert!(sys.outcome(&format!("i{i}")).is_some());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, service_impact);
criterion_main!(benches);
