//! F4 — Fig. 4: the workflow management system structure.
//!
//! Measures the full service stack: system bring-up (nodes + services),
//! script registration through the repository service, and
//! instantiate-to-completion through the execution service — the
//! repository/coordinator/executor round-trips of the paper's
//! architecture diagram.

use criterion::{criterion_group, criterion_main, Criterion};
use flowscript_bench as wl;
use flowscript_core::samples;
use flowscript_engine::{ObjectVal, TaskBehavior, WorkflowSystem};

fn architecture(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/architecture");
    group.sample_size(20);

    group.bench_function("system_bring_up", |b| {
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            WorkflowSystem::builder()
                .executors(3)
                .seed(counter)
                .trace(false)
                .build()
        })
    });

    group.bench_function("repository_register_rpc", |b| {
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            let mut sys = wl::bench_system(counter, 2);
            sys.register_script("q", samples::QUICKSTART, "pipeline")
                .unwrap()
        })
    });

    group.bench_function("instantiate_and_run_pipeline", |b| {
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            let mut sys = wl::bench_system(counter, 2);
            sys.register_script("q", samples::QUICKSTART, "pipeline")
                .unwrap();
            sys.bind_fn("refProduce", |_| {
                TaskBehavior::outcome("produced")
                    .with_object("message", ObjectVal::text("Message", "m"))
            });
            sys.bind_fn("refConsume", |_| {
                TaskBehavior::outcome("consumed")
                    .with_object("result", ObjectVal::text("Message", "r"))
            });
            sys.start(
                "i",
                "q",
                "main",
                [("seed", ObjectVal::text("Message", "s"))],
            )
            .unwrap();
            sys.run();
            assert!(sys.outcome("i").is_some());
        })
    });

    // Sustained throughput: many instances through one system.
    group.bench_function("throughput_20_orders", |b| {
        let mut counter = 5000u64;
        b.iter(|| {
            counter += 1;
            let mut sys = wl::order_system(counter);
            for i in 0..20 {
                sys.start(
                    &format!("o{i}"),
                    "order",
                    "main",
                    [("order", ObjectVal::text("Order", "o"))],
                )
                .unwrap();
            }
            sys.run();
            for i in 0..20 {
                assert!(sys.outcome(&format!("o{i}")).is_some());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, architecture);
criterion_main!(benches);
