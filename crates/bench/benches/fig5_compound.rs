//! F5 — Fig. 5: compound task composition.
//!
//! Measures compound-task machinery: schema compilation and end-to-end
//! execution as nesting depth grows (each level adds one scope of input
//! propagation and output mapping).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowscript_bench as wl;
use flowscript_core::schema::compile_source;
use flowscript_engine::{InvokeCtx, ObjectVal, TaskBehavior};

fn compile_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/compile_nesting");
    for depth in [1usize, 4, 8] {
        let source = wl::nested_source(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| compile_source(&source, "root").unwrap())
        });
    }
    group.finish();
}

fn run_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/run_nesting");
    group.sample_size(15);
    for depth in [1usize, 4, 8] {
        let source = wl::nested_source(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            let mut counter = 0u64;
            b.iter(|| {
                counter += 1;
                let mut sys = wl::bench_system(counter, 2);
                sys.register_script("nested", &source, "root").unwrap();
                sys.bind_fn("refLeaf", |ctx: &InvokeCtx| {
                    TaskBehavior::outcome("done")
                        .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
                });
                sys.start(
                    "n",
                    "nested",
                    "main",
                    [("in", ObjectVal::text("Data", "x"))],
                )
                .unwrap();
                sys.run();
                assert!(sys.outcome("n").is_some());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, compile_depth, run_depth);
criterion_main!(benches);
