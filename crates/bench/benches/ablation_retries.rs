//! A2 — ablation: automatic retries under failures.
//!
//! An executor crashes mid-run. With retries enabled (the paper's §3
//! policy) the chain completes via re-dispatch to another node; with
//! retries disabled the instance gets stuck. The series compares
//! time-to-verdict and reports the success rate (once, on stderr).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowscript_bench as wl;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{InstanceStatus, ObjectVal, TaskBehavior};
use flowscript_sim::{FaultAction, FaultPlan, SimDuration, SimTime};

fn run_chain_with_crash(seed: u64, max_retries: u32) -> bool {
    let config = EngineConfig {
        max_retries,
        dispatch_timeout: SimDuration::from_millis(300),
        retry_backoff: SimDuration::from_millis(15),
        ..EngineConfig::default()
    };
    let n = 6;
    let source = wl::chain_source(n);
    let mut sys = wl::bench_system_with(seed, 3, config);
    sys.register_script("chain", &source, "root").unwrap();
    for i in 0..n {
        sys.bind_fn(&format!("ref{i}"), |ctx: &flowscript_engine::InvokeCtx| {
            TaskBehavior::outcome("done")
                .with_work(SimDuration::from_millis(20))
                .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
        });
    }
    let victim = sys.executor_nodes()[0];
    FaultPlan::new()
        .at(SimTime::from_nanos(15_000_000), FaultAction::Crash(victim))
        .apply(sys.world_mut());
    sys.start(
        "c",
        "chain",
        "main",
        [("seed", ObjectVal::text("Data", "s"))],
    )
    .unwrap();
    sys.run();
    matches!(sys.status("c").unwrap(), InstanceStatus::Completed(_))
}

fn retries(c: &mut Criterion) {
    // Success-rate report over 20 seeds.
    for max_retries in [0u32, 3] {
        let successes = (0..20)
            .filter(|&seed| run_chain_with_crash(seed, max_retries))
            .count();
        eprintln!("ablation_retries: max_retries={max_retries}: {successes}/20 runs completed");
    }

    let mut group = c.benchmark_group("ablation/retries");
    group.sample_size(10);
    for max_retries in [0u32, 3] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_retries),
            &max_retries,
            |b, &max_retries| {
                let mut counter = 100u64;
                b.iter(|| {
                    counter += 1;
                    run_chain_with_crash(counter, max_retries)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, retries);
criterion_main!(benches);
