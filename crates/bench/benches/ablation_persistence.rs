//! A1 — ablation: cost of transactional/persistent coordination.
//!
//! The paper's system records all coordination state in persistent
//! atomic objects. This ablation sweeps checkpoint policy (never /
//! every 64 commits / every 8 commits) over a 20-order run and reports
//! the final log size per policy (once, on stderr) — the latency series
//! shows what durability costs and what compaction buys back.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowscript_bench as wl;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::ObjectVal;

fn run_orders(seed: u64, checkpoint_every: Option<u64>) -> (std::time::Duration, u64) {
    let config = EngineConfig {
        checkpoint_every,
        ..EngineConfig::default()
    };
    let started = std::time::Instant::now();
    let mut sys = wl::bench_system_with(seed, 4, config);
    sys.register_script(
        "order",
        flowscript_core::samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.bind_fn("refPaymentAuthorisation", |_| {
        flowscript_engine::TaskBehavior::outcome("authorised")
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        flowscript_engine::TaskBehavior::outcome("stockAvailable")
            .with_object("stockInfo", ObjectVal::text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        flowscript_engine::TaskBehavior::outcome("dispatchCompleted")
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| {
        flowscript_engine::TaskBehavior::outcome("done")
    });
    for i in 0..20 {
        sys.start(
            &format!("o{i}"),
            "order",
            "main",
            [("order", ObjectVal::text("Order", "o"))],
        )
        .unwrap();
    }
    sys.run();
    for i in 0..20 {
        assert!(sys.outcome(&format!("o{i}")).is_some());
    }
    (started.elapsed(), sys.log_size())
}

fn persistence(c: &mut Criterion) {
    // Report log sizes once.
    for (label, policy) in [
        ("no_checkpoints", None),
        ("checkpoint_every_64", Some(64)),
        ("checkpoint_every_8", Some(8)),
    ] {
        let (_, log) = run_orders(1, policy);
        eprintln!("ablation_persistence: {label}: final log = {log} bytes");
    }

    let mut group = c.benchmark_group("ablation/persistence");
    group.sample_size(10);
    for (label, policy) in [
        ("no_checkpoints", None),
        ("checkpoint_every_64", Some(64u64)),
        ("checkpoint_every_8", Some(8)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            let mut counter = 0u64;
            b.iter(|| {
                counter += 1;
                run_orders(counter, policy)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, persistence);
criterion_main!(benches);
