//! The flight recorder and unified metrics registry, end to end:
//! trace completeness on the paper's fig. 7 (order processing) and
//! fig. 8 (business trip) workloads across shard counts, trace
//! survival through one-shard crash recovery, ring-buffer eviction
//! semantics, retry/forward cause pairing under chaos, the
//! `repair_fact` escape hatch for `Stuck{fact storage fault}`
//! instances, and exactly-once stats accounting for forwarded
//! one-way messages.

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{
    CbState, InstanceStatus, ObjectVal, ObsEvent, ObsEventKind, ObserveLevel, TaskBehavior,
    WorkflowSystem,
};
use flowscript_sim::net::LinkConfig;
use flowscript_sim::{FaultPlan, SimDuration, SimTime};

fn det_link() -> LinkConfig {
    LinkConfig {
        base_latency: SimDuration::from_micros(200),
        jitter: SimDuration::ZERO,
        drop_prob: 0.0,
    }
}

fn det_config() -> EngineConfig {
    EngineConfig {
        dispatch_timeout: SimDuration::from_millis(400),
        retry_backoff: SimDuration::from_millis(20),
        record_dispatches: true,
        observe: ObserveLevel::Trace,
        ..EngineConfig::default()
    }
}

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

fn bind_order(sys: &WorkflowSystem) {
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(30))
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_millis(45))
            .with_object("stockInfo", ObjectVal::text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(25))
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
}

fn bind_trip(sys: &WorkflowSystem) {
    sys.bind_fn("refDataAcquisition", |ctx| {
        TaskBehavior::outcome("acquired").with_object(
            "tripData",
            ObjectVal::text("TripData", ctx.input_text("user")),
        )
    });
    sys.bind_fn("refAirlineQueryA", |_| {
        TaskBehavior::outcome("notFound").with_work(SimDuration::from_millis(5))
    });
    sys.bind_fn("refAirlineQueryB", |ctx| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(12))
            .with_object(
                "flightList",
                ObjectVal::text("FlightList", ctx.input_text("tripData")),
            )
    });
    sys.bind_fn("refAirlineQueryC", |ctx| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(30))
            .with_object(
                "flightList",
                ObjectVal::text("FlightList", ctx.input_text("tripData")),
            )
    });
    sys.bind_fn("refFlightReservation", |ctx| {
        TaskBehavior::outcome("reserved")
            .with_object(
                "plane",
                ObjectVal::text("Plane", ctx.input_text("flightList")),
            )
            .with_object("cost", ObjectVal::text("Cost", "c"))
    });
    sys.bind_fn("refHotelReservation", |_| {
        TaskBehavior::outcome("hotelBooked").with_object("hotel", ObjectVal::text("Hotel", "h"))
    });
    sys.bind_fn("refFlightCancellation", |_| {
        TaskBehavior::outcome("cancelled")
    });
    sys.bind_fn("refPrintTickets", |_| {
        TaskBehavior::outcome("printed").with_object("tickets", ObjectVal::text("Tickets", "tk"))
    });
}

fn build(coordinators: usize, config: EngineConfig) -> WorkflowSystem {
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .coordinators(coordinators)
        .seed(7)
        .link(det_link())
        .config(config)
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.register_script("trip", samples::BUSINESS_TRIP, "tripReservation")
        .unwrap();
    bind_order(&sys);
    bind_trip(&sys);
    sys
}

/// A trace is a *complete lifecycle*: it opens with the instance start,
/// closes with the root terminal, every event names this instance, and
/// virtual time never goes backwards.
fn assert_lifecycle(instance: &str, events: &[ObsEvent]) {
    assert!(!events.is_empty(), "{instance}: empty trace");
    assert!(
        matches!(events[0].kind, ObsEventKind::InstanceStart),
        "{instance}: trace must open with the start event, got {}",
        events[0]
    );
    assert!(
        matches!(events.last().unwrap().kind, ObsEventKind::Terminal { .. }),
        "{instance}: trace must close with the terminal event, got {}",
        events.last().unwrap()
    );
    for window in events.windows(2) {
        assert!(
            window[0].at_ns <= window[1].at_ns,
            "{instance}: trace went backwards in time: {} then {}",
            window[0],
            window[1]
        );
    }
    for event in events {
        assert_eq!(event.instance, instance, "foreign event in trace: {event}");
    }
}

#[test]
fn trace_reconstructs_fig7_and_fig8_lifecycles_across_shard_counts() {
    for shards in [1usize, 4] {
        let mut sys = build(shards, det_config());
        sys.start("order-t", "order", "main", [("order", text("Order", "o"))])
            .unwrap();
        sys.start("trip-t", "trip", "main", [("user", text("User", "u"))])
            .unwrap();
        sys.run();
        for instance in ["order-t", "trip-t"] {
            assert!(
                matches!(sys.status(instance).unwrap(), InstanceStatus::Completed(_)),
                "{instance} must complete"
            );
            let events = sys.trace(instance);
            assert_lifecycle(instance, &events);
            // Every dispatch the debug dispatch-trace saw for this
            // instance shows up as a traced dispatch event, each matched
            // by a commit of the task's outcome.
            let dispatches = sys.dispatch_trace_of(instance).len();
            let dispatch_events = events
                .iter()
                .filter(|e| matches!(e.kind, ObsEventKind::Dispatch { .. }))
                .count();
            assert_eq!(
                dispatch_events, dispatches,
                "{instance} at {shards} shards: every dispatch must be traced"
            );
            let commits = events
                .iter()
                .filter(|e| matches!(e.kind, ObsEventKind::Commit { .. }))
                .count();
            assert!(
                commits >= dispatches,
                "{instance}: each dispatched task commits at least once \
                 ({commits} commits vs {dispatches} dispatches)"
            );
            // Correctly routed requests never forward.
            assert!(
                !events
                    .iter()
                    .any(|e| matches!(e.kind, ObsEventKind::Forward { .. })),
                "{instance}: correctly routed requests must not forward"
            );
        }
    }
}

#[test]
fn trace_spans_one_shard_crash_and_recovery() {
    let mut sys = build(4, det_config());
    let instance = "order-crash";
    sys.start(instance, "order", "main", [("order", text("Order", "x"))])
        .unwrap();
    let victim = sys.coordinator_node_for(instance);
    // Crash the owner mid-flight (the order takes ~100ms of virtual
    // time), restart shortly after; recovery replays the WAL and
    // re-dispatches whatever was executing.
    FaultPlan::crash_restart(
        victim,
        SimTime::from_nanos(40_000_000),
        SimDuration::from_millis(120),
    )
    .apply(sys.world_mut());
    sys.run();
    assert!(
        matches!(sys.status(instance).unwrap(), InstanceStatus::Completed(_)),
        "the instance completes through recovery"
    );
    let events = sys.trace(instance);
    assert_lifecycle(instance, &events);
    let recovery_at = events
        .iter()
        .position(|e| matches!(e.kind, ObsEventKind::Recovery { .. }))
        .expect("the trace must contain the recovery event");
    assert!(
        recovery_at > 0 && recovery_at < events.len() - 1,
        "recovery sits between pre-crash events and the terminal"
    );
    assert!(
        events[..recovery_at]
            .iter()
            .any(|e| matches!(e.kind, ObsEventKind::Dispatch { .. })),
        "pre-crash dispatches survive in the recorder (it models an \
         external telemetry sink, not shard-local volatile state)"
    );
    assert!(
        events[recovery_at..]
            .iter()
            .any(|e| matches!(e.kind, ObsEventKind::Dispatch { .. })),
        "recovery re-dispatches the in-flight work"
    );
}

#[test]
fn ring_buffer_evicts_oldest_and_keeps_newest() {
    let mut config = det_config();
    config.recorder_capacity = 16; // far below the run's event count
    let mut sys = build(1, config);
    for i in 0..4 {
        sys.start(
            &format!("order-{i}"),
            "order",
            "main",
            [("order", text("Order", &format!("o{i}")))],
        )
        .unwrap();
    }
    sys.run();
    let events: Vec<ObsEvent> = (0..4)
        .flat_map(|i| sys.trace(&format!("order-{i}")))
        .collect();
    assert!(
        !events.is_empty() && events.len() <= 16,
        "retained events must respect the ring bound, got {}",
        events.len()
    );
    // Eviction is oldest-first: the retained events are exactly the
    // newest contiguous slice of the recorded sequence.
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    for pair in seqs.windows(2) {
        assert_eq!(pair[1], pair[0] + 1, "retained seqs must be contiguous");
    }
    // The run recorded far more than 16 events, so every instance's
    // start event (recorded first) has been evicted…
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, ObsEventKind::InstanceStart)),
        "the oldest events (the starts) must have been evicted"
    );
    // …while the newest event overall — the last root terminal — is
    // still there.
    let newest = events.iter().max_by_key(|e| e.seq).unwrap();
    assert!(
        matches!(newest.kind, ObsEventKind::Terminal { .. }),
        "the newest retained event is the final terminal, got {newest}"
    );
}

#[test]
fn chaos_trace_pairs_every_retry_with_its_cause() {
    // An executor crash mid-run forces watchdog timeouts and retries;
    // the trace must explain each one.
    let mut config = det_config();
    config.max_retries = 6;
    config.dispatch_timeout = SimDuration::from_millis(250);
    config.retry_backoff = SimDuration::from_millis(10);
    let mut sys = build(2, config);
    for i in 0..4 {
        sys.start(
            &format!("chaos-{i}"),
            "order",
            "main",
            [("order", text("Order", &format!("c{i}")))],
        )
        .unwrap();
    }
    let executor = sys.executor_nodes()[0];
    FaultPlan::crash_restart(
        executor,
        SimTime::from_nanos(20_000_000),
        SimDuration::from_millis(300),
    )
    .apply(sys.world_mut());
    sys.run();
    let mut retries_seen = 0;
    for i in 0..4 {
        let instance = format!("chaos-{i}");
        assert!(
            matches!(sys.status(&instance).unwrap(), InstanceStatus::Completed(_)),
            "{instance} completes despite the executor crash: {:?}",
            sys.status(&instance)
        );
        let events = sys.trace(&instance);
        assert_lifecycle(&instance, &events);
        for (at, event) in events.iter().enumerate() {
            if let ObsEventKind::Retry { reason } = &event.kind {
                retries_seen += 1;
                assert!(!reason.is_empty(), "a retry must carry its cause");
                // The attempt being retried (attempt - 1) must have been
                // dispatched earlier in this trace — the cause event the
                // retry pairs with.
                let task = event.task.as_deref().expect("retries are task-scoped");
                let cause = events[..at].iter().any(|prior| {
                    prior.task.as_deref() == Some(task)
                        && prior.attempt + 1 == event.attempt
                        && matches!(prior.kind, ObsEventKind::Dispatch { .. })
                });
                assert!(
                    cause,
                    "{instance}: retry of `{task}` attempt {} has no earlier \
                     dispatch of attempt {}",
                    event.attempt,
                    event.attempt - 1
                );
            }
        }
    }
    assert!(
        retries_seen >= 1,
        "the executor crash must force at least one traced retry"
    );
    assert_eq!(
        sys.stats().retries,
        retries_seen,
        "traced retries and the metrics registry must agree"
    );
}

/// A join of one fast and one slow producer — the window between their
/// completions is where a fact can be corrupted, parking the instance
/// with `Stuck{fact storage fault}` when the join's readiness probe
/// hits the poisoned record.
const JOIN: &str = r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}
taskclass Join {
    inputs { input main { left of class Data; right of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
    task fast of taskclass Work {
        implementation { "code" is "refFast" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    task slow of taskclass Work {
        implementation { "code" is "refSlow" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    task join of taskclass Join {
        implementation { "code" is "refJoin" };
        inputs { input main {
            inputobject left from { out of task fast if output done };
            inputobject right from { out of task slow if output done }
        } }
    };
    outputs { outcome done { notification from { task join if output done } } }
}
"#;

fn join_system(config: EngineConfig, slow_work: SimDuration) -> WorkflowSystem {
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .seed(11)
        .link(det_link())
        .config(config)
        .build();
    sys.register_script("join", JOIN, "root").unwrap();
    sys.bind_fn("refFast", |_| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(5))
            .with_object("out", ObjectVal::text("Data", "fast"))
    });
    sys.bind_fn("refSlow", move |_| {
        TaskBehavior::outcome("done")
            .with_work(slow_work)
            .with_object("out", ObjectVal::text("Data", "slow"))
    });
    sys.bind_fn("refJoin", |ctx| {
        assert!(!ctx.input_text("left").is_empty());
        assert!(!ctx.input_text("right").is_empty());
        TaskBehavior::outcome("done")
    });
    sys
}

#[test]
fn repair_fact_revives_a_storage_fault_stuck_instance() {
    let mut sys = join_system(det_config(), SimDuration::from_millis(200));
    sys.start("r1", "join", "main", [("seed", text("Data", "s"))])
        .unwrap();
    // Let the fast producer commit, then corrupt its output fact while
    // the slow one is still executing: the slow commit re-evaluates the
    // join, whose probe hits the poisoned record and parks the instance.
    sys.run_for(SimDuration::from_millis(50));
    assert!(
        sys.poison_fact("r1", "root/fast", "done"),
        "the fact must exist to be poisoned"
    );
    sys.run();
    let status = sys.status("r1").unwrap();
    let InstanceStatus::Stuck { reason } = &status else {
        panic!("expected Stuck, got {status:?}");
    };
    assert!(
        reason.contains("fact storage fault"),
        "diagnosis must name the fault: {reason}"
    );
    // The flight recorder explains the parking.
    assert!(
        sys.trace("r1").iter().any(|e| matches!(
            &e.kind,
            ObsEventKind::Stuck { reason } if reason.contains("fact storage fault")
        )),
        "the trace must carry the stuck diagnosis"
    );

    // Administrative repair: re-publish the fact, revive, complete.
    sys.repair_fact("r1", "root/fast", "done", [("out", text("Data", "fast"))])
        .unwrap();
    sys.run();
    assert!(
        matches!(sys.status("r1").unwrap(), InstanceStatus::Completed(_)),
        "the repaired instance completes: {:?}",
        sys.status("r1")
    );
    let events = sys.trace("r1");
    assert_lifecycle("r1", &events);
    let stuck_at = events
        .iter()
        .position(|e| matches!(e.kind, ObsEventKind::Stuck { .. }))
        .expect("the stuck event must be traced");
    let repair_at = events
        .iter()
        .position(|e| {
            matches!(
                &e.kind,
                ObsEventKind::Repair { what } if what.contains("republished")
            )
        })
        .expect("the repair event must be traced");
    assert!(stuck_at < repair_at, "stuck precedes repair");
}

#[test]
fn repair_fact_can_force_a_hung_tasks_outcome() {
    // The slow producer hangs "forever" (an hour of virtual time) and
    // the watchdog is configured to wait even longer, so the instance
    // sits Running with the task Executing. An operator forces the
    // outcome the executor never delivered.
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_secs(7200),
        record_dispatches: true,
        observe: ObserveLevel::Trace,
        ..EngineConfig::default()
    };
    let mut sys = join_system(config, SimDuration::from_secs(3600));
    sys.start("r2", "join", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run_for(SimDuration::from_millis(100));
    assert!(
        matches!(
            sys.task_states("r2")["root/slow"],
            CbState::Executing { .. }
        ),
        "the slow producer must be hung mid-execution"
    );
    sys.repair_fact("r2", "root/slow", "done", [("out", text("Data", "forced"))])
        .unwrap();
    sys.run();
    assert!(
        matches!(sys.status("r2").unwrap(), InstanceStatus::Completed(_)),
        "the forced outcome unblocks the join: {:?}",
        sys.status("r2")
    );
    assert!(
        sys.trace("r2").iter().any(|e| matches!(
            &e.kind,
            ObsEventKind::Repair { what } if what.contains("forced")
        )),
        "the trace must mark the forced completion"
    );
}

#[test]
fn metrics_snapshot_aggregates_shards_and_exports() {
    let mut sys = build(4, det_config());
    for i in 0..6 {
        sys.start(
            &format!("snap-{i}"),
            "order",
            "main",
            [("order", text("Order", &format!("s{i}")))],
        )
        .unwrap();
    }
    sys.run();
    let snapshot = sys.metrics_snapshot();
    // Counters aggregate across shards and agree with the stats view.
    assert_eq!(
        snapshot.counter("coord.dispatches"),
        sys.stats().dispatches,
        "registry and CoordStats views must agree"
    );
    let per_shard: u64 = (0..4)
        .map(|s| sys.shard_registry(s).snapshot().counter("coord.dispatches"))
        .sum();
    assert_eq!(snapshot.counter("coord.dispatches"), per_shard);
    // The hot-path histograms sampled.
    let drain = snapshot
        .histogram("coord.commit_drain_len")
        .expect("commit-drain histogram present");
    assert!(drain.count > 0, "drains must have been sampled");
    let latency = snapshot
        .histogram("coord.dispatch_latency_ns")
        .expect("dispatch-latency histogram present");
    assert_eq!(
        latency.count,
        sys.stats().dispatches,
        "every clean dispatch completes and samples its latency"
    );
    assert!(latency.min > 0, "virtual dispatch latency is nonzero");
    // WAL and tx metrics migrated onto the registry.
    assert!(
        snapshot.counter("tx.commits") > 0,
        "tx commits flow through the registry"
    );
    assert!(
        snapshot
            .histogram("wal.frames_per_commit")
            .is_some_and(|h| h.count > 0),
        "WAL frames-per-commit histogram sampled"
    );
    // Old getters are thin wrappers over the same registry entries.
    assert_eq!(
        sys.store_prefix_scans(),
        snapshot.counter("tx.prefix_scans")
    );
    assert_eq!(
        sys.store_fact_range_scans(),
        snapshot.counter("tx.fact_range_scans")
    );
    // Export formats.
    let json = snapshot.to_json();
    assert!(json.contains("\"coord.dispatches\""));
    assert!(json.contains("\"wal.frames_per_commit\""));
    let csv = snapshot.to_csv();
    assert!(csv.starts_with("metric,kind,"));
    assert!(csv.contains("coord.dispatches,counter"));
}

#[test]
fn forwarded_marks_count_exactly_once_on_the_owner() {
    const MARK_SCRIPT: &str = r#"
class Data;
class Cost;

taskclass LongRunner {
    inputs { input main { in of class Data } };
    outputs {
        outcome finished { out of class Data };
        mark estimate { cost of class Cost }
    }
}

taskclass EagerConsumer {
    inputs { input main { cost of class Cost } };
    outputs { outcome billed { } }
}

taskclass Root {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}

compoundtask root of taskclass Root {
    task runner of taskclass LongRunner {
        implementation { "code" is "refRunner" };
        inputs { input main { inputobject in from { in of task root if input main } } }
    };
    task biller of taskclass EagerConsumer {
        implementation { "code" is "refBiller" };
        inputs { input main { inputobject cost from { cost of task runner if output estimate } } }
    };
    outputs {
        outcome done {
            outputobject out from { out of task runner if output finished };
            notification from { task biller if output billed }
        }
    }
}
"#;
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .coordinators(2)
        .seed(5)
        .link(det_link())
        .config(det_config())
        .build();
    sys.register_script("m", MARK_SCRIPT, "root").unwrap();
    sys.bind_fn("refRunner", |ctx| {
        TaskBehavior::outcome("finished")
            .with_work(SimDuration::from_millis(200))
            .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
    });
    sys.bind_fn("refBiller", |_| TaskBehavior::outcome("billed"));
    // Find an instance owned by shard 1 so a message sent via shard 0
    // must be forwarded.
    let name = (0..32)
        .map(|i| format!("fwd-mark-{i}"))
        .find(|name| sys.shard_of(name) == 1)
        .expect("some name lands on shard 1");
    sys.start(&name, "m", "main", [("in", text("Data", "x"))])
        .unwrap();
    // Let the runner reach Executing, then deliver its mark through the
    // *wrong* shard: the relay must forward it verbatim, and only the
    // owner may count (and commit) the mark.
    sys.run_for(SimDuration::from_millis(50));
    sys.send_mark_via_shard(
        0,
        &name,
        "root/runner",
        0,
        0,
        "estimate",
        [("cost", text("Cost", "42"))],
    );
    sys.run();
    assert_eq!(
        sys.outcome(&name).expect("completes").name,
        "done",
        "the forwarded mark feeds the biller and the instance completes"
    );
    assert_eq!(
        sys.shard_stats(1).marks,
        1,
        "the owner commits and counts the mark exactly once"
    );
    assert_eq!(
        sys.shard_stats(0).marks,
        0,
        "the relay must not count the operation it only forwarded"
    );
    assert!(
        sys.shard_stats(0).forwarded >= 1,
        "the relay counts the forward itself"
    );
    assert_eq!(sys.stats().marks, 1, "aggregate counts it once");
    // The trace shows the relay-side forward followed by the owner-side
    // mark commit (the event's `shard`/`to` fields carry node indices).
    let events = sys.trace(&name);
    let (forward_at, owner_node) = events
        .iter()
        .enumerate()
        .find_map(|(at, e)| match e.kind {
            ObsEventKind::Forward { to, .. } => Some((at, to)),
            _ => None,
        })
        .expect("the relay records the forward");
    assert!(
        events[forward_at + 1..].iter().any(|e| {
            e.shard == owner_node
                && matches!(&e.kind, ObsEventKind::Commit { what, .. } if what.contains("mark"))
        }),
        "the owner commits the forwarded mark after the relay event"
    );
}

#[test]
fn observe_off_records_nothing() {
    let mut config = det_config();
    config.observe = ObserveLevel::Off;
    let mut sys = build(1, config);
    sys.start("quiet", "order", "main", [("order", text("Order", "q"))])
        .unwrap();
    sys.run();
    assert!(
        matches!(sys.status("quiet").unwrap(), InstanceStatus::Completed(_)),
        "the workload itself is unaffected"
    );
    assert!(sys.trace("quiet").is_empty(), "no trace events below Trace");
    let snapshot = sys.metrics_snapshot();
    // Counters stay always-on (they back `CoordStats`)…
    assert!(snapshot.counter("coord.dispatches") > 0);
    // …but the gated histograms never sample.
    for name in [
        "coord.commit_drain_len",
        "coord.dispatch_latency_ns",
        "sched.pick_load",
        "wal.frames_per_commit",
    ] {
        assert_eq!(
            snapshot.histogram(name).map(|h| h.count).unwrap_or(0),
            0,
            "histogram {name} must not sample with observe=Off"
        );
    }
}
