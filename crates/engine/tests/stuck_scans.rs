//! Regression guard for O(1) stuck detection.
//!
//! `stuck_check` used to enumerate every control block by uid prefix
//! after every worklist drain; it now reads an incrementally maintained
//! non-terminal count plus the volatile in-flight set, and even the
//! one-time stuck *report* resolves through the plan's interned uid
//! table. These tests count actual store prefix scans to pin that down:
//! a run — completed, stuck, repeating or monitored — must not scan.

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{InstanceStatus, ObjectVal, TaskBehavior, WorkflowSystem};
use flowscript_sim::SimDuration;

fn order_sys(seed: u64) -> WorkflowSystem {
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_millis(250),
        retry_backoff: SimDuration::from_millis(10),
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .seed(seed)
        .config(config)
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_object("stockInfo", ObjectVal::text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
    sys
}

#[test]
fn completed_run_performs_no_prefix_scans() {
    let mut sys = order_sys(1);
    for i in 0..4 {
        sys.start(
            &format!("o{i}"),
            "order",
            "main",
            [("order", ObjectVal::text("Order", "o"))],
        )
        .unwrap();
    }
    let before = sys.store_prefix_scans();
    sys.run();
    for i in 0..4 {
        assert_eq!(
            sys.outcome(&format!("o{i}")).expect("completes").name,
            "orderCompleted"
        );
    }
    // Monitoring a live instance is scan-free too.
    let states = sys.task_states("o0");
    assert!(states.values().all(flowscript_engine::CbState::is_terminal));
    assert_eq!(
        sys.store_prefix_scans(),
        before,
        "the run (and live monitoring) must not scan the store by prefix"
    );
}

#[test]
fn stuck_run_performs_no_prefix_scans_and_still_explains_itself() {
    let mut sys = order_sys(2);
    // Starve the dispatch task: retries exhaust, the instance goes
    // stuck — the one-time report must name the failed and waiting
    // tasks without a store scan.
    sys.registry().unbind("refDispatch");
    sys.start(
        "o",
        "order",
        "main",
        [("order", ObjectVal::text("Order", "o"))],
    )
    .unwrap();
    let before = sys.store_prefix_scans();
    sys.run();
    match sys.status("o").unwrap() {
        InstanceStatus::Stuck { reason } => {
            assert!(reason.contains("failed"), "{reason}");
            assert!(reason.contains("dispatch"), "{reason}");
            assert!(reason.contains("paymentCapture"), "{reason}");
            assert!(reason.contains("non-terminal"), "{reason}");
        }
        other => panic!("expected stuck, got {other:?}"),
    }
    assert_eq!(
        sys.store_prefix_scans(),
        before,
        "going stuck must not scan the store by prefix"
    );
}

const REPEATER: &str = r#"
class Data;
taskclass Stage {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data }; repeat outcome again { in of class Data } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
    task t of taskclass Stage {
        implementation { "code" is "refT" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    outputs { outcome done { notification from { task t if output done } } }
}
"#;

#[test]
fn repeat_loops_perform_no_prefix_scans() {
    // Leaf repeats and their worklist drains stay scan-free as well.
    let mut sys = WorkflowSystem::builder().executors(2).seed(3).build();
    sys.register_script("r", REPEATER, "root").unwrap();
    sys.bind_fn("refT", |ctx| {
        if ctx.attempt < 3 {
            TaskBehavior::outcome("again")
                .with_object("in", ObjectVal::text("Data", "again"))
                .with_redo_after(SimDuration::from_millis(5))
        } else {
            TaskBehavior::outcome("done").with_object("out", ObjectVal::text("Data", "d"))
        }
    });
    sys.start("i", "r", "main", [("seed", ObjectVal::text("Data", "s"))])
        .unwrap();
    let before = sys.store_prefix_scans();
    sys.run();
    assert_eq!(sys.outcome("i").expect("completes").name, "done");
    assert!(sys.stats().repeats >= 3);
    assert_eq!(sys.store_prefix_scans(), before);
}
