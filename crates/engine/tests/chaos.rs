//! Chaos property tests: under randomized fault schedules the engine
//! must always reach a terminal verdict (Completed or Stuck) — never
//! hang, never corrupt state, never double-apply an outcome — and runs
//! must be deterministic per seed.

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{CbState, InstanceStatus, ObjectVal, TaskBehavior, WorkflowSystem};
use flowscript_sim::{FaultAction, FaultPlan, SimDuration, SimTime};
use proptest::prelude::*;

fn order_system(seed: u64, max_retries: u32) -> WorkflowSystem {
    let config = EngineConfig {
        max_retries,
        dispatch_timeout: SimDuration::from_millis(250),
        retry_backoff: SimDuration::from_millis(10),
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .seed(seed)
        .config(config)
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(30))
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_millis(45))
            .with_object("stockInfo", ObjectVal::text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(25))
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
    sys
}

/// A randomized fault plan derived from proptest inputs.
fn fault_plan(
    sys: &WorkflowSystem,
    crashes: &[(u8, u32, u32)],
    partition_at: Option<u32>,
) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let nodes: Vec<_> = sys.executor_nodes().to_vec();
    let coordinator = sys.coordinator_node();
    for &(which, at_ms, down_ms) in crashes {
        let node = if which == 0 {
            coordinator
        } else {
            nodes[(which as usize - 1) % nodes.len()]
        };
        let at = SimTime::from_nanos(u64::from(at_ms % 400) * 1_000_000);
        plan = plan.at(at, FaultAction::Crash(node)).at(
            at + SimDuration::from_millis(u64::from(down_ms % 300) + 20),
            FaultAction::Restart(node),
        );
    }
    if let Some(at_ms) = partition_at {
        let at = SimTime::from_nanos(u64::from(at_ms % 300) * 1_000_000);
        plan = plan
            .at(at, FaultAction::Partition(vec![coordinator], nodes.clone()))
            .at(at + SimDuration::from_millis(400), FaultAction::HealAll);
    }
    plan
}

/// `None` when the fault plan took the coordinator down before the
/// client's start call could land (a legitimate refusal, not a verdict
/// about instance execution).
fn run_chaos(
    seed: u64,
    crashes: &[(u8, u32, u32)],
    partition_at: Option<u32>,
) -> Option<(InstanceStatus, String)> {
    let mut sys = order_system(seed, 6);
    let plan = fault_plan(&sys, crashes, partition_at);
    plan.apply(sys.world_mut());
    if let Err(err) = sys.start(
        "o",
        "order",
        "main",
        [("order", ObjectVal::text("Order", "o"))],
    ) {
        // Only an RPC-level refusal (a service was down/partitioned when
        // the call landed) is a legitimate skip — and only when the
        // fault plan actually scheduled a coordinator fault. Anything
        // else is a real bug in the start path, not chaos.
        let coordinator_fault_scheduled =
            crashes.iter().any(|&(which, _, _)| which == 0) || partition_at.is_some();
        let message = err.to_string();
        assert!(
            coordinator_fault_scheduled
                && (message.contains("timed out") || message.contains("unreachable")),
            "unexpected start failure: {message} (crashes: {crashes:?})"
        );
        sys.run();
        return None;
    }
    sys.run();
    let status = sys.status("o").unwrap();
    Some((status, sys.trace().render()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chaos_runs_always_reach_a_verdict(
        seed: u64,
        crashes in proptest::collection::vec((0u8..4, any::<u32>(), any::<u32>()), 0..3),
        partition_at in proptest::option::of(any::<u32>()),
    ) {
        if let Some((status, _)) = run_chaos(seed, &crashes, partition_at) {
            // Terminal either way; never Running after the queue drains.
            prop_assert!(status.is_terminal(), "non-terminal: {status:?}");
        }
    }

    #[test]
    fn chaos_runs_are_deterministic(
        seed: u64,
        crashes in proptest::collection::vec((0u8..4, any::<u32>(), any::<u32>()), 0..3),
    ) {
        let run1 = run_chaos(seed, &crashes, None);
        let run2 = run_chaos(seed, &crashes, None);
        prop_assert_eq!(run1, run2);
    }

    #[test]
    fn completed_chaos_runs_have_consistent_final_state(
        seed: u64,
        crashes in proptest::collection::vec((1u8..4, any::<u32>(), any::<u32>()), 0..2),
    ) {
        // Executor-only crashes with generous retries: the order should
        // usually complete; when it does, the final state must be
        // consistent (all tasks terminal, outcome objects present).
        let mut sys = order_system(seed, 8);
        let plan = fault_plan(&sys, &crashes, None);
        plan.apply(sys.world_mut());
        sys.start("o", "order", "main", [("order", ObjectVal::text("Order", "o"))]).unwrap();
        sys.run();
        if let InstanceStatus::Completed(outcome) = sys.status("o").unwrap() {
            prop_assert_eq!(&outcome.name, "orderCompleted");
            prop_assert!(outcome.objects.contains_key("dispatchNote"));
            for (path, state) in sys.task_states("o") {
                prop_assert!(state.is_terminal(), "{} not terminal: {:?}", path, state);
                // No task may be Failed in a completed run of this script
                // (every task feeds the outcome chain).
                prop_assert!(
                    !matches!(state, CbState::Failed { .. }),
                    "{} failed in a completed run", path
                );
            }
        }
    }
}
