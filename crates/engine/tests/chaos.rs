//! Chaos property tests: under randomized fault schedules — processor
//! crashes of executors *and* coordinator shards, partitions, repeated
//! shard restarts — the engine must always reach a terminal verdict
//! (Completed or Stuck) — never hang, never corrupt state, never
//! double-apply an outcome — and runs must be deterministic per seed.

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{CbState, InstanceStatus, ObjectVal, TaskBehavior, WorkflowSystem};
use flowscript_sim::{FaultAction, FaultPlan, SimDuration, SimTime};
use proptest::prelude::*;

fn order_system(seed: u64, max_retries: u32) -> WorkflowSystem {
    sharded_order_system(seed, 1, max_retries)
}

fn sharded_order_system(seed: u64, coordinators: usize, max_retries: u32) -> WorkflowSystem {
    let config = EngineConfig {
        max_retries,
        dispatch_timeout: SimDuration::from_millis(250),
        retry_backoff: SimDuration::from_millis(10),
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .coordinators(coordinators)
        .seed(seed)
        .config(config)
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(30))
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_millis(45))
            .with_object("stockInfo", ObjectVal::text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(25))
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
    sys
}

/// A randomized fault plan derived from proptest inputs.
fn fault_plan(
    sys: &WorkflowSystem,
    crashes: &[(u8, u32, u32)],
    partition_at: Option<u32>,
) -> FaultPlan {
    let mut plan = FaultPlan::new();
    let nodes: Vec<_> = sys.executor_nodes().to_vec();
    let coordinator = sys.coordinator_node();
    for &(which, at_ms, down_ms) in crashes {
        let node = if which == 0 {
            coordinator
        } else {
            nodes[(which as usize - 1) % nodes.len()]
        };
        let at = SimTime::from_nanos(u64::from(at_ms % 400) * 1_000_000);
        plan = plan.at(at, FaultAction::Crash(node)).at(
            at + SimDuration::from_millis(u64::from(down_ms % 300) + 20),
            FaultAction::Restart(node),
        );
    }
    if let Some(at_ms) = partition_at {
        let at = SimTime::from_nanos(u64::from(at_ms % 300) * 1_000_000);
        plan = plan
            .at(at, FaultAction::Partition(vec![coordinator], nodes.clone()))
            .at(at + SimDuration::from_millis(400), FaultAction::HealAll);
    }
    plan
}

/// `None` when the fault plan took the coordinator down before the
/// client's start call could land (a legitimate refusal, not a verdict
/// about instance execution).
fn run_chaos(
    seed: u64,
    crashes: &[(u8, u32, u32)],
    partition_at: Option<u32>,
) -> Option<(InstanceStatus, String)> {
    let mut sys = order_system(seed, 6);
    let plan = fault_plan(&sys, crashes, partition_at);
    plan.apply(sys.world_mut());
    if let Err(err) = sys.start(
        "o",
        "order",
        "main",
        [("order", ObjectVal::text("Order", "o"))],
    ) {
        // Only an RPC-level refusal (a service was down/partitioned when
        // the call landed) is a legitimate skip — and only when the
        // fault plan actually scheduled a coordinator fault. Anything
        // else is a real bug in the start path, not chaos.
        let coordinator_fault_scheduled =
            crashes.iter().any(|&(which, _, _)| which == 0) || partition_at.is_some();
        let message = err.to_string();
        assert!(
            coordinator_fault_scheduled
                && (message.contains("timed out") || message.contains("unreachable")),
            "unexpected start failure: {message} (crashes: {crashes:?})"
        );
        sys.run();
        return None;
    }
    sys.run();
    let status = sys.status("o").unwrap();
    Some((status, sys.sim_trace().render()))
}

// ---------------------------------------------------------------------
// Sharded chaos: fault injection picks coordinator nodes too.
// ---------------------------------------------------------------------

/// Instance names for the sharded runs (several, so rendezvous hashing
/// spreads them over the coordinator shards).
fn sharded_instances() -> Vec<String> {
    (0..4).map(|i| format!("wf-{i}")).collect()
}

/// A randomized fault plan over the *whole* node population:
/// `which` indexes coordinators first, then executors.
fn sharded_fault_plan(sys: &WorkflowSystem, crashes: &[(u8, u32, u32)]) -> FaultPlan {
    let mut victims: Vec<_> = sys.coordinator_nodes().to_vec();
    victims.extend_from_slice(sys.executor_nodes());
    let mut plan = FaultPlan::new();
    for &(which, at_ms, down_ms) in crashes {
        let node = victims[which as usize % victims.len()];
        let at = SimTime::from_nanos(u64::from(at_ms % 400) * 1_000_000);
        plan = plan.at(at, FaultAction::Crash(node)).at(
            at + SimDuration::from_millis(u64::from(down_ms % 300) + 20),
            FaultAction::Restart(node),
        );
    }
    plan
}

/// Starts every instance (skipping any whose owning shard was down when
/// the call landed — legitimate only when a coordinator fault was
/// scheduled), runs to quiescence, and returns per-instance statuses
/// plus the trace.
fn run_sharded_chaos(
    seed: u64,
    coordinators: usize,
    crashes: &[(u8, u32, u32)],
) -> (Vec<(String, InstanceStatus)>, String) {
    let mut sys = sharded_order_system(seed, coordinators, 6);
    let plan = sharded_fault_plan(&sys, crashes);
    // Same victim-list arithmetic as `sharded_fault_plan`: coordinators
    // first, then executors.
    let victim_count = sys.coordinator_nodes().len() + sys.executor_nodes().len();
    let coordinator_fault_scheduled = crashes
        .iter()
        .any(|&(which, _, _)| (which as usize % victim_count) < sys.coordinator_nodes().len());
    plan.apply(sys.world_mut());
    let mut started = Vec::new();
    for name in sharded_instances() {
        match sys.start(
            &name,
            "order",
            "main",
            [("order", ObjectVal::text("Order", &name))],
        ) {
            Ok(()) => started.push(name),
            Err(err) => {
                let message = err.to_string();
                assert!(
                    coordinator_fault_scheduled
                        && (message.contains("timed out")
                            || message.contains("unreachable")
                            || message.contains("never completed")),
                    "unexpected start failure for {name}: {message} (crashes: {crashes:?})"
                );
            }
        }
    }
    sys.run();
    let statuses = started
        .into_iter()
        .map(|name| {
            let status = sys.status(&name).unwrap();
            (name, status)
        })
        .collect();
    (statuses, sys.sim_trace().render())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_chaos_always_reaches_verdicts(
        seed: u64,
        coordinators in 2usize..5,
        crashes in proptest::collection::vec((0u8..8, any::<u32>(), any::<u32>()), 0..3),
    ) {
        let (statuses, _) = run_sharded_chaos(seed, coordinators, &crashes);
        for (name, status) in statuses {
            prop_assert!(status.is_terminal(), "{}: non-terminal {:?}", name, status);
        }
    }

    #[test]
    fn sharded_chaos_is_deterministic(
        seed: u64,
        coordinators in 2usize..5,
        crashes in proptest::collection::vec((0u8..8, any::<u32>(), any::<u32>()), 0..3),
    ) {
        let run1 = run_sharded_chaos(seed, coordinators, &crashes);
        let run2 = run_sharded_chaos(seed, coordinators, &crashes);
        prop_assert_eq!(run1, run2);
    }
}

/// Shard-local recovery under *repeated* crashes: one coordinator shard
/// crashes and restarts three times mid-run; its instances complete
/// through WAL replay every time, and no other shard ever runs
/// recovery.
#[test]
fn repeated_shard_crashes_recover_shard_locally() {
    let mut sys = sharded_order_system(5, 3, 8);
    for name in sharded_instances() {
        sys.start(
            &name,
            "order",
            "main",
            [("order", ObjectVal::text("Order", &name))],
        )
        .unwrap();
    }
    let victim_name = sharded_instances().remove(0);
    let victim_shard = sys.shard_of(&victim_name);
    let victim_node = sys.coordinator_node_for(&victim_name);
    let mut plan = FaultPlan::new();
    for at_ms in [30u64, 120, 210] {
        plan = plan
            .at(
                SimTime::from_nanos(at_ms * 1_000_000),
                FaultAction::Crash(victim_node),
            )
            .at(
                SimTime::from_nanos((at_ms + 40) * 1_000_000),
                FaultAction::Restart(victim_node),
            );
    }
    plan.apply(sys.world_mut());
    sys.run();
    for name in sharded_instances() {
        assert_eq!(
            sys.outcome(&name)
                .unwrap_or_else(|| panic!("{name}: {:?}", sys.status(&name)))
                .name,
            "orderCompleted"
        );
    }
    for shard in 0..sys.shard_count() {
        let recovered = sys.shard_stats(shard).recovered_instances;
        if shard == victim_shard {
            assert!(recovered >= 3, "three restarts must replay: {recovered}");
        } else {
            assert_eq!(recovered, 0, "shard {shard} recovered spuriously");
        }
    }
}

/// Repeated kill-one-shard cycles under traffic, resolved by
/// crash-driven adoption instead of node restarts: a four-shard fleet
/// loses one coordinator, its population is claimed out of the
/// surviving storage and adopted, new orders keep arriving at the
/// shrunken fleet — then a second shard dies the same way. Zero lost
/// outcomes: every instance (started before, between or after the
/// kills) must end with the same outcome bytes as a run that never saw
/// a failure.
#[test]
fn repeated_shard_kills_with_adoption_lose_no_outcomes() {
    let names: Vec<String> = (0..12).map(|i| format!("wf-{i}")).collect();
    let start = |sys: &mut WorkflowSystem, name: &str| {
        sys.start(
            name,
            "order",
            "main",
            [("order", ObjectVal::text("Order", name))],
        )
        .unwrap();
    };

    // The no-failure reference: outcomes are pure functions of the
    // invocation, so they must survive any number of adoptions.
    let expected: Vec<Vec<u8>> = {
        let mut sys = sharded_order_system(5, 4, 8);
        for name in &names {
            start(&mut sys, name);
        }
        sys.run();
        names
            .iter()
            .map(|name| flowscript_codec::to_bytes(&sys.status(name).unwrap()))
            .collect()
    };

    let mut sys = sharded_order_system(5, 4, 8);
    for name in &names[..8] {
        start(&mut sys, name);
    }
    sys.run_for(SimDuration::from_millis(20));

    // Cycle 1: kill a shard mid-traffic, adopt its population.
    let victim = sys.coordinator_nodes()[1];
    sys.crash_now(victim);
    let first = sys.adopt_dead_shard("coordinator1").expect("failover 1");

    // Traffic continues against the shrunken fleet.
    for name in &names[8..] {
        start(&mut sys, name);
    }
    sys.run_for(SimDuration::from_millis(30));

    // Cycle 2: another shard dies the same way.
    let victim = sys.coordinator_nodes()[1];
    sys.crash_now(victim);
    let second = sys.adopt_dead_shard("coordinator2").expect("failover 2");
    assert_eq!(sys.shard_count(), 2);

    sys.run();
    for (name, expected) in names.iter().zip(&expected) {
        let status = sys.status(name).unwrap();
        assert_eq!(
            &flowscript_codec::to_bytes(&status),
            expected,
            "{name} lost or changed its outcome across the kill cycles"
        );
    }
    assert_eq!(
        sys.stats().adoptions,
        (first.adopted + second.adopted) as u64,
        "every adoption counted exactly once"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chaos_runs_always_reach_a_verdict(
        seed: u64,
        crashes in proptest::collection::vec((0u8..4, any::<u32>(), any::<u32>()), 0..3),
        partition_at in proptest::option::of(any::<u32>()),
    ) {
        if let Some((status, _)) = run_chaos(seed, &crashes, partition_at) {
            // Terminal either way; never Running after the queue drains.
            prop_assert!(status.is_terminal(), "non-terminal: {status:?}");
        }
    }

    #[test]
    fn chaos_runs_are_deterministic(
        seed: u64,
        crashes in proptest::collection::vec((0u8..4, any::<u32>(), any::<u32>()), 0..3),
    ) {
        let run1 = run_chaos(seed, &crashes, None);
        let run2 = run_chaos(seed, &crashes, None);
        prop_assert_eq!(run1, run2);
    }

    #[test]
    fn completed_chaos_runs_have_consistent_final_state(
        seed: u64,
        crashes in proptest::collection::vec((1u8..4, any::<u32>(), any::<u32>()), 0..2),
    ) {
        // Executor-only crashes with generous retries: the order should
        // usually complete; when it does, the final state must be
        // consistent (all tasks terminal, outcome objects present).
        let mut sys = order_system(seed, 8);
        let plan = fault_plan(&sys, &crashes, None);
        plan.apply(sys.world_mut());
        sys.start("o", "order", "main", [("order", ObjectVal::text("Order", "o"))]).unwrap();
        sys.run();
        if let InstanceStatus::Completed(outcome) = sys.status("o").unwrap() {
            prop_assert_eq!(&outcome.name, "orderCompleted");
            prop_assert!(outcome.objects.contains_key("dispatchNote"));
            for (path, state) in sys.task_states("o") {
                prop_assert!(state.is_terminal(), "{} not terminal: {:?}", path, state);
                // No task may be Failed in a completed run of this script
                // (every task feeds the outcome chain).
                prop_assert!(
                    !matches!(state, CbState::Failed { .. }),
                    "{} failed in a completed run", path
                );
            }
        }
    }
}
