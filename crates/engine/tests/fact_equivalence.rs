//! Per-object / whole-record fact storage equivalence.
//!
//! Splitting dependency facts into per-object sub-keys is only allowed
//! to be a *layout* of the same execution — never a different one. For
//! the fig. 7 (order processing) and fig. 8 (business trip, compound
//! repeat) workloads, 1 and 4 coordinator shards, a one-shard crash
//! with recovery, a mid-run reconfiguration, and randomized generated
//! workflows, a `whole_record_facts` system and a per-object system
//! must produce **byte-identical per-instance outcomes, dispatch
//! traces and task states**.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{
    CbState, InstanceStatus, ObjectVal, Reconfig, TaskBehavior, WorkflowSystem,
};
use flowscript_sim::net::LinkConfig;
use flowscript_sim::SimDuration;
use proptest::prelude::*;

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

fn config(whole_record: bool) -> EngineConfig {
    EngineConfig {
        dispatch_timeout: SimDuration::from_millis(500),
        retry_backoff: SimDuration::from_millis(10),
        record_dispatches: true,
        whole_record_facts: whole_record,
        ..EngineConfig::default()
    }
}

fn builder(whole_record: bool, shards: usize, seed: u64) -> WorkflowSystem {
    WorkflowSystem::builder()
        .executors(3)
        .coordinators(shards)
        .seed(seed)
        .link(LinkConfig {
            base_latency: SimDuration::from_micros(200),
            jitter: SimDuration::ZERO,
            drop_prob: 0.0,
        })
        .config(config(whole_record))
        .build()
}

/// Everything observable about one instance: terminal status, ordered
/// `(path, attempt)` dispatch trace, final task states.
type Fingerprint = (
    InstanceStatus,
    Vec<(String, u32)>,
    BTreeMap<String, CbState>,
);

fn fingerprints(sys: &WorkflowSystem, names: &[String]) -> BTreeMap<String, Fingerprint> {
    names
        .iter()
        .map(|name| {
            let status = sys.status(name).expect("instance known");
            let trace = sys
                .dispatch_trace_of(name)
                .into_iter()
                .map(|d| (d.path, d.attempt))
                .collect();
            (name.clone(), (status, trace, sys.task_states(name)))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 7 order processing (wide join on checkStock + authorisation).
// ---------------------------------------------------------------------

fn order_sys(whole_record: bool, shards: usize) -> WorkflowSystem {
    let mut sys = builder(whole_record, shards, 42);
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(30))
            .with_object("paymentInfo", text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_millis(30))
            .with_object("stockInfo", text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(30))
            .with_object("dispatchNote", text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
    sys
}

// ---------------------------------------------------------------------
// Fig. 8 business trip (alternatives, compensation, compound repeat).
// ---------------------------------------------------------------------

fn trip_sys(whole_record: bool, shards: usize, hotel_failures: u32) -> WorkflowSystem {
    let mut sys = builder(whole_record, shards, 43);
    sys.register_script("trip", samples::BUSINESS_TRIP, "tripReservation")
        .unwrap();
    sys.bind_fn("refDataAcquisition", |_| {
        TaskBehavior::outcome("acquired").with_object("tripData", text("TripData", "t"))
    });
    sys.bind_fn("refAirlineQueryA", |_| {
        TaskBehavior::outcome("notFound").with_work(SimDuration::from_millis(5))
    });
    sys.bind_fn("refAirlineQueryB", |_| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(12))
            .with_object("flightList", text("FlightList", "fl"))
    });
    sys.bind_fn("refAirlineQueryC", |_| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(30))
            .with_object("flightList", text("FlightList", "fl2"))
    });
    sys.bind_fn("refFlightReservation", |_| {
        TaskBehavior::outcome("reserved")
            .with_object("plane", text("Plane", "p"))
            .with_object("cost", text("Cost", "c"))
    });
    let remaining = Rc::new(Cell::new(hotel_failures));
    sys.bind_fn("refHotelReservation", move |_| {
        if remaining.get() > 0 {
            remaining.set(remaining.get() - 1);
            TaskBehavior::outcome("failed")
        } else {
            TaskBehavior::outcome("hotelBooked").with_object("hotel", text("Hotel", "h"))
        }
    });
    sys.bind_fn("refFlightCancellation", |_| {
        TaskBehavior::outcome("cancelled")
    });
    sys.bind_fn("refPrintTickets", |_| {
        TaskBehavior::outcome("printed").with_object("tickets", text("Tickets", "tk"))
    });
    sys
}

#[test]
fn fig7_fig8_match_whole_record_baseline_across_shard_counts() {
    let names: Vec<String> = (0..6).map(|i| format!("wf{i}")).collect();
    for shards in [1usize, 4] {
        // Fig. 7.
        let run_order = |whole: bool| {
            let mut sys = order_sys(whole, shards);
            for name in &names {
                sys.start(name, "order", "main", [("order", text("Order", "o"))])
                    .unwrap();
            }
            sys.run();
            fingerprints(&sys, &names)
        };
        let baseline = run_order(true);
        let per_object = run_order(false);
        assert_eq!(per_object, baseline, "fig7, {shards} shards");
        for (name, (status, trace, _)) in &per_object {
            assert!(
                matches!(status, InstanceStatus::Completed(o) if o.name == "orderCompleted"),
                "{name}: {status:?}"
            );
            assert!(!trace.is_empty());
        }
        // Fig. 8 with two hotel failures (two compound repeats, subtree
        // resets range-deleting per-object facts).
        let run_trip = |whole: bool| {
            let mut sys = trip_sys(whole, shards, 2);
            sys.start("t0", "trip", "main", [("user", text("User", "u"))])
                .unwrap();
            sys.run();
            assert!(sys.stats().repeats >= 2, "fig8 must repeat");
            fingerprints(&sys, &["t0".to_string()])
        };
        let baseline = run_trip(true);
        let per_object = run_trip(false);
        assert_eq!(per_object, baseline, "fig8, {shards} shards");
        assert!(matches!(&per_object["t0"].0, InstanceStatus::Completed(o) if o.name == "booked"));
    }
}

#[test]
fn one_shard_crash_recovery_matches_whole_record_baseline() {
    let names: Vec<String> = (0..8).map(|i| format!("wf{i}")).collect();
    let run = |whole: bool| {
        let mut sys = order_sys(whole, 4);
        for name in &names {
            sys.start(name, "order", "main", [("order", text("Order", "o"))])
                .unwrap();
        }
        // Crash the shard owning wf0 while work is in flight, let the
        // others keep committing, then recover it from its own WAL.
        let victim = sys.coordinator_node_for("wf0");
        sys.run_for(SimDuration::from_millis(45));
        sys.crash_now(victim);
        sys.run_for(SimDuration::from_millis(100));
        sys.restart_now(victim);
        sys.run();
        assert!(sys.stats().recovered_instances > 0, "recovery must run");
        fingerprints(&sys, &names)
    };
    let baseline = run(true);
    let per_object = run(false);
    assert_eq!(per_object, baseline);
    for (name, (status, _, _)) in &per_object {
        assert!(
            matches!(status, InstanceStatus::Completed(o) if o.name == "orderCompleted"),
            "{name}: {status:?}"
        );
    }
}

#[test]
fn midrun_reconfiguration_matches_whole_record_baseline() {
    // The paper's §2 scenario: add t5 to a running Fig. 1 diamond. The
    // reconfiguration remaps every persisted fact onto the re-lowered
    // plan's ids — task ids shift, and per-object sub-keys move with
    // their parent fact.
    let run = |whole: bool| {
        let mut sys = builder(whole, 1, 61);
        sys.register_script("diamond", samples::FIG1_DIAMOND, "diamond")
            .unwrap();
        for code in ["refT1", "refT2", "refT3", "refT4"] {
            sys.bind_fn(code, |ctx| {
                TaskBehavior::outcome("done")
                    .with_work(SimDuration::from_millis(10))
                    .with_object(
                        "out",
                        ObjectVal::text("Data", format!("{}:{}", ctx.path, ctx.attempt)),
                    )
            });
        }
        sys.bind_fn("refT5", |ctx| {
            TaskBehavior::outcome("done").with_object(
                "out",
                ObjectVal::text(
                    "Data",
                    format!("t5({},{})", ctx.input_text("left"), ctx.input_text("right")),
                ),
            )
        });
        sys.start("d1", "diamond", "main", [("seed", text("Data", "s"))])
            .unwrap();
        sys.run_for(SimDuration::from_millis(15));
        sys.reconfigure(
            "d1",
            Reconfig::AddTask {
                scope_path: "diamond".into(),
                task_source: r#"
                    task t5 of taskclass Join {
                        implementation { "code" is "refT5" };
                        inputs {
                            input main {
                                inputobject left from { out of task t2 if output done };
                                inputobject right from { out of task t4 if output done }
                            }
                        }
                    }
                "#
                .into(),
            },
        )
        .unwrap();
        sys.run();
        assert_eq!(sys.stats().reconfigs, 1);
        fingerprints(&sys, &["d1".to_string()])
    };
    let baseline = run(true);
    let per_object = run(false);
    assert_eq!(per_object, baseline);
    let (status, trace, states) = &per_object["d1"];
    assert!(status.is_terminal(), "{status:?}");
    assert!(trace.iter().any(|(path, _)| path == "diamond/t5"));
    // t5 either finishes or is cancelled by the root terminating first
    // — identically in both layouts either way.
    assert!(
        matches!(
            states["diamond/t5"],
            CbState::Done { .. } | CbState::Cancelled
        ),
        "t5 state: {:?}",
        states["diamond/t5"]
    );
}

// ---------------------------------------------------------------------
// Randomized workflows (same generator shape as the sharding
// equivalence proptest: repeat loops, AnyOf alternatives, aborts, a
// nested compound).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct StageParams {
    repeats: u32,
    any_of: bool,
    alt: bool,
    abort: bool,
}

fn stage_params(seed: u64, i: usize) -> StageParams {
    let bits = seed >> ((i * 6) % 58);
    StageParams {
        repeats: (bits & 0b11) as u32 % 3,
        any_of: bits & 0b100 != 0,
        alt: bits & 0b1000 != 0,
        abort: bits & 0b11_0000 == 0b11_0000,
    }
}

fn generated_script(n: usize, seed: u64) -> String {
    let mut source = String::from(
        r#"class Data;
taskclass Stage {
    inputs { input main { in of class Data } };
    outputs {
        outcome done { out of class Data };
        outcome alt { out of class Data };
        abort outcome failed { };
        repeat outcome again { p of class Data }
    }
}
taskclass Inner {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
"#,
    );
    for i in 0..n {
        let from = if i == 0 {
            "inputobject in from { seed of task root if input main }".to_string()
        } else if stage_params(seed, i).any_of {
            format!(
                "inputobject in from {{ out of task t{prev}; seed of task root if input main }}",
                prev = i - 1
            )
        } else {
            format!(
                "inputobject in from {{ out of task t{prev} if output done; seed of task root if input main }}",
                prev = i - 1
            )
        };
        source.push_str(&format!(
            "    task t{i} of taskclass Stage {{\n        implementation {{ \"code\" is \"ref{i}\" }};\n        inputs {{ input main {{ {from} }} }}\n    }};\n"
        ));
    }
    source.push_str(&format!(
        r#"    compoundtask comp of taskclass Inner {{
        inputs {{ input main {{ inputobject in from {{ seed of task root if input main }} }} }};
        task inner of taskclass Inner {{
            implementation {{ "code" is "refInner" }};
            inputs {{ input main {{ inputobject in from {{ in of task comp if input main }} }} }}
        }};
        outputs {{
            outcome done {{ outputobject out from {{ out of task inner if output done }} }}
        }}
    }};
    outputs {{ outcome done {{ notification from {{ task t{last} if output done }}; notification from {{ task comp if output done }} }} }}
}}
"#,
        last = n - 1
    ));
    source
}

fn bind_stages(sys: &WorkflowSystem, n: usize, seed: u64) {
    for i in 0..n {
        let params = stage_params(seed, i);
        sys.bind_fn(&format!("ref{i}"), move |ctx| {
            if ctx.attempt < params.repeats {
                TaskBehavior::outcome("again")
                    .with_object("p", ObjectVal::text("Data", ctx.attempt.to_string()))
                    .with_redo_after(SimDuration::from_millis(20))
            } else if params.abort {
                TaskBehavior::outcome("failed")
            } else if params.alt {
                TaskBehavior::outcome("alt").with_object("out", ObjectVal::text("Data", "alt"))
            } else {
                TaskBehavior::outcome("done").with_object("out", ObjectVal::text("Data", "done"))
            }
        });
    }
    sys.bind_fn("refInner", |ctx| {
        TaskBehavior::outcome("done")
            .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
    });
}

fn run_generated(
    whole_record: bool,
    shards: usize,
    n: usize,
    seed: u64,
    script: &str,
    names: &[String],
) -> BTreeMap<String, Fingerprint> {
    let mut sys = builder(whole_record, shards, 42);
    sys.register_script("g", script, "root")
        .expect("generated script compiles");
    bind_stages(&sys, n, seed);
    for name in names {
        sys.start(name, "g", "main", [("seed", ObjectVal::text("Data", "s"))])
            .expect("instance starts");
    }
    sys.run();
    fingerprints(&sys, names)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn per_object_storage_matches_whole_record_baseline(
        shards in prop_oneof![Just(1usize), Just(4usize)],
        n in 1usize..4,
        seed in any::<u64>(),
        salts in proptest::collection::vec(any::<u64>(), 2..5),
    ) {
        let script = generated_script(n, seed);
        let names: Vec<String> = salts
            .iter()
            .enumerate()
            .map(|(i, salt)| format!("wf{i}-{salt:016x}"))
            .collect();
        let baseline = run_generated(true, shards, n, seed, &script, &names);
        let per_object = run_generated(false, shards, n, seed, &script, &names);
        prop_assert_eq!(&per_object, &baseline, "shards={} n={} seed={}", shards, n, seed);
        for (name, (status, trace, _)) in &per_object {
            prop_assert!(status.is_terminal(), "{}: {:?}", name, status);
            prop_assert!(!trace.is_empty(), "{} never dispatched", name);
        }
    }
}
