//! Group-commit batching must be **behaviour-preserving and
//! observable**: for the fig. 7 (order processing) and fig. 8 (business
//! trip) workloads across shard counts, per-instance outcomes, dispatch
//! traces and task states must be byte-identical between the batched
//! (default) and unbatched (`CommitBatch::disabled`, today's
//! one-frame-per-commit) arms; randomized scripts must agree too; the
//! batch metrics (`coord.batch_size`, `wal.bytes_per_frame`,
//! `tx.group_commits`) must flow through the registry and exports;
//! `Commit` trace events must carry the batch id; and a coordinator
//! crash in the middle of an open batch window must lose the unflushed
//! window **as a unit** — no partial batch ever visible — while
//! committed group frames replay fully.

use std::collections::BTreeMap;

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{
    CbState, CommitBatch, InstanceStatus, ObjectVal, ObsEventKind, ObserveLevel, TaskBehavior,
    WorkflowSystem,
};
use flowscript_sim::net::LinkConfig;
use flowscript_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// A fully deterministic link: batched-vs-unbatched comparisons must
/// not depend on shared-RNG jitter draws, only on the pipeline.
fn det_link() -> LinkConfig {
    LinkConfig {
        base_latency: SimDuration::from_micros(200),
        jitter: SimDuration::ZERO,
        drop_prob: 0.0,
    }
}

fn arm_config(batch: CommitBatch) -> EngineConfig {
    EngineConfig {
        dispatch_timeout: SimDuration::from_millis(400),
        retry_backoff: SimDuration::from_millis(20),
        record_dispatches: true,
        observe: ObserveLevel::Metrics,
        commit_batch: batch,
        ..EngineConfig::default()
    }
}

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

/// Fig. 7 bindings (pure functions of the invocation).
fn bind_order(sys: &WorkflowSystem) {
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(30))
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_millis(45))
            .with_object("stockInfo", ObjectVal::text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(25))
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
}

/// Fig. 8 bindings; a `retry` marker in the instance's `user` input
/// makes the hotel fail in incarnation 0, driving the Fig. 8
/// compensate-and-repeat loop exactly once for that instance.
fn bind_trip(sys: &WorkflowSystem) {
    sys.bind_fn("refDataAcquisition", |ctx| {
        TaskBehavior::outcome("acquired").with_object(
            "tripData",
            ObjectVal::text("TripData", ctx.input_text("user")),
        )
    });
    sys.bind_fn("refAirlineQueryA", |_| {
        TaskBehavior::outcome("notFound").with_work(SimDuration::from_millis(5))
    });
    sys.bind_fn("refAirlineQueryB", |ctx| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(12))
            .with_object(
                "flightList",
                ObjectVal::text("FlightList", ctx.input_text("tripData")),
            )
    });
    sys.bind_fn("refAirlineQueryC", |ctx| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(30))
            .with_object(
                "flightList",
                ObjectVal::text("FlightList", ctx.input_text("tripData")),
            )
    });
    sys.bind_fn("refFlightReservation", |ctx| {
        TaskBehavior::outcome("reserved")
            .with_object(
                "plane",
                ObjectVal::text("Plane", ctx.input_text("flightList")),
            )
            .with_object("cost", ObjectVal::text("Cost", "c"))
    });
    sys.bind_fn("refHotelReservation", |ctx| {
        let wants_retry = ctx.input_text("plane").contains("retry");
        if wants_retry && ctx.incarnation == 0 {
            TaskBehavior::outcome("failed")
        } else {
            TaskBehavior::outcome("hotelBooked").with_object("hotel", ObjectVal::text("Hotel", "h"))
        }
    });
    sys.bind_fn("refFlightCancellation", |_| {
        TaskBehavior::outcome("cancelled")
    });
    sys.bind_fn("refPrintTickets", |_| {
        TaskBehavior::outcome("printed").with_object("tickets", ObjectVal::text("Tickets", "tk"))
    });
}

fn build(coordinators: usize, config: EngineConfig) -> WorkflowSystem {
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .coordinators(coordinators)
        .seed(7)
        .link(det_link())
        .config(config)
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.register_script("trip", samples::BUSINESS_TRIP, "tripReservation")
        .unwrap();
    bind_order(&sys);
    bind_trip(&sys);
    sys
}

/// `(name, script)` for a mixed fig. 7 / fig. 8 population, including
/// one fig. 8 instance that takes the compensate-and-repeat loop.
fn population() -> Vec<(String, &'static str)> {
    let mut all = Vec::new();
    for i in 0..8 {
        all.push((format!("order-{i}"), "order"));
    }
    for i in 0..3 {
        all.push((format!("trip-{i}"), "trip"));
    }
    all.push(("trip-retry-x".to_string(), "trip"));
    all
}

fn start_population(sys: &mut WorkflowSystem) {
    for (name, script) in population() {
        match script {
            "order" => sys
                .start(&name, "order", "main", [("order", text("Order", &name))])
                .unwrap(),
            _ => sys
                .start(&name, "trip", "main", [("user", text("User", &name))])
                .unwrap(),
        }
    }
}

/// Per-instance fingerprint: encoded terminal status bytes, the ordered
/// dispatch trace, and every task state.
type Fingerprint = (Vec<u8>, Vec<(String, u32)>, BTreeMap<String, CbState>);

fn fingerprint(sys: &WorkflowSystem, instance: &str) -> Fingerprint {
    let status = sys.status(instance).expect("instance known");
    assert!(status.is_terminal(), "{instance} not terminal: {status:?}");
    let status_bytes = flowscript_codec::to_bytes(&status);
    let trace = sys
        .dispatch_trace_of(instance)
        .into_iter()
        .map(|d| (d.path, d.attempt))
        .collect();
    (status_bytes, trace, sys.task_states(instance))
}

fn run_arm(coordinators: usize, batch: CommitBatch) -> BTreeMap<String, Fingerprint> {
    let mut sys = build(coordinators, arm_config(batch));
    start_population(&mut sys);
    sys.run();
    population()
        .into_iter()
        .map(|(name, _)| {
            let print = fingerprint(&sys, &name);
            (name, print)
        })
        .collect()
}

#[test]
fn batched_matches_unbatched_on_fig7_fig8_across_shards() {
    for coordinators in [1usize, 4] {
        let unbatched = run_arm(coordinators, CommitBatch::disabled());
        let batched = run_arm(coordinators, CommitBatch::default());
        // Sanity: the baseline actually ran everything.
        for (name, (status_bytes, trace, _)) in &unbatched {
            assert!(!trace.is_empty(), "{name} never dispatched");
            assert!(!status_bytes.is_empty());
        }
        assert_eq!(
            unbatched, batched,
            "batched arm diverged at {coordinators} shard(s)"
        );
    }
}

#[test]
fn batch_metrics_flow_through_registry_and_exports() {
    let mut sys = build(1, arm_config(CommitBatch::default()));
    start_population(&mut sys);
    sys.run();
    let snapshot = sys.metrics_snapshot();
    assert!(
        snapshot.counter("tx.group_commits") > 0,
        "multi-record WAL group frames must have been written"
    );
    let batch_size = snapshot
        .histogram("coord.batch_size")
        .expect("batch-size histogram present");
    assert!(batch_size.count > 0, "flushes must sample their size");
    assert!(
        batch_size.max > 1,
        "concurrent completions must have coalesced into one flush"
    );
    let frame_bytes = snapshot
        .histogram("wal.bytes_per_frame")
        .expect("frame-size histogram present");
    assert!(frame_bytes.count > 0, "appends must sample frame sizes");
    // Export formats carry the new series.
    let json = snapshot.to_json();
    assert!(json.contains("\"coord.batch_size\""));
    assert!(json.contains("\"tx.group_commits\""));
    let csv = snapshot.to_csv();
    assert!(csv.contains("tx.group_commits,counter"));
    assert!(csv.contains("coord.batch_size,histogram"));
}

#[test]
fn unbatched_arm_writes_no_group_frames() {
    let mut sys = build(1, arm_config(CommitBatch::disabled()));
    start_population(&mut sys);
    sys.run();
    let snapshot = sys.metrics_snapshot();
    assert_eq!(
        snapshot.counter("tx.group_commits"),
        0,
        "the baseline arm must reproduce one-frame-per-commit exactly"
    );
    assert_eq!(
        snapshot
            .histogram("coord.batch_size")
            .map(|h| h.count)
            .unwrap_or(0),
        0,
        "no batch ever forms with batching off"
    );
}

#[test]
fn commit_trace_events_carry_batch_ids() {
    let run = |batch: CommitBatch| -> Vec<Option<u64>> {
        let mut config = arm_config(batch);
        config.observe = ObserveLevel::Trace;
        let mut sys = build(1, config);
        start_population(&mut sys);
        sys.run();
        population()
            .into_iter()
            .flat_map(|(name, _)| sys.trace(&name))
            .filter_map(|event| match event.kind {
                ObsEventKind::Commit { batch, .. } => Some(batch),
                _ => None,
            })
            .collect()
    };
    let batched = run(CommitBatch::default());
    assert!(!batched.is_empty(), "commits must be traced");
    assert!(
        batched.iter().any(|batch| batch.is_some()),
        "batched commits must be stamped with their flush's id"
    );
    let stamped: Vec<u64> = batched.into_iter().flatten().collect();
    assert!(
        stamped.windows(2).any(|w| w[0] == w[1]),
        "some batch id must cover more than one commit (coalescing visible in traces)"
    );
    let unbatched = run(CommitBatch::disabled());
    assert!(!unbatched.is_empty(), "commits must be traced");
    assert!(
        unbatched.iter().all(|batch| batch.is_none()),
        "the baseline arm has no batches to stamp"
    );
}

#[test]
fn crash_mid_window_loses_the_batch_as_a_unit_and_recovers() {
    // A huge window so reports sit buffered: the first fig. 7
    // completion lands at ~30 ms and would not flush until ~5 s.
    let window = CommitBatch {
        max_events: 10_000,
        max_window: SimDuration::from_secs(5),
    };
    let mut sys = build(1, arm_config(window));
    sys.start(
        "crash-order",
        "order",
        "main",
        [("order", text("Order", "crash-order"))],
    )
    .unwrap();
    // Pause mid-window: completions have reported, nothing flushed.
    sys.run_until(SimTime::from_nanos(200 * 1_000_000));
    let states = sys.task_states("crash-order");
    assert!(
        !states.is_empty(),
        "dispatch commits (outside the window) must be durable"
    );
    assert!(
        states
            .values()
            .all(|state| !matches!(state, CbState::Done { .. } | CbState::Aborted { .. })),
        "no buffered report may be partially applied before its batch commits: {states:?}"
    );
    // The coordinator dies with the window open: the unflushed reports
    // vanish as a unit, committed frames replay fully.
    let coordinator = sys.coordinator_node();
    sys.crash_now(coordinator);
    sys.restart_now(coordinator);
    sys.run();
    let status = sys.status("crash-order").expect("instance recovered");
    assert!(
        matches!(status, InstanceStatus::Completed(_)),
        "recovery must re-dispatch and complete: {status:?}"
    );
    // The crashed-and-recovered run converges to the same terminal task
    // states as an undisturbed unbatched run.
    let mut clean = build(1, arm_config(CommitBatch::disabled()));
    clean
        .start(
            "crash-order",
            "order",
            "main",
            [("order", text("Order", "crash-order"))],
        )
        .unwrap();
    clean.run();
    assert_eq!(
        sys.task_states("crash-order"),
        clean.task_states("crash-order"),
        "exactly-once outcome application across the crash"
    );
}

#[test]
fn durable_file_wal_survives_crash_and_replays_group_frames() {
    // Same crash-and-recover contract, but on the file-backed stable
    // store: every flushed frame is an fdatasync'ed write to
    // `shard0.wal`, and recovery replays the on-disk log.
    let dir = std::env::temp_dir().join(format!("fs-batch-durable-{}", std::process::id()));
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .coordinators(1)
        .seed(7)
        .link(det_link())
        .config(arm_config(CommitBatch::default()))
        .wal_dir(&dir)
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    bind_order(&sys);
    sys.start(
        "durable-order",
        "order",
        "main",
        [("order", text("Order", "durable-order"))],
    )
    .unwrap();
    // Crash mid-run: dispatches and early completions are on disk,
    // whatever sat in an open batch window is lost as a unit.
    sys.run_until(SimTime::from_nanos(60 * 1_000_000));
    let coordinator = sys.coordinator_node();
    sys.crash_now(coordinator);
    sys.restart_now(coordinator);
    sys.run();
    let status = sys.status("durable-order").expect("instance recovered");
    assert!(
        matches!(status, InstanceStatus::Completed(_)),
        "recovery over the file log must re-dispatch and complete: {status:?}"
    );
    let wal = std::fs::metadata(dir.join("shard0.wal")).expect("shard log exists on disk");
    assert!(wal.len() > 0, "synced frames must be on disk");
    // Converges to the same terminal states as an undisturbed
    // in-memory unbatched run.
    let mut clean = build(1, arm_config(CommitBatch::disabled()));
    clean
        .start(
            "durable-order",
            "order",
            "main",
            [("order", text("Order", "durable-order"))],
        )
        .unwrap();
    clean.run();
    assert_eq!(
        sys.task_states("durable-order"),
        clean.task_states("durable-order"),
        "file-backed recovery must agree with the in-memory baseline"
    );
    drop(sys);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Randomized equivalence: batched vs unbatched on generated scripts.
// ---------------------------------------------------------------------

/// Per-stage behaviour parameters, derived from the case seed.
#[derive(Debug, Clone, Copy)]
struct StageParams {
    repeats: u32,
    any_of: bool,
    alt: bool,
    abort: bool,
}

fn stage_params(seed: u64, i: usize) -> StageParams {
    let bits = seed >> ((i * 6) % 58);
    StageParams {
        repeats: (bits & 0b11) as u32 % 3,
        any_of: bits & 0b100 != 0,
        alt: bits & 0b1000 != 0,
        abort: bits & 0b11_0000 == 0b11_0000,
    }
}

/// A chain of `n` stages plus a nested compound, all feeding the root's
/// `done` notification (the worklist-equivalence proptest's shape).
fn generated_script(n: usize, seed: u64) -> String {
    let mut source = String::from(
        r#"class Data;
taskclass Stage {
    inputs { input main { in of class Data } };
    outputs {
        outcome done { out of class Data };
        outcome alt { out of class Data };
        abort outcome failed { };
        repeat outcome again { p of class Data }
    }
}
taskclass Inner {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
"#,
    );
    for i in 0..n {
        let from = if i == 0 {
            "inputobject in from { seed of task root if input main }".to_string()
        } else if stage_params(seed, i).any_of {
            format!(
                "inputobject in from {{ out of task t{prev}; seed of task root if input main }}",
                prev = i - 1
            )
        } else {
            format!(
                "inputobject in from {{ out of task t{prev} if output done; seed of task root if input main }}",
                prev = i - 1
            )
        };
        source.push_str(&format!(
            "    task t{i} of taskclass Stage {{\n        implementation {{ \"code\" is \"ref{i}\" }};\n        inputs {{ input main {{ {from} }} }}\n    }};\n"
        ));
    }
    source.push_str(&format!(
        r#"    compoundtask comp of taskclass Inner {{
        inputs {{ input main {{ inputobject in from {{ seed of task root if input main }} }} }};
        task inner of taskclass Inner {{
            implementation {{ "code" is "refInner" }};
            inputs {{ input main {{ inputobject in from {{ in of task comp if input main }} }} }}
        }};
        outputs {{
            outcome done {{ outputobject out from {{ out of task inner if output done }} }}
        }}
    }};
    outputs {{ outcome done {{ notification from {{ task t{last} if output done }}; notification from {{ task comp if output done }} }} }}
}}
"#,
        last = n - 1
    ));
    source
}

fn bind_stages(sys: &WorkflowSystem, n: usize, seed: u64) {
    for i in 0..n {
        let params = stage_params(seed, i);
        sys.bind_fn(&format!("ref{i}"), move |ctx| {
            if ctx.attempt < params.repeats {
                TaskBehavior::outcome("again")
                    .with_object("p", ObjectVal::text("Data", ctx.attempt.to_string()))
                    .with_redo_after(SimDuration::from_millis(20))
            } else if params.abort {
                TaskBehavior::outcome("failed")
            } else if params.alt {
                TaskBehavior::outcome("alt").with_object("out", ObjectVal::text("Data", "alt"))
            } else {
                TaskBehavior::outcome("done").with_object("out", ObjectVal::text("Data", "done"))
            }
        });
    }
    sys.bind_fn("refInner", |ctx| {
        TaskBehavior::outcome("done")
            .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
    });
}

type GenFingerprint = (
    InstanceStatus,
    Vec<(String, u32)>,
    BTreeMap<String, CbState>,
);

fn run_generated(
    coordinators: usize,
    n: usize,
    seed: u64,
    script: &str,
    names: &[String],
    batch: CommitBatch,
) -> BTreeMap<String, GenFingerprint> {
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_millis(500),
        retry_backoff: SimDuration::from_millis(10),
        record_dispatches: true,
        commit_batch: batch,
        ..Default::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .coordinators(coordinators)
        .seed(42)
        .link(det_link())
        .config(config)
        .build();
    sys.register_script("g", script, "root")
        .expect("generated script compiles");
    bind_stages(&sys, n, seed);
    for name in names {
        sys.start(name, "g", "main", [("seed", ObjectVal::text("Data", "s"))])
            .expect("instance starts");
    }
    sys.run();
    names
        .iter()
        .map(|name| {
            let status = sys.status(name).expect("instance known");
            let trace = sys
                .dispatch_trace_of(name)
                .into_iter()
                .map(|d| (d.path, d.attempt))
                .collect();
            (name.clone(), (status, trace, sys.task_states(name)))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn batched_matches_unbatched_on_generated_scripts(
        k in 1usize..5,
        n in 1usize..4,
        seed in any::<u64>(),
        salts in proptest::collection::vec(any::<u64>(), 2..6),
    ) {
        let script = generated_script(n, seed);
        let names: Vec<String> = salts
            .iter()
            .enumerate()
            .map(|(i, salt)| format!("wf{i}-{salt:016x}"))
            .collect();
        let unbatched = run_generated(k, n, seed, &script, &names, CommitBatch::disabled());
        let batched = run_generated(k, n, seed, &script, &names, CommitBatch::default());
        prop_assert_eq!(&unbatched, &batched, "k={} n={} seed={}", k, n, seed);
        for (name, (status, trace, _)) in &unbatched {
            prop_assert!(status.is_terminal(), "{}: {:?}", name, status);
            prop_assert!(!trace.is_empty(), "{} never dispatched", name);
        }
    }
}
