//! Worklist / full-scan equivalence.
//!
//! The event-driven commit pipeline (reverse-edge worklist seeding) is
//! only allowed to be a *faster* scheduling of the same decisions the
//! full scope-tree rescan makes — never a different execution. For
//! randomized workflows — chains with alternative and unconditioned
//! (`AnyOf`) sources, leaf repeat loops, abort outcomes, a nested
//! compound running the Fig. 8 repeat-on-failure loop — and optional
//! mid-run reconfigurations (including task removal, which shifts every
//! dense task id and exercises the fact-key remap), two identically
//! seeded systems — one event-driven, one with
//! `EngineConfig::full_rescan` — must produce **identical dispatch
//! traces**, identical final statuses and identical task states.
//!
//! (In debug builds every drain additionally asserts the quiescence
//! oracle: no startable task or satisfied output left behind.)

use std::cell::Cell;
use std::rc::Rc;

use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{ObjectVal, Reconfig, TaskBehavior, WorkflowSystem};
use flowscript_sim::SimDuration;
use proptest::prelude::*;

/// Per-stage behavior parameters, derived from the case seed.
#[derive(Debug, Clone, Copy)]
struct StageParams {
    /// Leaf repeat outcomes taken before completing.
    repeats: u32,
    /// Use an unconditioned source (compiles to `AnyOf` alternatives).
    any_of: bool,
    /// Complete with the `alt` outcome instead of `done`.
    alt: bool,
    /// Abort instead of completing (downstream falls back to the root
    /// seed source; the final notification can leave the run stuck —
    /// both modes must agree on that too).
    abort: bool,
}

fn stage_params(seed: u64, i: usize) -> StageParams {
    let bits = seed >> (i * 6);
    StageParams {
        repeats: (bits & 0b11) as u32 % 3,
        any_of: bits & 0b100 != 0,
        alt: bits & 0b1000 != 0,
        abort: bits & 0b11_0000 == 0b11_0000, // 1-in-4 per stage
    }
}

/// A chain of `n` stages plus a nested compound with a repeat-on-abort
/// loop, all feeding the root's `done` notification. Per-stage, the
/// upstream source is either conditioned (`if output done`) or
/// unconditioned — the latter compiles to `AnyOf` alternatives over
/// every Stage outcome carrying `out` (`done` and `alt`).
fn generated_script(n: usize, seed: u64) -> String {
    let mut source = String::from(
        r#"class Data;
taskclass Stage {
    inputs { input main { in of class Data } };
    outputs {
        outcome done { out of class Data };
        outcome alt { out of class Data };
        abort outcome failed { };
        repeat outcome again { p of class Data }
    }
}
taskclass Loop {
    inputs { input main { in of class Data } };
    outputs {
        outcome done { out of class Data };
        repeat outcome retry { in of class Data }
    }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
"#,
    );
    for i in 0..n {
        let from = if i == 0 {
            "inputobject in from { seed of task root if input main }".to_string()
        } else if stage_params(seed, i).any_of {
            format!(
                "inputobject in from {{ out of task t{prev}; seed of task root if input main }}",
                prev = i - 1
            )
        } else {
            format!(
                "inputobject in from {{ out of task t{prev} if output done; seed of task root if input main }}",
                prev = i - 1
            )
        };
        source.push_str(&format!(
            "    task t{i} of taskclass Stage {{\n        implementation {{ \"code\" is \"ref{i}\" }};\n        inputs {{ input main {{ {from} }} }}\n    }};\n"
        ));
    }
    // The nested compound: its inner stage aborting makes the compound
    // take its repeat outcome (Fig. 8), resetting the subtree.
    source.push_str(&format!(
        r#"    compoundtask comp of taskclass Loop {{
        inputs {{ input main {{ inputobject in from {{ seed of task root if input main }} }} }};
        task inner of taskclass Stage {{
            implementation {{ "code" is "refInner" }};
            inputs {{ input main {{ inputobject in from {{ in of task comp if input main }} }} }}
        }};
        outputs {{
            outcome done {{ outputobject out from {{ out of task inner if output done }} }};
            repeat outcome retry {{
                outputobject in from {{ in of task comp if input main }};
                notification from {{ task inner if output failed }}
            }}
        }}
    }};
    outputs {{ outcome done {{ notification from {{ task t{last} if output done }}; notification from {{ task comp if output done }} }} }}
}}
"#,
        last = n - 1
    ));
    source
}

fn bind_stage(sys: &WorkflowSystem, code: &str, params: StageParams) {
    let calls = Rc::new(Cell::new(0u32));
    sys.bind_fn(code, move |_| {
        let call = calls.get();
        calls.set(call + 1);
        if call < params.repeats {
            TaskBehavior::outcome("again")
                .with_object("p", ObjectVal::text("Data", call.to_string()))
                .with_redo_after(SimDuration::from_millis(20))
        } else if params.abort {
            TaskBehavior::outcome("failed")
        } else if params.alt {
            TaskBehavior::outcome("alt").with_object("out", ObjectVal::text("Data", "alt"))
        } else {
            TaskBehavior::outcome("done").with_object("out", ObjectVal::text("Data", "done"))
        }
    });
}

/// Builds one system; `inner_aborts` controls how many times the nested
/// compound's constituent fails (each failure = one compound repeat).
fn build(n: usize, seed: u64, full_rescan: bool, script: &str) -> WorkflowSystem {
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_millis(500),
        retry_backoff: SimDuration::from_millis(10),
        max_repeats: 6,
        full_rescan,
        record_dispatches: true,
        ..Default::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .seed(42) // identical virtual worlds; variation comes from `seed`
        .config(config)
        .build();
    sys.register_script("g", script, "root")
        .expect("generated script compiles");
    for i in 0..n {
        bind_stage(&sys, &format!("ref{i}"), stage_params(seed, i));
    }
    let inner_aborts = (seed >> 40) & 0b1; // 0 or 1 compound repeats
    let inner_calls = Rc::new(Cell::new(0u64));
    sys.bind_fn("refInner", move |_| {
        let call = inner_calls.get();
        inner_calls.set(call + 1);
        if call < inner_aborts {
            TaskBehavior::outcome("failed")
        } else {
            TaskBehavior::outcome("done").with_object("out", ObjectVal::text("Data", "inner"))
        }
    });
    sys.bind_fn("refExtra", |_| {
        TaskBehavior::outcome("done").with_object("out", ObjectVal::text("Data", "extra"))
    });
    sys
}

fn reconfig_op(choice: usize, n: usize) -> Option<Reconfig> {
    match choice {
        1 => Some(Reconfig::Rebind {
            code: "ref0".into(),
            to: "refExtra".into(),
        }),
        2 => Some(Reconfig::AddTask {
            scope_path: "root".into(),
            task_source: concat!(
                "task extra of taskclass Stage {\n",
                "    implementation { \"code\" is \"refExtra\" };\n",
                "    inputs { input main { inputobject in from { seed of task root if input main } } }\n",
                "}"
            )
            .into(),
        }),
        // Removing t0 shifts every later dense task id — the fact-key
        // remap must carry the committed facts across.
        3 if n >= 2 => Some(Reconfig::RemoveTask {
            task_path: "root/t0".into(),
        }),
        _ => None,
    }
}

fn run_one(
    n: usize,
    seed: u64,
    reconfig: usize,
    full_rescan: bool,
    script: &str,
) -> WorkflowSystem {
    let mut sys = build(n, seed, full_rescan, script);
    sys.start("i1", "g", "main", [("seed", ObjectVal::text("Data", "s"))])
        .expect("instance starts");
    if let Some(op) = reconfig_op(reconfig, n) {
        sys.run_for(SimDuration::from_millis(30));
        // A removal can be validly rejected depending on progress; both
        // modes see identical state, so both reject or both apply.
        let _ = sys.reconfigure("i1", op);
    }
    sys.run();
    sys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn worklist_matches_full_rescan(
        n in 1usize..4,
        seed in 0u64..(1u64 << 42),
        reconfig in 0usize..4,
    ) {
        let script = generated_script(n, seed);
        let event_driven = run_one(n, seed, reconfig, false, &script);
        let full_rescan = run_one(n, seed, reconfig, true, &script);

        // Identical dispatch traces: same tasks, same attempts, same order.
        let lhs: Vec<_> = event_driven
            .dispatch_trace()
            .into_iter()
            .map(|d| (d.path, d.attempt))
            .collect();
        let rhs: Vec<_> = full_rescan
            .dispatch_trace()
            .into_iter()
            .map(|d| (d.path, d.attempt))
            .collect();
        prop_assert_eq!(&lhs, &rhs);

        // Identical terminal verdicts and per-task states.
        prop_assert_eq!(
            event_driven.status("i1").unwrap(),
            full_rescan.status("i1").unwrap()
        );
        prop_assert_eq!(event_driven.task_states("i1"), full_rescan.task_states("i1"));
        prop_assert_eq!(
            event_driven.stats().dispatches,
            full_rescan.stats().dispatches
        );
        prop_assert_eq!(event_driven.stats().repeats, full_rescan.stats().repeats);
        // The whole point: the event-driven pipeline re-checks fewer
        // tasks than the per-commit full scan (never more).
        prop_assert!(
            event_driven.stats().evaluations <= full_rescan.stats().evaluations
        );
    }
}
