//! Administrative operations (the paper's admin applications): forced
//! aborts of waiting tasks (Fig. 3 wait-state abort) and versioned
//! instantiation from the repository.

use flowscript_core::samples;
use flowscript_engine::{CbState, EngineError, ObjectVal, TaskBehavior, WorkflowSystem};
use flowscript_sim::SimDuration;

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

#[test]
fn forced_abort_of_waiting_dispatch_cancels_order() {
    let mut sys = WorkflowSystem::builder().executors(3).seed(81).build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    // Authorisation is slow; stock never returns, so dispatch waits.
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_secs(5))
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_secs(60))
            .with_object("stockInfo", ObjectVal::text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
    sys.start("o1", "order", "main", [("order", text("Order", "o"))])
        .unwrap();
    // Let the instance get going; dispatch is still waiting for stock.
    sys.run_for(SimDuration::from_secs(1));
    let states = sys.task_states("o1");
    assert_eq!(states["processOrderApplication/dispatch"], CbState::Waiting);
    // A user forces the abort (Fig. 3's wait-state abort).
    sys.abort_waiting_task("o1", "processOrderApplication/dispatch", "dispatchFailed")
        .unwrap();
    sys.run();
    // The abort outcome notified orderCancelled.
    let outcome = sys.outcome("o1").expect("instance settles");
    assert_eq!(outcome.name, "orderCancelled");
    let states = sys.task_states("o1");
    assert_eq!(
        states["processOrderApplication/dispatch"],
        CbState::Aborted {
            outcome: "dispatchFailed".into()
        }
    );
}

#[test]
fn forced_abort_validates_outcome_kind_and_state() {
    let mut sys = WorkflowSystem::builder().executors(2).seed(82).build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_secs(60))
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_secs(60))
            .with_object("stockInfo", ObjectVal::text("StockInfo", "s"))
    });
    sys.start("o1", "order", "main", [("order", text("Order", "o"))])
        .unwrap();
    // `authorised` is not an abort outcome.
    let err = sys
        .abort_waiting_task("o1", "processOrderApplication/dispatch", "authorised")
        .unwrap_err();
    assert!(err.to_string().contains("not an abort outcome"), "{err}");
    // checkStock is Executing, not Waiting.
    let err = sys
        .abort_waiting_task("o1", "processOrderApplication/checkStock", "dispatchFailed")
        .unwrap_err();
    assert!(
        err.to_string().contains("not an abort outcome") || err.to_string().contains("not waiting")
    );
    // Unknown task.
    assert!(matches!(
        sys.abort_waiting_task("o1", "processOrderApplication/ghost", "x"),
        Err(EngineError::UnknownTask(_))
    ));
}

#[test]
fn versioned_instantiation_uses_the_requested_script() {
    // v1's pipeline root is `pipeline`; v2 is a different script whose
    // root differs — version selection must pick the right one.
    let mut sys = WorkflowSystem::builder().executors(2).seed(83).build();
    sys.register_script("app", samples::QUICKSTART, "pipeline")
        .unwrap();
    sys.register_script("app", samples::FIG1_DIAMOND, "diamond")
        .unwrap();

    sys.bind_fn("refProduce", |_| {
        TaskBehavior::outcome("produced").with_object("message", ObjectVal::text("Message", "m"))
    });
    sys.bind_fn("refConsume", |_| {
        TaskBehavior::outcome("consumed").with_object("result", ObjectVal::text("Message", "r"))
    });
    for t in ["refT1", "refT2", "refT3", "refT4"] {
        sys.bind_fn(t, |_| {
            TaskBehavior::outcome("done").with_object("out", ObjectVal::text("Data", "d"))
        });
    }

    // Explicit v1 runs the pipeline…
    sys.start_version("v1-run", "app", 1, "main", [("seed", text("Message", "s"))])
        .unwrap();
    // …while the latest (v2) runs the diamond.
    sys.start("latest-run", "app", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    assert_eq!(sys.outcome("v1-run").unwrap().name, "done");
    assert!(sys.task_states("v1-run").contains_key("pipeline/produce"));
    assert!(sys.task_states("latest-run").contains_key("diamond/t4"));

    // Unknown version is rejected.
    let err = sys
        .start_version("v9-run", "app", 9, "main", [("seed", text("Message", "s"))])
        .unwrap_err();
    assert!(err.to_string().contains("v9"), "{err}");
}
