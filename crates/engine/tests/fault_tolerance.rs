//! System-level fault tolerance (paper §3): tasks eventually receive
//! their inputs and notifications despite processor crashes and temporary
//! network failures; aborts caused by system problems are retried a
//! finite number of times; the coordinator recovers all state from its
//! write-ahead log.

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{CbState, InstanceStatus, ObjectVal, TaskBehavior, WorkflowSystem};
use flowscript_sim::{FaultAction, FaultPlan, SimDuration, SimTime};

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

/// Binds a chain-of-N workload built by the core builder.
fn chain_system(n: usize, seed: u64, config: EngineConfig) -> WorkflowSystem {
    let script = flowscript_core::builder::chain(n);
    let source = flowscript_core::fmt::format_script(&script);
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .seed(seed)
        .config(config)
        .build();
    sys.register_script("chain", &source, "root").unwrap();
    for i in 0..n {
        sys.bind_fn(
            &format!("ref{i}"),
            move |ctx: &flowscript_engine::InvokeCtx| {
                TaskBehavior::outcome("done")
                    .with_work(SimDuration::from_millis(20))
                    .with_object(
                        "out",
                        ObjectVal::text("Data", format!("{}+s{i}", ctx.input_text("in"))),
                    )
            },
        );
    }
    sys
}

fn snappy_config() -> EngineConfig {
    EngineConfig {
        dispatch_timeout: SimDuration::from_millis(500),
        retry_backoff: SimDuration::from_millis(20),
        ..EngineConfig::default()
    }
}

#[test]
fn executor_crash_retries_on_another_node() {
    let mut sys = chain_system(6, 7, snappy_config());
    // Crash executor 0 early; it hosts some of the chain's tasks.
    let victim = sys.executor_nodes()[0];
    FaultPlan::new()
        .at(SimTime::from_nanos(10_000_000), FaultAction::Crash(victim))
        .apply(sys.world_mut());
    sys.start("c1", "chain", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    let outcome = sys.outcome("c1").expect("chain completes despite crash");
    assert_eq!(outcome.objects["out"].as_text(), "s+s0+s1+s2+s3+s4+s5");
    assert!(
        sys.stats().retries > 0,
        "the watchdog must have retried at least one dispatch: {:?}",
        sys.stats()
    );
}

#[test]
fn temporary_partition_heals_and_completes() {
    let mut config = snappy_config();
    config.max_retries = 8;
    let mut sys = chain_system(4, 8, config);
    let coordinator = sys.coordinator_node();
    let executors = sys.executor_nodes().to_vec();
    // Partition the coordinator from every executor for ~1.2 virtual
    // seconds; watchdog retries bridge the gap once it heals.
    FaultPlan::new()
        .at(
            SimTime::from_nanos(5_000_000),
            FaultAction::Partition(vec![coordinator], executors),
        )
        .at(SimTime::from_nanos(1_200_000_000), FaultAction::HealAll)
        .apply(sys.world_mut());
    sys.start("c1", "chain", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    assert!(
        sys.outcome("c1").is_some(),
        "status: {:?}",
        sys.status("c1")
    );
}

#[test]
fn unhealing_partition_exhausts_retries_and_reports() {
    // The paper's pathological case: "a network partition that is not
    // healing" must surface as a failure exception, not hang.
    let mut sys = chain_system(3, 9, snappy_config());
    let coordinator = sys.coordinator_node();
    let executors = sys.executor_nodes().to_vec();
    FaultPlan::new()
        .at(
            SimTime::from_nanos(1_000_000),
            FaultAction::Partition(vec![coordinator], executors),
        )
        .apply(sys.world_mut());
    sys.start("c1", "chain", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    match sys.status("c1").unwrap() {
        InstanceStatus::Stuck { reason } => {
            assert!(reason.contains("failed"), "{reason}");
        }
        other => panic!("expected stuck, got {other:?}"),
    }
    assert!(sys.stats().failures >= 1);
}

#[test]
fn coordinator_crash_recovers_from_wal_and_completes() {
    let mut sys = chain_system(8, 10, snappy_config());
    let coordinator = sys.coordinator_node();
    // Crash the coordinator mid-run, restart shortly after; its restart
    // hook replays the write-ahead log.
    FaultPlan::crash_restart(
        coordinator,
        SimTime::from_nanos(60_000_000),
        SimDuration::from_millis(200),
    )
    .apply(sys.world_mut());
    sys.start("c1", "chain", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    let outcome = sys
        .outcome("c1")
        .unwrap_or_else(|| panic!("chain must finish after recovery: {:?}", sys.status("c1")));
    assert_eq!(
        outcome.objects["out"].as_text(),
        "s+s0+s1+s2+s3+s4+s5+s6+s7"
    );
    assert!(
        sys.stats().recovered_instances >= 1,
        "recovery must have run: {:?}",
        sys.stats()
    );
}

#[test]
fn coordinator_crash_during_order_processing_preserves_exactly_one_outcome() {
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .seed(11)
        .config(snappy_config())
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(30))
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_millis(40))
            .with_object("stockInfo", ObjectVal::text("StockInfo", "st"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(25))
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
    let coordinator = sys.coordinator_node();
    FaultPlan::crash_restart(
        coordinator,
        SimTime::from_nanos(45_000_000),
        SimDuration::from_millis(100),
    )
    .apply(sys.world_mut());
    sys.start("o1", "order", "main", [("order", text("Order", "o"))])
        .unwrap();
    sys.run();
    let outcome = sys.outcome("o1").expect("order completes after recovery");
    assert_eq!(outcome.name, "orderCompleted");
    // Exactly-once outcome application: the dispatch note exists once and
    // every task reached exactly one terminal state.
    for (path, state) in sys.task_states("o1") {
        assert!(state.is_terminal(), "{path} not terminal: {state:?}");
    }
}

#[test]
fn whole_system_restart_resumes_from_shared_storage() {
    // Stronger than a node crash: drop the entire WorkflowSystem and
    // build a new one over the same stable storage. Instances resume.
    let storage;
    {
        let mut sys = chain_system(5, 12, snappy_config());
        storage = sys.storage();
        sys.start("c1", "chain", "main", [("seed", text("Data", "s"))])
            .unwrap();
        // Run only 50ms of virtual time: the chain (5 × 20ms + messaging)
        // cannot have finished.
        sys.run_until(SimTime::from_nanos(50_000_000));
        assert!(sys.outcome("c1").is_none(), "must still be mid-flight");
        // The system dies here (dropped), volatile state lost.
    }
    let script = flowscript_core::builder::chain(5);
    let source = flowscript_core::fmt::format_script(&script);
    let mut sys2 = WorkflowSystem::builder()
        .executors(3)
        .seed(13)
        .config(snappy_config())
        .storage(storage)
        .build();
    // Re-register the script and re-bind implementations (the registry is
    // volatile, like redeploying service binaries).
    sys2.register_script("chain", &source, "root").unwrap();
    for i in 0..5 {
        sys2.bind_fn(
            &format!("ref{i}"),
            move |ctx: &flowscript_engine::InvokeCtx| {
                TaskBehavior::outcome("done").with_object(
                    "out",
                    ObjectVal::text("Data", format!("{}+s{i}", ctx.input_text("in"))),
                )
            },
        );
    }
    sys2.run();
    let outcome = sys2
        .outcome("c1")
        .unwrap_or_else(|| panic!("resumed instance completes: {:?}", sys2.status("c1")));
    assert_eq!(outcome.objects["out"].as_text(), "s+s0+s1+s2+s3+s4");
    assert!(sys2.stats().recovered_instances >= 1);
}

#[test]
fn lossy_network_still_completes_via_retries() {
    let mut config = snappy_config();
    config.max_retries = 8;
    let script = flowscript_core::builder::chain(4);
    let source = flowscript_core::fmt::format_script(&script);
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .seed(14)
        .config(config)
        .build();
    sys.register_script("chain", &source, "root").unwrap();
    for i in 0..4 {
        sys.bind_fn(
            &format!("ref{i}"),
            move |ctx: &flowscript_engine::InvokeCtx| {
                TaskBehavior::outcome("done").with_object(
                    "out",
                    ObjectVal::text("Data", format!("{}+s{i}", ctx.input_text("in"))),
                )
            },
        );
    }
    sys.start("c1", "chain", "main", [("seed", text("Data", "s"))])
        .unwrap();
    // The network turns lossy only once the workflow is in flight (the
    // client RPCs above have no retry layer; the engine's dispatches do).
    sys.world_mut()
        .net_mut()
        .set_default_link(flowscript_sim::net::LinkConfig {
            drop_prob: 0.25,
            ..Default::default()
        });
    sys.run();
    assert!(
        sys.outcome("c1").is_some(),
        "chain should survive 25% loss: {:?} (stats {:?})",
        sys.status("c1"),
        sys.stats()
    );
}

#[test]
fn abort_outcome_is_application_level_not_retried() {
    // An abort outcome declared by the script is an application decision,
    // not a system failure: no automatic retries (§3 separates the two).
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .seed(15)
        .config(snappy_config())
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_object("stockInfo", ObjectVal::text("StockInfo", "st"))
    });
    // Dispatch aborts (atomic task, no side effects).
    sys.bind_fn("refDispatch", |_| TaskBehavior::outcome("dispatchFailed"));
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
    sys.start("o1", "order", "main", [("order", text("Order", "o"))])
        .unwrap();
    sys.run();
    // The abort propagates to orderCancelled through the notification.
    assert_eq!(sys.outcome("o1").unwrap().name, "orderCancelled");
    assert_eq!(sys.stats().retries, 0, "application aborts are not retried");
    let states = sys.task_states("o1");
    assert!(matches!(
        states["processOrderApplication/dispatch"],
        CbState::Aborted { .. }
    ));
}

#[test]
fn determinism_under_faults() {
    fn run(seed: u64) -> String {
        let mut sys = chain_system(6, seed, snappy_config());
        let victim = sys.executor_nodes()[1];
        FaultPlan::crash_restart(
            victim,
            SimTime::from_nanos(30_000_000),
            SimDuration::from_millis(300),
        )
        .apply(sys.world_mut());
        sys.start("c1", "chain", "main", [("seed", text("Data", "s"))])
            .unwrap();
        sys.run();
        sys.sim_trace().render()
    }
    assert_eq!(run(99), run(99), "same seed, same fault plan ⇒ same trace");
}
