//! Live shard rebalancing: adding a coordinator under load must move
//! running instances to the new owner as 2PC hand-offs without losing
//! or duplicating a single outcome — per-instance results must be
//! byte-identical to a run that never rebalanced. A crash on either
//! side of a half-finished hand-off must recover to exactly one
//! converged owner (presumed abort before the decision, destination
//! adoption after it). And deliberately skewed shard maps — the state
//! a buggy flip would leave behind — must not ping-pong a message
//! forever: the hop cap drops it and counts the loop.

use std::collections::BTreeMap;

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{
    CbState, InstanceStatus, ObjectVal, ShardMap, TaskBehavior, WorkflowSystem, MAX_FORWARD_HOPS,
};
use flowscript_sim::net::LinkConfig;
use flowscript_sim::{SimDuration, SimTime};

/// A fully deterministic link, so the no-rebalance baseline and the
/// rebalanced run consume the shared RNG identically.
fn det_link() -> LinkConfig {
    LinkConfig {
        base_latency: SimDuration::from_micros(200),
        jitter: SimDuration::ZERO,
        drop_prob: 0.0,
    }
}

fn det_config() -> EngineConfig {
    EngineConfig {
        dispatch_timeout: SimDuration::from_millis(400),
        retry_backoff: SimDuration::from_millis(20),
        record_dispatches: true,
        ..EngineConfig::default()
    }
}

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

/// Fig. 7 bindings: pure functions of the invocation, with enough
/// simulated work (~100ms per order) that a mid-run rebalance catches
/// instances with tasks genuinely executing.
fn bind_order(sys: &WorkflowSystem) {
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(30))
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_millis(45))
            .with_object("stockInfo", ObjectVal::text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(25))
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "n"))
    });
    sys.bind_fn("refDispatchAlt", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(25))
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "alt-note"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
}

fn build(coordinators: usize) -> WorkflowSystem {
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .coordinators(coordinators)
        .seed(7)
        .link(det_link())
        .config(det_config())
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    bind_order(&sys);
    sys
}

fn population() -> Vec<String> {
    (0..24).map(|i| format!("order-{i}")).collect()
}

fn start_population(sys: &mut WorkflowSystem) {
    for name in population() {
        sys.start(&name, "order", "main", [("order", text("Order", &name))])
            .unwrap();
    }
}

/// Per-instance fingerprint: the encoded terminal status (outcome
/// objects included) and every task's final state. Dispatch placement
/// legitimately differs once a third shard exists, so the trace is
/// deliberately *not* part of it — attempts still are, via the task
/// states.
type Fingerprint = (Vec<u8>, BTreeMap<String, CbState>);

fn fingerprint(sys: &WorkflowSystem, instance: &str) -> Fingerprint {
    let status = sys.status(instance).expect("instance known");
    assert!(status.is_terminal(), "{instance} not terminal: {status:?}");
    (
        flowscript_codec::to_bytes(&status),
        sys.task_states(instance),
    )
}

#[test]
fn live_rebalance_preserves_every_outcome() {
    // Baseline: the same population, never rebalanced.
    let baseline: BTreeMap<String, Fingerprint> = {
        let mut sys = build(2);
        start_population(&mut sys);
        sys.run();
        population()
            .into_iter()
            .map(|name| {
                let print = fingerprint(&sys, &name);
                (name, print)
            })
            .collect()
    };

    // Live run: grow the fleet mid-flight (~20ms into ~100ms orders).
    let mut sys = build(2);
    start_population(&mut sys);
    sys.run_until(SimTime::from_nanos(20_000_000));
    let live_before = population()
        .iter()
        .filter(|name| !sys.status(name).unwrap().is_terminal())
        .count();
    assert!(live_before > 0, "rebalance must catch running instances");

    let report = sys.add_coordinator("coordinator2").expect("rebalance");
    assert!(report.moved > 0, "the new shard must take over instances");
    assert_eq!(report.moved, report.pause_ns.len());
    assert_eq!(report.epoch, 2, "one membership change after epoch 1");
    assert_eq!(sys.shard_map().epoch(), 2);
    assert_eq!(sys.shard_count(), 3);
    assert_eq!(
        sys.stats().handoffs,
        report.moved as u64,
        "every move counted exactly once, at its commit decision"
    );

    sys.run();

    // No outcome lost, duplicated or altered by the moves.
    for name in population() {
        assert_eq!(
            fingerprint(&sys, &name),
            baseline[&name],
            "{name} diverged from the no-rebalance run"
        );
    }
    // Dual delivery resolved every relayed report without tripping the
    // loop guard: maps only disagreed transiently, in one direction.
    assert_eq!(sys.stats().forward_loops, 0);
}

#[test]
fn added_shard_serves_new_instances() {
    let mut sys = build(2);
    start_population(&mut sys);
    sys.run_until(SimTime::from_nanos(20_000_000));
    sys.add_coordinator("coordinator2").expect("rebalance");

    // New arrivals route by the flipped map; some must land on the new
    // shard, and everything — moved, resident and new — completes.
    let extra: Vec<String> = (0..12).map(|i| format!("late-{i}")).collect();
    for name in &extra {
        sys.start(name, "order", "main", [("order", text("Order", name))])
            .unwrap();
    }
    assert!(
        extra.iter().any(|name| sys.shard_of(name) == 2),
        "rendezvous hashing must give the new shard some of the new work"
    );
    sys.run();
    for name in population().iter().chain(&extra) {
        let status = sys.status(name).unwrap();
        assert!(
            matches!(status, InstanceStatus::Completed(_)),
            "{name}: {status:?}"
        );
    }
}

/// Crash the *source* after it logged the hand-off intent but before
/// the decision: recovery must presume abort, keep the instance, and
/// finish it locally.
#[test]
fn source_crash_before_decision_presumes_abort() {
    let mut sys = build(2);
    start_population(&mut sys);
    sys.run_until(SimTime::from_nanos(20_000_000));

    let name = population()
        .into_iter()
        .find(|name| !sys.status(name).unwrap().is_terminal())
        .expect("a running instance");
    let src_shard = sys.shard_of(&name);
    let src_node = sys.coordinator_node_for(&name);
    let dest_shard = 1 - src_shard;
    let dest_node = sys.coordinator_nodes()[dest_shard];
    let src = sys.coord_handle(src_shard);

    // Step 1 of 4 only: the durable intent exists, nothing was staged
    // at the destination, no decision was logged.
    let package = src
        .handoff_collect(sys.world_mut(), &name, dest_node)
        .expect("collect");
    assert!(!package.is_empty());

    sys.crash_now(src_node);
    sys.restart_now(src_node);
    sys.run();

    // Presumed abort: the instance never left, and recovery finished it.
    let src = sys.coord_handle(src_shard);
    assert!(
        src.instance_names().contains(&name),
        "instance must stay resident at the source"
    );
    assert!(
        !sys.coord_handle(dest_shard)
            .instance_names()
            .contains(&name),
        "the aborted move must not leak the instance to the destination"
    );
    assert_eq!(
        sys.shard_stats(src_shard).handoffs,
        0,
        "no commit, no count"
    );
    let status = sys.status(&name).unwrap();
    assert!(
        matches!(status, InstanceStatus::Completed(_)),
        "{name}: {status:?}"
    );
    // And the whole population still converged.
    for other in population() {
        assert!(sys.status(&other).unwrap().is_terminal(), "{other}");
    }
}

/// Crash the *destination* between its prepare and hearing the commit:
/// its restart finds the in-doubt stage, asks the source (the 2PC
/// coordinator), learns `committed`, and adopts the instance — which
/// then finishes on its new owner, fed by relayed executor reports.
#[test]
fn destination_crash_after_commit_converges_to_destination() {
    let mut sys = build(2);
    start_population(&mut sys);
    sys.run_until(SimTime::from_nanos(20_000_000));

    let name = population()
        .into_iter()
        .find(|name| !sys.status(name).unwrap().is_terminal())
        .expect("a running instance");
    let src_shard = sys.shard_of(&name);
    let dest_shard = 1 - src_shard;
    let dest_node = sys.coordinator_nodes()[dest_shard];
    let src = sys.coord_handle(src_shard);
    let dest = sys.coord_handle(dest_shard);

    let package = src
        .handoff_collect(sys.world_mut(), &name, dest_node)
        .expect("collect");
    let tx = package.tx;
    dest.handoff_prepare(&package).expect("prepare");
    src.handoff_commit(sys.world_mut(), &name, tx, dest_node)
        .expect("commit");
    // The decision is durable at the source; the destination crashes
    // without ever applying it.
    sys.crash_now(dest_node);
    sys.restart_now(dest_node);
    sys.run();

    // The restarted destination chased its in-doubt stage, heard
    // `committed`, and adopted.
    let dest = sys.coord_handle(dest_shard);
    assert!(
        dest.instance_names().contains(&name),
        "destination must adopt the committed move"
    );
    assert!(
        !sys.coord_handle(src_shard).instance_names().contains(&name),
        "the source must have purged the moved instance"
    );
    assert_eq!(sys.shard_stats(src_shard).handoffs, 1);
    // The client map was never flipped (this test drives the protocol
    // by hand), so ask the new owner directly.
    let status = dest.status(&name).unwrap();
    assert!(
        matches!(status, InstanceStatus::Completed(_)),
        "{name}: {status:?}"
    );
}

/// Two coordinators with *disagreeing* maps — each believing the other
/// owns an instance — must not bounce a report forever. The hop cap
/// drops it and the loop counter records the drop.
#[test]
fn skewed_maps_trip_the_forward_loop_guard() {
    let mut sys = build(2);
    let nodes = sys.coordinator_nodes().to_vec();
    let straight = sys.shard_map().clone();
    // Same nodes, reversed positions: positional seeds make the two
    // maps disagree on part of the keyspace.
    let skewed = ShardMap::new(vec![nodes[1], nodes[0]]);
    let name = (0..10_000)
        .map(|i| format!("ping-{i}"))
        .find(|name| skewed.node_of(name) == nodes[1] && straight.node_of(name) == nodes[0])
        .expect("some name the two maps route at each other");
    sys.skew_shard_map(0, skewed);

    // Shard 0 forwards to shard 1 (its skewed map says so); shard 1
    // forwards straight back. Without the cap this never terminates.
    sys.send_mark_via_shard(0, &name, "t", 0, 0, "m", Vec::<(&str, ObjectVal)>::new());
    sys.run();

    let stats = sys.stats();
    assert!(
        stats.forward_loops >= 1,
        "the ping-pong must be detected: {stats:?}"
    );
    assert!(
        stats.forwarded <= MAX_FORWARD_HOPS as u64,
        "hops must stay under the cap: {stats:?}"
    );
}

/// A task whose implementation clause binds an *empty* code string
/// must fail diagnosably — not ship an empty script body to an
/// executor, and not burn retries on a failure no retry can fix.
#[test]
fn empty_implementation_code_fails_without_retries() {
    const BLANK_CODE: &str = r#"
class Message;

taskclass Produce {
    inputs { input main { seed of class Message } };
    outputs { outcome produced { message of class Message } }
}

taskclass Pipeline {
    inputs { input main { seed of class Message } };
    outputs { outcome done { message of class Message } }
}

compoundtask pipeline of taskclass Pipeline {
    task produce of taskclass Produce {
        implementation { "code" is "" };
        inputs {
            input main {
                inputobject seed from { seed of task pipeline if input main }
            }
        }
    };
    outputs {
        outcome done {
            outputobject message from { message of task produce if output produced }
        }
    }
}
"#;
    let mut sys = WorkflowSystem::builder()
        .executors(1)
        .seed(7)
        .link(det_link())
        .config(det_config())
        .build();
    sys.register_script("blank", BLANK_CODE, "pipeline")
        .unwrap();
    sys.start("b1", "blank", "main", [("seed", text("Message", "s"))])
        .unwrap();
    sys.run();

    let states = sys.task_states("b1");
    let state = &states["pipeline/produce"];
    let CbState::Failed { reason } = state else {
        panic!("task should fail, got {state:?}");
    };
    assert!(
        reason.contains("missing implementation code"),
        "diagnosable reason, got: {reason}"
    );
    let stats = sys.stats();
    assert_eq!(stats.dispatches, 0, "nothing must reach an executor");
    assert_eq!(stats.retries, 0, "an empty body is not retryable");
    let status = sys.status("b1").unwrap();
    assert!(
        matches!(status, InstanceStatus::Stuck { .. }),
        "the instance parks stuck, not silently complete: {status:?}"
    );
}
