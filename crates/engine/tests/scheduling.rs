//! Load-aware executor scheduling: location constraints, priority
//! ordering, retry relocation, watchdog hint semantics and the
//! least-loaded-vs-hash comparison (the paper's service-relocation
//! story, §3/§4).

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{
    CbState, InstanceStatus, ObjectVal, SchedPolicy, TaskBehavior, WorkflowSystem,
};
use flowscript_sim::{NodeId, SimDuration, SimTime};

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

/// Fig. 7 order processing with the `dispatch` task pinned to
/// `location`, exactly as a script author would write it.
fn pinned_order_source(location: &str) -> String {
    samples::ORDER_PROCESSING.replace(
        r#""code" is "refDispatch""#,
        &format!(r#""code" is "refDispatch"; "location" is "{location}""#),
    )
}

fn bind_order(sys: &WorkflowSystem) {
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised").with_object("paymentInfo", text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable").with_object("stockInfo", text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(40))
            .with_object("dispatchNote", text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
}

fn record_config() -> EngineConfig {
    EngineConfig {
        record_dispatches: true,
        ..EngineConfig::default()
    }
}

// ---------------------------------------------------------------------
// Location constraints.
// ---------------------------------------------------------------------

#[test]
fn pinned_task_only_ever_dispatches_to_the_matching_executor() {
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .executor_at("warehouse0", "warehouse")
        .seed(11)
        .config(record_config())
        .build();
    let warehouse = *sys.executor_nodes().last().unwrap();
    sys.register_script(
        "order",
        &pinned_order_source("warehouse"),
        "processOrderApplication",
    )
    .unwrap();
    bind_order(&sys);
    for i in 0..8 {
        sys.start(
            &format!("o{i}"),
            "order",
            "main",
            [("order", text("Order", "o"))],
        )
        .unwrap();
    }
    sys.run();
    let mut pinned_dispatches = 0;
    for record in sys.dispatch_trace() {
        if record.path.ends_with("/dispatch") {
            assert_eq!(
                record.executor, warehouse,
                "pinned task ran on {:?} instead of the warehouse executor",
                record.executor
            );
            pinned_dispatches += 1;
        } else {
            // Unpinned tasks are free to use the whole fleet, the
            // placed executor included.
        }
    }
    assert_eq!(pinned_dispatches, 8);
    for i in 0..8 {
        assert_eq!(
            sys.outcome(&format!("o{i}")).expect("completes").name,
            "orderCompleted"
        );
    }
    assert_eq!(sys.stats().dropped_dispatches, 0);
}

#[test]
fn unsatisfiable_location_fails_the_task_diagnosably() {
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .seed(12)
        .config(record_config())
        .build();
    sys.register_script(
        "order",
        &pinned_order_source("mars"),
        "processOrderApplication",
    )
    .unwrap();
    bind_order(&sys);
    sys.start("o1", "order", "main", [("order", text("Order", "o"))])
        .unwrap();
    sys.run();
    let states = sys.task_states("o1");
    match &states["processOrderApplication/dispatch"] {
        CbState::Failed { reason } => {
            assert!(
                reason.contains("no executor registered at location `mars`"),
                "undiagnosable failure: {reason}"
            );
        }
        other => panic!("expected the pinned task to fail, got {other:?}"),
    }
    match sys.status("o1").unwrap() {
        InstanceStatus::Stuck { reason } => {
            assert!(
                reason.contains("mars"),
                "stuck reason lost the pin: {reason}"
            );
        }
        other => panic!("expected stuck, got {other:?}"),
    }
    // The unplaceable task never reached an executor, and no retries
    // were burned on a pin no retry can satisfy.
    assert!(sys
        .dispatch_trace()
        .iter()
        .all(|r| !r.path.ends_with("/dispatch")));
    assert_eq!(sys.stats().retries, 0);
    assert!(sys.stats().failures >= 1);
}

#[test]
fn pinned_executor_crash_retries_in_place_and_recovers() {
    // The pinned executor crashes mid-flight; the retry has no
    // eligible alternative (the pin matches exactly one node), is
    // counted as such, lands back on the pinned node and completes
    // once the node returns.
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_millis(300),
        retry_backoff: SimDuration::from_millis(50),
        max_retries: 5,
        record_dispatches: true,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .executor_at("warehouse0", "warehouse")
        .seed(13)
        .config(config)
        .build();
    let warehouse = *sys.executor_nodes().last().unwrap();
    sys.register_script(
        "order",
        &pinned_order_source("warehouse"),
        "processOrderApplication",
    )
    .unwrap();
    bind_order(&sys);
    sys.start("o1", "order", "main", [("order", text("Order", "o"))])
        .unwrap();
    // Let the pinned dispatch get in flight, then kill its executor.
    sys.run_until(SimTime::from_nanos(20_000_000));
    sys.crash_now(warehouse);
    sys.run_until(SimTime::from_nanos(500_000_000));
    sys.restart_now(warehouse);
    sys.run();
    assert_eq!(sys.outcome("o1").expect("completes").name, "orderCompleted");
    let pinned: Vec<(u32, NodeId)> = sys
        .dispatch_trace()
        .iter()
        .filter(|r| r.path.ends_with("/dispatch"))
        .map(|r| (r.attempt, r.executor))
        .collect();
    assert!(pinned.len() >= 2, "expected a retry, got {pinned:?}");
    assert!(
        pinned.iter().all(|&(_, node)| node == warehouse),
        "pinned retries must stay on the pinned node: {pinned:?}"
    );
    assert!(
        sys.stats().no_alternative_retries >= 1,
        "no-alternative retries must be counted: {:?}",
        sys.stats()
    );
}

// ---------------------------------------------------------------------
// Retry relocation.
// ---------------------------------------------------------------------

/// A system whose single leaf stalls past the watchdog on attempt 0
/// and completes instantly on later attempts.
fn flaky_first_attempt(executors: usize, seed: u64) -> WorkflowSystem {
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_millis(200),
        retry_backoff: SimDuration::from_millis(20),
        record_dispatches: true,
        ..EngineConfig::default()
    };
    let mut builder = WorkflowSystem::builder().seed(seed).config(config);
    builder = builder.executors(executors);
    let mut sys = builder.build();
    sys.register_script("q", samples::QUICKSTART, "pipeline")
        .unwrap();
    sys.bind_fn("refProduce", |ctx| {
        let behavior = TaskBehavior::outcome("produced")
            .with_object("message", ObjectVal::text("Message", "m"));
        if ctx.attempt == 0 {
            // Stall far past the watchdog: this attempt is lost.
            behavior.with_work(SimDuration::from_secs(3600))
        } else {
            behavior
        }
    });
    sys.bind_fn("refConsume", |_| {
        TaskBehavior::outcome("consumed").with_object("result", ObjectVal::text("Message", "r"))
    });
    sys
}

#[test]
fn watchdog_retry_relocates_whenever_an_alternative_exists() {
    let mut sys = flaky_first_attempt(3, 21);
    sys.start("i1", "q", "main", [("seed", text("Message", "s"))])
        .unwrap();
    sys.run();
    assert_eq!(sys.outcome("i1").expect("completes").name, "done");
    let produce: Vec<(u32, NodeId)> = sys
        .dispatch_trace()
        .iter()
        .filter(|r| r.path == "pipeline/produce")
        .map(|r| (r.attempt, r.executor))
        .collect();
    assert!(produce.len() >= 2, "expected a retry: {produce:?}");
    assert_ne!(
        produce[0].1, produce[1].1,
        "the retry must move off the failed node when an alternative exists"
    );
    assert_eq!(sys.stats().no_alternative_retries, 0);
}

#[test]
fn single_executor_retry_is_detected_not_silent() {
    // With one executor the old `(hash + attempt) % 1` silently
    // re-picked the failed node while claiming relocation; the
    // scheduler now counts the no-alternative retry.
    let mut sys = flaky_first_attempt(1, 22);
    sys.start("i1", "q", "main", [("seed", text("Message", "s"))])
        .unwrap();
    sys.run();
    assert_eq!(sys.outcome("i1").expect("completes").name, "done");
    let produce: Vec<(u32, NodeId)> = sys
        .dispatch_trace()
        .iter()
        .filter(|r| r.path == "pipeline/produce")
        .map(|r| (r.attempt, r.executor))
        .collect();
    assert!(produce.len() >= 2, "expected a retry: {produce:?}");
    assert_eq!(produce[0].1, produce[1].1, "nowhere else to go");
    assert!(
        sys.stats().no_alternative_retries >= 1,
        "the stuck-in-place retry must be counted: {:?}",
        sys.stats()
    );
}

// ---------------------------------------------------------------------
// Watchdog hint semantics (the duration/deadline satellite fix).
// ---------------------------------------------------------------------

#[test]
fn deadline_caps_the_watchdog_instead_of_extending_it() {
    // duration_ms extends the base timeout, deadline_ms caps the
    // result: with base 1000 + duration 1000 capped at deadline 2000
    // the watchdog fires at 2s. The old code summed all three and
    // fired at 4s.
    let source = r#"
class Data;
taskclass Slow {
    inputs { input main { in of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
    task slow of taskclass Slow {
        implementation {
            "code" is "refSlow";
            "duration_ms" is "1000";
            "deadline_ms" is "2000"
        };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    outputs { outcome done { notification from { task slow if output done } } }
}
"#;
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_millis(1000),
        max_retries: 0,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .seed(31)
        .config(config)
        .build();
    sys.register_script("slow", source, "root").unwrap();
    // The implementation never finishes inside the deadline.
    sys.bind_fn("refSlow", |_| {
        TaskBehavior::outcome("done").with_work(SimDuration::from_secs(3600))
    });
    sys.start("s1", "slow", "main", [("seed", text("Data", "d"))])
        .unwrap();
    // Before the 2s deadline the task is still executing…
    sys.run_until(SimTime::from_nanos(1_900_000_000));
    assert!(
        matches!(
            sys.task_states("s1")["root/slow"],
            CbState::Executing { .. }
        ),
        "watchdog fired before the capped timeout"
    );
    // …and shortly after it has failed — not at 4s as the summed
    // timeout would have it.
    sys.run_until(SimTime::from_nanos(2_500_000_000));
    assert!(
        matches!(sys.task_states("s1")["root/slow"], CbState::Failed { .. }),
        "watchdog must fire at the deadline cap, state {:?}",
        sys.task_states("s1")["root/slow"]
    );
}

// ---------------------------------------------------------------------
// Priority ordering.
// ---------------------------------------------------------------------

#[test]
fn priority_orders_ready_tasks_contending_for_executors() {
    // Three tasks become ready in the same commit; declaration order
    // is low, high, mid but the declared priorities must win.
    let source = r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
    task low of taskclass Work {
        implementation { "code" is "refWork"; "priority" is "1" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    task high of taskclass Work {
        implementation { "code" is "refWork"; "priority" is "9" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    task mid of taskclass Work {
        implementation { "code" is "refWork"; "priority" is "5" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    outputs {
        outcome done {
            notification from { task low if output done };
            notification from { task high if output done };
            notification from { task mid if output done }
        }
    }
}
"#;
    let mut sys = WorkflowSystem::builder()
        .executors(1)
        .seed(41)
        .config(record_config())
        .build();
    sys.register_script("prio", source, "root").unwrap();
    sys.bind_fn("refWork", |_| TaskBehavior::outcome("done"));
    sys.start("p1", "prio", "main", [("seed", text("Data", "d"))])
        .unwrap();
    sys.run();
    assert_eq!(sys.outcome("p1").expect("completes").name, "done");
    let order: Vec<String> = sys.dispatch_trace().into_iter().map(|r| r.path).collect();
    assert_eq!(
        order,
        vec![
            "root/high".to_string(),
            "root/mid".to_string(),
            "root/low".to_string()
        ],
        "dispatch order must follow declared priority"
    );
}

// ---------------------------------------------------------------------
// Least-loaded vs the hash baseline (deterministic, virtual time).
// ---------------------------------------------------------------------

/// A fan of `width` workers per instance with heavily skewed work
/// durations, on serial-capacity executors: load imbalance shows up
/// directly as virtual makespan.
fn skew_source(width: usize) -> String {
    let mut source = String::from(
        r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
"#,
    );
    for i in 0..width {
        source.push_str(&format!(
            r#"    task w{i} of taskclass Work {{
        implementation {{ "code" is "refW{i}" }};
        inputs {{ input main {{ inputobject in from {{ seed of task root if input main }} }} }}
    }};
"#
        ));
    }
    source.push_str("    outputs { outcome done {\n");
    for i in 0..width {
        let sep = if i + 1 < width { ";" } else { "" };
        source.push_str(&format!(
            "        notification from {{ task w{i} if output done }}{sep}\n"
        ));
    }
    source.push_str("    } }\n}\n");
    source
}

/// Runs `instances` skewed fans on 4 serial executors under `policy`
/// and returns the virtual makespan.
fn skew_makespan(policy: SchedPolicy, instances: usize) -> SimDuration {
    let width = 6;
    let config = EngineConfig {
        scheduler: policy,
        // Serial queues stretch latencies; keep watchdogs out of it.
        dispatch_timeout: SimDuration::from_secs(3600),
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(4)
        .serial_executors(true)
        .seed(51)
        .config(config)
        .trace(false)
        .build();
    sys.register_script("skew", &skew_source(width), "root")
        .unwrap();
    for i in 0..width {
        let work = if i == 0 {
            SimDuration::from_millis(400)
        } else {
            SimDuration::from_millis(50)
        };
        sys.bind_fn(&format!("refW{i}"), move |_| {
            TaskBehavior::outcome("done").with_work(work)
        });
    }
    for i in 0..instances {
        sys.start(
            &format!("wave-{i}"),
            "skew",
            "main",
            [("seed", text("Data", "d"))],
        )
        .unwrap();
    }
    sys.run();
    for i in 0..instances {
        assert_eq!(
            sys.outcome(&format!("wave-{i}")).expect("completes").name,
            "done",
            "{policy:?}"
        );
    }
    // Every load counter has drained.
    for shard in 0..sys.shard_count() {
        assert!(
            sys.executor_loads(shard).iter().all(|s| s.in_flight == 0),
            "{policy:?}: load counters must drain"
        );
    }
    assert_eq!(sys.stats().dropped_dispatches, 0);
    sys.now().since(SimTime::ZERO)
}

#[test]
fn least_loaded_beats_the_hash_baseline_under_skewed_durations() {
    let hash = skew_makespan(SchedPolicy::PathHash, 12);
    let scheduled = skew_makespan(SchedPolicy::LeastLoaded, 12);
    assert!(
        scheduled < hash,
        "least-loaded ({scheduled:?}) must beat path-hash ({hash:?}) on skewed durations"
    );
}

// ---------------------------------------------------------------------
// Remaining-work vs count-based least-loaded (declared durations).
// ---------------------------------------------------------------------

/// The skewed fan with the durations *declared* in the implementation
/// clause — the remaining-work scheduler's input signal.
fn hinted_skew_source(width: usize) -> String {
    let mut source = String::from(
        r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
"#,
    );
    for i in 0..width {
        let duration = if i == 0 { 400 } else { 50 };
        source.push_str(&format!(
            r#"    task w{i} of taskclass Work {{
        implementation {{ "code" is "refW{i}"; "duration_ms" is "{duration}" }};
        inputs {{ input main {{ inputobject in from {{ seed of task root if input main }} }} }}
    }};
"#
        ));
    }
    source.push_str("    outputs { outcome done {\n");
    for i in 0..width {
        let sep = if i + 1 < width { ";" } else { "" };
        source.push_str(&format!(
            "        notification from {{ task w{i} if output done }}{sep}\n"
        ));
    }
    source.push_str("    } }\n}\n");
    source
}

/// Runs `instances` duration-hinted skewed fans on 2 serial executors
/// under `policy` and returns the virtual makespan.
fn hinted_skew_makespan(policy: SchedPolicy, instances: usize) -> SimDuration {
    let width = 6;
    let config = EngineConfig {
        scheduler: policy,
        dispatch_timeout: SimDuration::from_secs(3600),
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .serial_executors(true)
        .seed(52)
        .config(config)
        .trace(false)
        .build();
    sys.register_script("skew", &hinted_skew_source(width), "root")
        .unwrap();
    for i in 0..width {
        let work = if i == 0 {
            SimDuration::from_millis(400)
        } else {
            SimDuration::from_millis(50)
        };
        sys.bind_fn(&format!("refW{i}"), move |_| {
            TaskBehavior::outcome("done").with_work(work)
        });
    }
    for i in 0..instances {
        sys.start(
            &format!("wave-{i}"),
            "skew",
            "main",
            [("seed", text("Data", "d"))],
        )
        .unwrap();
    }
    sys.run();
    for i in 0..instances {
        assert_eq!(
            sys.outcome(&format!("wave-{i}")).expect("completes").name,
            "done",
            "{policy:?}"
        );
    }
    for shard in 0..sys.shard_count() {
        assert!(
            sys.executor_loads(shard)
                .iter()
                .all(|s| s.in_flight == 0 && s.remaining == 0),
            "{policy:?}: load and remaining-work counters must drain"
        );
    }
    sys.now().since(SimTime::ZERO)
}

#[test]
fn remaining_work_never_loses_to_count_based_least_loaded_on_skewed_durations() {
    // Both policies see the same declared durations; only the weighted
    // one uses them. Before capacity-aware parking, counting dispatches
    // alike piled 400ms work next to 50ms work and serial executors
    // paid for it in virtual makespan. With declared capacities the
    // coordinator parks instead of overcommitting, so both policies
    // converge on the greedy earliest-free-slot schedule — the weighted
    // projection can no longer *lose*, which is what this guards now.
    let count = hinted_skew_makespan(SchedPolicy::InFlightCount, 8);
    let weighted = hinted_skew_makespan(SchedPolicy::LeastLoaded, 8);
    assert!(
        weighted <= count,
        "remaining-work ({weighted:?}) must never lose to count-based ({count:?}) \
         on skewed durations"
    );
}

// ---------------------------------------------------------------------
// Executor-side location guard.
// ---------------------------------------------------------------------

#[test]
fn executor_guard_rejects_mispinned_tasks_under_the_hash_baseline() {
    // The hash baseline ignores hints, so a pinned task can land on
    // the wrong node; the executor's install-time label turns that
    // into a loud ExecError (and the hash retry walk eventually finds
    // the right node) instead of silently running out of place.
    let config = EngineConfig {
        scheduler: SchedPolicy::PathHash,
        retry_backoff: SimDuration::from_millis(10),
        record_dispatches: true,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(1)
        .executor_at("warehouse0", "warehouse")
        .seed(61)
        .config(config)
        .build();
    let warehouse = *sys.executor_nodes().last().unwrap();
    sys.register_script(
        "order",
        &pinned_order_source("warehouse"),
        "processOrderApplication",
    )
    .unwrap();
    bind_order(&sys);
    sys.start("o1", "order", "main", [("order", text("Order", "o"))])
        .unwrap();
    sys.run();
    // Which node attempt 0 hashed to is fixed by the path bytes;
    // recompute it so the assertion is exact either way.
    let path = "processOrderApplication/dispatch";
    let hash = path
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(u64::from(b)));
    let first = sys.executor_nodes()[(hash % 2) as usize];
    if first == warehouse {
        // Lucky hash: lands correctly first try.
        assert_eq!(sys.outcome("o1").expect("completes").name, "orderCompleted");
    } else {
        // Mispinned: the guard rejected it and the attempt walk moved
        // to the warehouse node on retry.
        assert!(sys.stats().retries >= 1, "{:?}", sys.stats());
        assert_eq!(sys.outcome("o1").expect("completes").name, "orderCompleted");
        let pinned: Vec<(u32, NodeId)> = sys
            .dispatch_trace()
            .iter()
            .filter(|r| r.path == path)
            .map(|r| (r.attempt, r.executor))
            .collect();
        assert_eq!(pinned[0].1, first);
        assert_eq!(pinned[1].1, warehouse);
    }
}

// ---------------------------------------------------------------------
// Sharded scheduling: every shard schedules over the shared fleet.
// ---------------------------------------------------------------------

#[test]
fn sharded_coordinators_honor_pins_with_their_own_load_views() {
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .executor_at("warehouse0", "warehouse")
        .coordinators(4)
        .seed(71)
        .config(record_config())
        .build();
    let warehouse = *sys.executor_nodes().last().unwrap();
    sys.register_script(
        "order",
        &pinned_order_source("warehouse"),
        "processOrderApplication",
    )
    .unwrap();
    bind_order(&sys);
    let mut shards_used = std::collections::BTreeSet::new();
    for i in 0..16 {
        let name = format!("o{i}");
        shards_used.insert(sys.shard_of(&name));
        sys.start(&name, "order", "main", [("order", text("Order", "o"))])
            .unwrap();
    }
    sys.run();
    assert!(shards_used.len() > 1, "population should span shards");
    for i in 0..16 {
        assert_eq!(
            sys.outcome(&format!("o{i}")).expect("completes").name,
            "orderCompleted"
        );
    }
    for record in sys.dispatch_trace() {
        if record.path.ends_with("/dispatch") {
            assert_eq!(record.executor, warehouse);
        }
    }
    // Each shard kept its own (now drained) load view.
    for shard in 0..sys.shard_count() {
        assert!(sys.executor_loads(shard).iter().all(|s| s.in_flight == 0));
    }
    assert_eq!(sys.stats().dropped_dispatches, 0);
}
