//! Dynamic reconfiguration of running instances (paper §2/§3): add or
//! remove tasks and dependencies atomically, rebind implementations
//! (online upgrade), and rescue stuck instances.

use flowscript_core::samples;
use flowscript_engine::{
    CbState, InstanceStatus, ObjectVal, Reconfig, TaskBehavior, WorkflowSystem,
};
use flowscript_sim::SimDuration;

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

fn diamond_system(seed: u64) -> WorkflowSystem {
    let mut sys = WorkflowSystem::builder().executors(2).seed(seed).build();
    sys.register_script("diamond", samples::FIG1_DIAMOND, "diamond")
        .unwrap();
    sys.bind_fn("refT1", |ctx| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(10))
            .with_object(
                "out",
                ObjectVal::text("Data", format!("{}1", ctx.input_text("seed"))),
            )
    });
    sys.bind_fn("refT2", |_| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(10))
            .with_object("out", text("Data", "two"))
    });
    sys.bind_fn("refT3", |ctx| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(10))
            .with_object(
                "out",
                ObjectVal::text("Data", format!("{}3", ctx.input_text("in"))),
            )
    });
    sys.bind_fn("refT4", |ctx| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(10))
            .with_object(
                "out",
                ObjectVal::text(
                    "Data",
                    format!("{}|{}", ctx.input_text("left"), ctx.input_text("right")),
                ),
            )
    });
    sys
}

#[test]
fn paper_section2_add_t5_to_running_instance() {
    // The paper's §2 scenario: while Fig. 1's diamond runs, add a task t5
    // with dependencies from t2 and t4.
    let mut sys = diamond_system(61);
    sys.bind_fn("refT5", |ctx| {
        TaskBehavior::outcome("done").with_object(
            "out",
            ObjectVal::text(
                "Data",
                format!("t5({},{})", ctx.input_text("left"), ctx.input_text("right")),
            ),
        )
    });
    sys.start("d1", "diamond", "main", [("seed", text("Data", "s"))])
        .unwrap();
    // Let t1 (and possibly t2/t3) finish, then reconfigure mid-flight.
    sys.run_for(SimDuration::from_millis(15));
    sys.reconfigure(
        "d1",
        Reconfig::AddTask {
            scope_path: "diamond".into(),
            task_source: r#"
                task t5 of taskclass Join {
                    implementation { "code" is "refT5" };
                    inputs {
                        input main {
                            inputobject left from { out of task t2 if output done };
                            inputobject right from { out of task t4 if output done }
                        }
                    }
                }
            "#
            .into(),
        },
    )
    .unwrap();
    sys.run();
    // The instance still completes (t5 feeds nothing, it just runs).
    assert!(sys.outcome("d1").is_some());
    let states = sys.task_states("d1");
    assert!(
        matches!(
            states.get("diamond/t5"),
            Some(CbState::Done { .. }) | Some(CbState::Cancelled)
        ),
        "t5 state: {:?}",
        states.get("diamond/t5")
    );
    assert_eq!(sys.stats().reconfigs, 1);
}

#[test]
fn added_task_sees_already_produced_outputs() {
    // Watcher replay: t5 is added *after* t2 and t4 have completed; its
    // dependencies must be satisfied from recorded facts, not just new
    // events.
    let mut sys = diamond_system(62);
    sys.bind_fn("refT5", |_| {
        TaskBehavior::outcome("done").with_object("out", text("Data", "late-joiner"))
    });
    sys.start("d1", "diamond", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run(); // the whole diamond completes
    assert!(sys.outcome("d1").is_some());
    sys.reconfigure(
        "d1",
        Reconfig::AddTask {
            scope_path: "diamond".into(),
            task_source: r#"
                task t5 of taskclass Join {
                    implementation { "code" is "refT5" };
                    inputs {
                        input main {
                            inputobject left from { out of task t2 if output done };
                            inputobject right from { out of task t4 if output done }
                        }
                    }
                }
            "#
            .into(),
        },
    )
    .unwrap();
    sys.run();
    // Root already terminated, so evaluation of t5 depends on the scope
    // being Done — it stays Waiting/Cancelled. Assert it did not corrupt
    // the completed instance.
    assert!(sys.outcome("d1").is_some());
}

#[test]
fn rebind_performs_online_upgrade() {
    let mut sys = diamond_system(63);
    // v2 of t3's implementation marks its output differently.
    sys.bind_fn("refT3v2", |ctx| {
        TaskBehavior::outcome("done").with_object(
            "out",
            ObjectVal::text("Data", format!("v2<{}>", ctx.input_text("in"))),
        )
    });
    sys.start("d1", "diamond", "main", [("seed", text("Data", "s"))])
        .unwrap();
    // Rebind before t3 runs (t1 takes 10ms; do it immediately).
    sys.reconfigure(
        "d1",
        Reconfig::Rebind {
            code: "refT3".into(),
            to: "refT3v2".into(),
        },
    )
    .unwrap();
    sys.run();
    let outcome = sys.outcome("d1").unwrap();
    assert_eq!(outcome.objects["out"].as_text(), "two|v2<s1>");
}

#[test]
fn reconfiguration_rescues_stuck_instance() {
    // A consumer whose sole producer has no implementation gets stuck;
    // adding an alternative source rescues it.
    const SCRIPT: &str = r#"
        class Data;
        taskclass Stage {
            inputs { input main { in of class Data } };
            outputs { outcome done { out of class Data } }
        }
        taskclass Root {
            inputs { input main { seed of class Data } };
            outputs { outcome done { out of class Data } }
        }
        compoundtask root of taskclass Root {
            task broken of taskclass Stage {
                implementation { "code" is "refBroken" };
                inputs { input main { inputobject in from { seed of task root if input main } } }
            };
            task healthy of taskclass Stage {
                implementation { "code" is "refHealthy" };
                inputs { input main { inputobject in from { seed of task root if input main } } }
            };
            task consumer of taskclass Stage {
                implementation { "code" is "refConsumer" };
                inputs { input main { inputobject in from { out of task broken if output done } } }
            };
            outputs {
                outcome done { outputobject out from { out of task consumer if output done } }
            }
        }
    "#;
    let config = flowscript_engine::coordinator::EngineConfig {
        dispatch_timeout: SimDuration::from_millis(200),
        retry_backoff: SimDuration::from_millis(10),
        ..Default::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .seed(64)
        .config(config)
        .build();
    sys.register_script("s", SCRIPT, "root").unwrap();
    // refBroken is deliberately unbound.
    sys.bind_fn("refHealthy", |ctx| {
        TaskBehavior::outcome("done").with_object(
            "out",
            ObjectVal::text("Data", format!("healthy({})", ctx.input_text("in"))),
        )
    });
    sys.bind_fn("refConsumer", |ctx| {
        TaskBehavior::outcome("done")
            .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
    });
    sys.start("r1", "s", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    assert!(matches!(
        sys.status("r1").unwrap(),
        InstanceStatus::Stuck { .. }
    ));
    // Rescue: give the consumer an alternative source from `healthy`.
    sys.reconfigure(
        "r1",
        Reconfig::AddObjectSource {
            task_path: "root/consumer".into(),
            set: "main".into(),
            object: "in".into(),
            producer: "healthy".into(),
            producer_object: "out".into(),
            outcome: "done".into(),
        },
    )
    .unwrap();
    sys.run();
    let outcome = sys.outcome("r1").expect("rescued instance completes");
    assert_eq!(outcome.objects["out"].as_text(), "healthy(s)");
}

#[test]
fn invalid_reconfigurations_rejected_without_damage() {
    let mut sys = diamond_system(65);
    sys.start("d1", "diamond", "main", [("seed", text("Data", "s"))])
        .unwrap();
    // Unknown scope.
    assert!(sys
        .reconfigure(
            "d1",
            Reconfig::AddTask {
                scope_path: "diamond/ghost".into(),
                task_source: "task x of taskclass Stage { }".into(),
            },
        )
        .is_err());
    // Removing t3 orphans t4's `right` slot.
    assert!(sys
        .reconfigure(
            "d1",
            Reconfig::RemoveTask {
                task_path: "diamond/t3".into(),
            },
        )
        .is_err());
    // Unknown instance.
    assert!(sys
        .reconfigure(
            "ghost",
            Reconfig::Rebind {
                code: "a".into(),
                to: "b".into(),
            },
        )
        .is_err());
    // The instance is unharmed and completes.
    sys.run();
    assert!(sys.outcome("d1").is_some());
    assert_eq!(sys.stats().reconfigs, 0);
}

#[test]
fn reconfiguration_survives_coordinator_crash() {
    // Reconfig ops are persisted and replayed during recovery.
    let mut sys = diamond_system(66);
    sys.bind_fn("refT5", |_| {
        TaskBehavior::outcome("done").with_object("out", text("Data", "t5"))
    });
    sys.start("d1", "diamond", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.reconfigure(
        "d1",
        Reconfig::AddTask {
            scope_path: "diamond".into(),
            task_source: r#"
                task t5 of taskclass NotifiedStage {
                    implementation { "code" is "refT5" };
                    inputs { input main { notification from { task t1 if output done } } }
                }
            "#
            .into(),
        },
    )
    .unwrap();
    // Crash + restart the coordinator immediately; on recovery the
    // reconfigured schema (with t5) must be rebuilt from the log.
    let coordinator = sys.coordinator_node();
    sys.crash_now(coordinator);
    sys.restart_now(coordinator);
    sys.run();
    assert!(sys.outcome("d1").is_some(), "{:?}", sys.status("d1"));
    let states = sys.task_states("d1");
    assert!(
        matches!(
            states.get("diamond/t5"),
            Some(CbState::Done { .. }) | Some(CbState::Cancelled)
        ),
        "t5: {:?}",
        states.get("diamond/t5")
    );
}
