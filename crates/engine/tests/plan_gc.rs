//! Checkpoint-time garbage collection of persisted plan blobs.
//!
//! Compiled plans persist in the WAL once per fingerprint
//! (`sys/plan/…`) so crash recovery skips the front end. Every
//! reconfiguration re-fingerprints the instance's plan; without
//! reclamation a reconfigured instance strands its old blobs forever.
//! The coordinator refcounts blobs by fingerprint at checkpoint time —
//! a blob survives exactly as long as some instance (resident or
//! merely persisted) references it.

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{ObjectVal, Reconfig, TaskBehavior, WorkflowSystem};
use flowscript_sim::SimDuration;

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

fn diamond_sys(checkpoint_every: u64) -> WorkflowSystem {
    let config = EngineConfig {
        checkpoint_every: Some(checkpoint_every),
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .seed(9)
        .config(config)
        .build();
    sys.register_script("diamond", samples::FIG1_DIAMOND, "diamond")
        .unwrap();
    for code in ["refT1", "refT2", "refT3", "refT4"] {
        sys.bind_fn(code, |_| {
            TaskBehavior::outcome("done")
                .with_work(SimDuration::from_millis(10))
                .with_object("out", text("Data", "d"))
        });
    }
    sys.bind_fn("refT5", |_| {
        TaskBehavior::outcome("done").with_object("out", text("Data", "t5"))
    });
    sys
}

const ADD_T5: &str = r#"
    task t5 of taskclass Join {
        implementation { "code" is "refT5" };
        inputs {
            input main {
                inputobject left from { out of task t2 if output done };
                inputobject right from { out of task t4 if output done }
            }
        }
    }
"#;

#[test]
fn checkpoint_reclaims_unreferenced_plan_blobs() {
    let mut sys = diamond_sys(1); // checkpoint (and GC) after every commit
    sys.start("d1", "diamond", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    assert!(sys.outcome("d1").is_some());
    let original = sys.persisted_plans(0);
    assert_eq!(original.len(), 1, "one fingerprint persisted: {original:?}");

    // Reconfiguring re-lowers the plan under a new fingerprint…
    sys.reconfigure(
        "d1",
        Reconfig::AddTask {
            scope_path: "diamond".into(),
            task_source: ADD_T5.into(),
        },
    )
    .unwrap();
    sys.run();
    // …and the next checkpoints drop the stranded original blob.
    let after = sys.persisted_plans(0);
    assert_eq!(after.len(), 1, "old blob must be reclaimed: {after:?}");
    assert_ne!(after[0], original[0], "the survivor is the new plan");

    // The GC'd store still recovers: the instance's current plan blob
    // is intact, so a restarted shard decodes it (no front-end rerun).
    let node = sys.coordinator_node_for("d1");
    sys.crash_now(node);
    sys.restart_now(node);
    sys.run();
    assert!(sys.outcome("d1").is_some(), "recovery after GC");
    assert_eq!(sys.stats().recovered_instances, 1);
}

#[test]
fn shared_fingerprints_are_pinned_by_any_referencing_instance() {
    let mut sys = diamond_sys(1);
    // Two instances of the same script share one plan blob.
    sys.start("d1", "diamond", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.start("d2", "diamond", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    assert_eq!(sys.persisted_plans(0).len(), 1);
    let original = sys.persisted_plans(0)[0];

    // Reconfiguring d1 must NOT reclaim the original blob while d2
    // still references it.
    sys.reconfigure(
        "d1",
        Reconfig::AddTask {
            scope_path: "diamond".into(),
            task_source: ADD_T5.into(),
        },
    )
    .unwrap();
    sys.run();
    let plans = sys.persisted_plans(0);
    assert_eq!(
        plans.len(),
        2,
        "both referenced fingerprints live: {plans:?}"
    );
    assert!(plans.contains(&original));

    // Reconfiguring d2 identically moves both instances to the new
    // fingerprint — now the original blob is garbage.
    sys.reconfigure(
        "d2",
        Reconfig::AddTask {
            scope_path: "diamond".into(),
            task_source: ADD_T5.into(),
        },
    )
    .unwrap();
    sys.run();
    let plans = sys.persisted_plans(0);
    assert_eq!(
        plans.len(),
        1,
        "shared blob reclaimed once orphaned: {plans:?}"
    );
    assert!(!plans.contains(&original));
}
