//! Cross-shard matrix: sharding instances across coordinator nodes must
//! be **behaviour-preserving**. For every shard count k ∈ {1, 2, 4, 8}
//! and the fig. 7 (order processing) / fig. 8 (business trip)
//! workloads, per-instance outcomes, dispatch traces and task states
//! must be byte-identical to the single-coordinator baseline; a
//! one-shard crash must recover from that shard's WAL alone while other
//! shards keep committing; a partition isolating one shard must heal
//! into completion; reconfiguration must work on non-zero shards; and
//! misdirected requests must be forwarded to the owner.

use std::collections::BTreeMap;

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{
    CbState, InstanceStatus, ObjectVal, Reconfig, TaskBehavior, WorkflowSystem,
};
use flowscript_sim::net::LinkConfig;
use flowscript_sim::{FaultAction, FaultPlan, SimDuration, SimTime};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A fully deterministic link: cross-shard runs must not depend on the
/// shared RNG (jitter draws), only on the topology.
fn det_link() -> LinkConfig {
    LinkConfig {
        base_latency: SimDuration::from_micros(200),
        jitter: SimDuration::ZERO,
        drop_prob: 0.0,
    }
}

fn det_config() -> EngineConfig {
    EngineConfig {
        dispatch_timeout: SimDuration::from_millis(400),
        retry_backoff: SimDuration::from_millis(20),
        record_dispatches: true,
        ..EngineConfig::default()
    }
}

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

/// Fig. 7 bindings (pure functions of the invocation — per-instance
/// behaviour must not leak across instances through shared state).
fn bind_order(sys: &WorkflowSystem) {
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(30))
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_millis(45))
            .with_object("stockInfo", ObjectVal::text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(25))
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "n"))
    });
    sys.bind_fn("refDispatchAlt", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(25))
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "alt-note"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
}

/// Fig. 8 bindings, all pure functions of the invocation (per-instance
/// behaviour must not leak across instances through shared state). The
/// instance's `user` input text is threaded through the dataflow chain
/// (tripData → flightList → plane); a `retry` marker in it makes the
/// hotel fail in incarnation 0, driving the Fig. 8
/// compensate-and-repeat loop exactly once per instance.
fn bind_trip(sys: &WorkflowSystem) {
    sys.bind_fn("refDataAcquisition", |ctx| {
        TaskBehavior::outcome("acquired").with_object(
            "tripData",
            ObjectVal::text("TripData", ctx.input_text("user")),
        )
    });
    sys.bind_fn("refAirlineQueryA", |_| {
        TaskBehavior::outcome("notFound").with_work(SimDuration::from_millis(5))
    });
    sys.bind_fn("refAirlineQueryB", |ctx| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(12))
            .with_object(
                "flightList",
                ObjectVal::text("FlightList", ctx.input_text("tripData")),
            )
    });
    sys.bind_fn("refAirlineQueryC", |ctx| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(30))
            .with_object(
                "flightList",
                ObjectVal::text("FlightList", ctx.input_text("tripData")),
            )
    });
    sys.bind_fn("refFlightReservation", |ctx| {
        TaskBehavior::outcome("reserved")
            .with_object(
                "plane",
                ObjectVal::text("Plane", ctx.input_text("flightList")),
            )
            .with_object("cost", ObjectVal::text("Cost", "c"))
    });
    sys.bind_fn("refHotelReservation", |ctx| {
        let wants_retry = ctx.input_text("plane").contains("retry");
        if wants_retry && ctx.incarnation == 0 {
            TaskBehavior::outcome("failed")
        } else {
            TaskBehavior::outcome("hotelBooked").with_object("hotel", ObjectVal::text("Hotel", "h"))
        }
    });
    sys.bind_fn("refFlightCancellation", |_| {
        TaskBehavior::outcome("cancelled")
    });
    sys.bind_fn("refPrintTickets", |_| {
        TaskBehavior::outcome("printed").with_object("tickets", ObjectVal::text("Tickets", "tk"))
    });
}

fn build(coordinators: usize) -> WorkflowSystem {
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .coordinators(coordinators)
        .seed(7)
        .link(det_link())
        .config(det_config())
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.register_script("trip", samples::BUSINESS_TRIP, "tripReservation")
        .unwrap();
    bind_order(&sys);
    bind_trip(&sys);
    sys
}

/// `(name, script)` for a mixed fig. 7 / fig. 8 population. Names are
/// varied so rendezvous hashing spreads them across shards.
fn population() -> Vec<(String, &'static str)> {
    let mut all = Vec::new();
    for i in 0..8 {
        all.push((format!("order-{i}"), "order"));
    }
    for i in 0..4 {
        all.push((format!("trip-{i}"), "trip"));
    }
    all
}

fn start_population(sys: &mut WorkflowSystem) {
    for (name, script) in population() {
        match script {
            "order" => sys
                .start(&name, "order", "main", [("order", text("Order", &name))])
                .unwrap(),
            _ => sys
                .start(&name, "trip", "main", [("user", text("User", &name))])
                .unwrap(),
        }
    }
}

/// Per-instance fingerprint: encoded outcome bytes (or terminal status
/// bytes), the ordered dispatch trace, and every task state.
type Fingerprint = (Vec<u8>, Vec<(String, u32)>, BTreeMap<String, CbState>);

fn fingerprint(sys: &WorkflowSystem, instance: &str) -> Fingerprint {
    let status = sys.status(instance).expect("instance known");
    assert!(status.is_terminal(), "{instance} not terminal: {status:?}");
    let status_bytes = flowscript_codec::to_bytes(&status);
    let trace = sys
        .dispatch_trace_of(instance)
        .into_iter()
        .map(|d| (d.path, d.attempt))
        .collect();
    (status_bytes, trace, sys.task_states(instance))
}

fn run_clean(coordinators: usize) -> BTreeMap<String, Fingerprint> {
    let mut sys = build(coordinators);
    start_population(&mut sys);
    sys.run();
    population()
        .into_iter()
        .map(|(name, _)| {
            let print = fingerprint(&sys, &name);
            (name, print)
        })
        .collect()
}

#[test]
fn clean_matrix_is_byte_identical_to_single_coordinator() {
    let baseline = run_clean(1);
    // Sanity: the baseline actually completed everything.
    for (name, (status_bytes, trace, _)) in &baseline {
        assert!(!trace.is_empty(), "{name} never dispatched");
        assert!(!status_bytes.is_empty());
    }
    for k in SHARD_COUNTS.into_iter().skip(1) {
        let sharded = run_clean(k);
        assert_eq!(baseline, sharded, "shard count {k} diverged from baseline");
    }
}

#[test]
fn population_actually_spreads_across_shards() {
    let sys = build(8);
    let mut owners: BTreeMap<usize, usize> = BTreeMap::new();
    for (name, _) in population() {
        *owners.entry(sys.shard_of(&name)).or_default() += 1;
    }
    assert!(
        owners.len() >= 3,
        "12 instances should land on several of 8 shards: {owners:?}"
    );
}

#[test]
fn fig8_repeat_loop_is_identical_across_shard_counts() {
    // One trip whose hotel fails the first time (the Fig. 8
    // compensate-and-repeat loop), compared per shard count.
    let run = |coordinators: usize| -> Fingerprint {
        let mut sys = build(coordinators);
        sys.start(
            "trip-retry-x",
            "trip",
            "main",
            [("user", text("User", "retry-1"))],
        )
        .unwrap();
        sys.run();
        assert_eq!(
            sys.outcome("trip-retry-x").expect("trip completes").name,
            "booked"
        );
        assert!(sys.stats().repeats >= 1, "the repeat loop must have run");
        fingerprint(&sys, "trip-retry-x")
    };
    let baseline = run(1);
    for k in SHARD_COUNTS.into_iter().skip(1) {
        assert_eq!(baseline, run(k), "shard count {k}");
    }
}

#[test]
fn one_shard_crash_recovers_locally_without_disturbing_others() {
    let unfaulted = run_clean(4);

    let mut sys = build(4);
    start_population(&mut sys);
    let victim_name = "order-0";
    let victim_shard = sys.shard_of(victim_name);
    let victim_node = sys.coordinator_node_for(victim_name);
    // Crash the owning coordinator mid-flight (the order takes ~100ms of
    // virtual time), restart shortly after: only this shard replays its
    // WAL.
    FaultPlan::crash_restart(
        victim_node,
        SimTime::from_nanos(40_000_000),
        SimDuration::from_millis(120),
    )
    .apply(sys.world_mut());
    sys.run();

    // Every instance still reaches its verdict; the victim's instances
    // complete through recovery.
    for (name, _) in population() {
        let status = sys.status(&name).unwrap();
        assert!(
            matches!(status, InstanceStatus::Completed(_)),
            "{name}: {status:?}"
        );
    }
    // Shard-local recovery: exactly the victim shard recovered, and it
    // recovered exactly its own instances.
    let own: usize = population()
        .iter()
        .filter(|(name, _)| sys.shard_of(name) == victim_shard)
        .count();
    for shard in 0..sys.shard_count() {
        let recovered = sys.shard_stats(shard).recovered_instances;
        if shard == victim_shard {
            assert_eq!(recovered as usize, own, "victim shard replays its own WAL");
        } else {
            assert_eq!(recovered, 0, "shard {shard} must not have recovered");
        }
    }
    // Instances on *other* shards are byte-identical to the unfaulted
    // run — their shards never saw the crash.
    for (name, _) in population() {
        if sys.shard_of(&name) != victim_shard {
            assert_eq!(
                fingerprint(&sys, &name),
                unfaulted[&name],
                "{name} (shard {}) disturbed by shard {victim_shard}'s crash",
                sys.shard_of(&name)
            );
        }
    }
}

#[test]
fn partition_isolating_one_shard_heals_and_completes() {
    let unfaulted = run_clean(4);

    let mut config = det_config();
    config.max_retries = 8;
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .coordinators(4)
        .seed(7)
        .link(det_link())
        .config(config)
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.register_script("trip", samples::BUSINESS_TRIP, "tripReservation")
        .unwrap();
    bind_order(&sys);
    bind_trip(&sys);
    start_population(&mut sys);

    let victim_name = "order-1";
    let victim_shard = sys.shard_of(victim_name);
    let victim_node = sys.coordinator_node_for(victim_name);
    let executors = sys.executor_nodes().to_vec();
    FaultPlan::new()
        .at(
            SimTime::from_nanos(5_000_000),
            FaultAction::Partition(vec![victim_node], executors),
        )
        .at(SimTime::from_nanos(1_500_000_000), FaultAction::HealAll)
        .apply(sys.world_mut());
    sys.run();

    for (name, _) in population() {
        let status = sys.status(&name).unwrap();
        assert!(
            matches!(status, InstanceStatus::Completed(_)),
            "{name}: {status:?}"
        );
        // Unpartitioned shards never noticed.
        if sys.shard_of(&name) != victim_shard {
            assert_eq!(fingerprint(&sys, &name), unfaulted[&name], "{name}");
        }
    }
    // The isolated shard bridged the partition with watchdog retries.
    assert!(
        sys.shard_stats(victim_shard).retries > 0,
        "victim stats: {:?}",
        sys.shard_stats(victim_shard)
    );
}

#[test]
fn reconfiguration_lands_on_nonzero_shards() {
    let mut sys = build(4);
    // Find an order instance owned by a non-zero shard.
    let (name, shard) = (0..32)
        .map(|i| format!("reconf-{i}"))
        .find_map(|name| {
            let shard = sys.shard_of(&name);
            (shard != 0).then_some((name, shard))
        })
        .expect("some name lands off shard 0");
    sys.start(&name, "order", "main", [("order", text("Order", &name))])
        .unwrap();
    // Rebind the dispatch implementation before the dispatch task can
    // run (it waits on payment ~30ms + stock ~45ms).
    sys.run_for(SimDuration::from_millis(10));
    sys.reconfigure(
        &name,
        Reconfig::Rebind {
            code: "refDispatch".into(),
            to: "refDispatchAlt".into(),
        },
    )
    .unwrap();
    sys.run();
    let outcome = sys.outcome(&name).expect("completes");
    assert_eq!(outcome.name, "orderCompleted");
    assert_eq!(
        outcome.objects["dispatchNote"].as_text(),
        "alt-note",
        "the rebound implementation must have produced the note"
    );
    for s in 0..sys.shard_count() {
        let expected = u64::from(s == shard);
        assert_eq!(
            sys.shard_stats(s).reconfigs,
            expected,
            "reconfig must land on shard {shard} only"
        );
    }
}

#[test]
fn misdirected_requests_are_forwarded_to_the_owner() {
    let mut sys = build(4);
    // Find an instance owned by a shard other than 0, then start it
    // *via shard 0*: the request must be forwarded, acknowledged, and
    // executed by the owner.
    let (name, owner) = (0..32)
        .map(|i| format!("fwd-{i}"))
        .find_map(|name| {
            let shard = sys.shard_of(&name);
            (shard != 0).then_some((name, shard))
        })
        .expect("some name lands off shard 0");
    sys.start_via_shard(0, &name, "order", "main", [("order", text("Order", &name))])
        .unwrap();
    sys.run();
    assert_eq!(
        sys.outcome(&name).expect("completes").name,
        "orderCompleted"
    );
    assert!(
        sys.shard_stats(0).forwarded >= 1,
        "shard 0 must have forwarded: {:?}",
        sys.shard_stats(0)
    );
    assert!(
        sys.shard_stats(owner).dispatches > 0,
        "the owner runs the instance"
    );
    assert_eq!(
        sys.shard_stats(0).dispatches,
        0,
        "shard 0 must not have executed anything"
    );
}

#[test]
fn whole_sharded_system_restarts_over_surviving_disks() {
    // Drop a sharded system mid-flight and rebuild a new one over the
    // same per-shard storages: every shard resumes its own instances.
    let storages;
    {
        let mut sys = build(4);
        start_population(&mut sys);
        storages = sys.shard_storages();
        sys.run_until(SimTime::from_nanos(40_000_000));
        // The system dies here (dropped), volatile state lost.
    }
    let mut sys2 = WorkflowSystem::builder()
        .executors(3)
        .coordinators(4)
        .seed(8)
        .link(det_link())
        .config(det_config())
        .shard_storages(storages)
        .build();
    sys2.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys2.register_script("trip", samples::BUSINESS_TRIP, "tripReservation")
        .unwrap();
    bind_order(&sys2);
    bind_trip(&sys2);
    sys2.run();
    for (name, _) in population() {
        let status = sys2.status(&name).unwrap();
        assert!(
            matches!(status, InstanceStatus::Completed(_)),
            "{name}: {status:?}"
        );
    }
    assert!(sys2.stats().recovered_instances >= population().len() as u64);
}

/// The 10k-concurrent-instances smoke test the sharding work unlocks.
/// Scaled down in debug builds (the CI release matrix runs the full
/// population; see `.github/workflows/ci.yml`).
#[test]
fn ten_k_concurrent_instances_smoke() {
    let count: usize = if cfg!(debug_assertions) { 300 } else { 10_000 };
    let config = EngineConfig {
        // Nothing fails here; keep the watchdogs far away.
        dispatch_timeout: SimDuration::from_secs(120),
        record_dispatches: false,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(4)
        .coordinators(8)
        .seed(11)
        .link(det_link())
        .config(config)
        .trace(false)
        .build();
    sys.register_script("q", samples::QUICKSTART, "pipeline")
        .unwrap();
    // Long virtual work so every instance is in flight at once.
    sys.bind_fn("refProduce", |_| {
        TaskBehavior::outcome("produced")
            .with_work(SimDuration::from_secs(30))
            .with_object("message", ObjectVal::text("Message", "m"))
    });
    sys.bind_fn("refConsume", |_| {
        TaskBehavior::outcome("consumed")
            .with_work(SimDuration::from_secs(30))
            .with_object("result", ObjectVal::text("Message", "r"))
    });
    for i in 0..count {
        sys.start(
            &format!("wave-{i}"),
            "q",
            "main",
            [("seed", text("Message", "s"))],
        )
        .unwrap();
    }
    sys.run();
    let mut per_shard = vec![0usize; sys.shard_count()];
    for i in 0..count {
        let name = format!("wave-{i}");
        assert_eq!(sys.outcome(&name).expect("completed").name, "done");
        per_shard[sys.shard_of(&name)] += 1;
    }
    assert_eq!(per_shard.iter().sum::<usize>(), count);
    for (shard, &owned) in per_shard.iter().enumerate() {
        assert!(owned > 0, "shard {shard} owned nothing: {per_shard:?}");
    }
    assert_eq!(sys.stats().dispatches, 2 * count as u64);
}
