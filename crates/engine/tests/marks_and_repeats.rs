//! Leaf-level marks (early release during execution, Fig. 3) and
//! leaf-level repeat outcomes — the non-compound halves of the output
//! model, complementing the compound cases in `paper_scenarios.rs`.

use flowscript_engine::{CbState, ObjectVal, TaskBehavior, WorkflowSystem};
use flowscript_sim::{SimDuration, SimTime};

const MARK_SCRIPT: &str = r#"
class Data;
class Cost;

taskclass LongRunner {
    inputs { input main { in of class Data } };
    outputs {
        outcome finished { out of class Data };
        mark estimate { cost of class Cost }
    }
}

taskclass EagerConsumer {
    inputs { input main { cost of class Cost } };
    outputs { outcome billed { } }
}

taskclass Root {
    inputs { input main { in of class Data } };
    outputs {
        outcome done { out of class Data };
        mark bill { cost of class Cost }
    }
}

compoundtask root of taskclass Root {
    task runner of taskclass LongRunner {
        implementation { "code" is "refRunner" };
        inputs { input main { inputobject in from { in of task root if input main } } }
    };
    task biller of taskclass EagerConsumer {
        implementation { "code" is "refBiller" };
        inputs { input main { inputobject cost from { cost of task runner if output estimate } } }
    };
    outputs {
        outcome done {
            outputobject out from { out of task runner if output finished };
            notification from { task biller if output billed }
        };
        mark bill {
            outputobject cost from { cost of task runner if output estimate }
        }
    }
}
"#;

#[test]
fn leaf_mark_released_while_task_still_executing() {
    let mut sys = WorkflowSystem::builder().executors(2).seed(91).build();
    sys.register_script("m", MARK_SCRIPT, "root").unwrap();
    // The runner works for 10 seconds but releases its cost estimate
    // after 1 second.
    sys.bind_fn("refRunner", |ctx| {
        TaskBehavior::outcome("finished")
            .with_work(SimDuration::from_secs(10))
            .with_mark(
                SimDuration::from_secs(1),
                "estimate",
                [("cost", ObjectVal::text("Cost", "42"))],
            )
            .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
    });
    sys.bind_fn("refBiller", |ctx| {
        assert_eq!(ctx.input_text("cost"), "42");
        TaskBehavior::outcome("billed")
    });
    sys.start("m1", "m", "main", [("in", ObjectVal::text("Data", "x"))])
        .unwrap();

    // After 2 virtual seconds the mark is out, the biller has consumed
    // it, and the runner is *still executing* — early release in action.
    sys.run_until(SimTime::from_nanos(2_000_000_000));
    let states = sys.task_states("m1");
    assert!(matches!(states["root/runner"], CbState::Executing { .. }));
    assert!(matches!(states["root/biller"], CbState::Done { .. }));
    // The compound-level `bill` mark was propagated from the leaf mark.
    assert_eq!(
        sys.output_fact("m1", "root", "bill").unwrap()["cost"].as_text(),
        "42"
    );
    assert!(sys.outcome("m1").is_none(), "root must still be running");

    sys.run();
    let outcome = sys.outcome("m1").expect("completes");
    assert_eq!(outcome.name, "done");
    assert_eq!(sys.stats().marks, 2, "leaf mark + compound mark");
}

#[test]
fn duplicate_and_undeclared_marks_ignored() {
    let mut sys = WorkflowSystem::builder().executors(2).seed(92).build();
    sys.register_script("m", MARK_SCRIPT, "root").unwrap();
    sys.bind_fn("refRunner", |ctx| {
        TaskBehavior::outcome("finished")
            .with_work(SimDuration::from_secs(2))
            // The same mark twice plus one the class does not declare:
            // only the first `estimate` may land.
            .with_mark(
                SimDuration::from_millis(100),
                "estimate",
                [("cost", ObjectVal::text("Cost", "1"))],
            )
            .with_mark(
                SimDuration::from_millis(200),
                "estimate",
                [("cost", ObjectVal::text("Cost", "2"))],
            )
            .with_mark(
                SimDuration::from_millis(300),
                "undeclared",
                [("cost", ObjectVal::text("Cost", "3"))],
            )
            .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
    });
    sys.bind_fn("refBiller", |ctx| {
        assert_eq!(ctx.input_text("cost"), "1", "first mark wins");
        TaskBehavior::outcome("billed")
    });
    sys.start("m1", "m", "main", [("in", ObjectVal::text("Data", "x"))])
        .unwrap();
    sys.run();
    assert!(sys.outcome("m1").is_some());
    let fact = sys.output_fact("m1", "root/runner", "estimate").unwrap();
    assert_eq!(fact["cost"].as_text(), "1");
    assert!(sys.output_fact("m1", "root/runner", "undeclared").is_none());
}

const LEAF_REPEAT_SCRIPT: &str = r#"
class Data;

taskclass Poller {
    inputs { input main { in of class Data } };
    outputs {
        outcome ready { out of class Data };
        repeat outcome poll { progress of class Data }
    }
}

taskclass Root {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}

compoundtask root of taskclass Root {
    task poller of taskclass Poller {
        implementation { "code" is "refPoller" };
        inputs { input main { inputobject in from { in of task root if input main } } }
    };
    outputs { outcome done { outputobject out from { out of task poller if output ready } } }
}
"#;

#[test]
fn leaf_repeat_reexecutes_with_carried_objects() {
    let mut sys = WorkflowSystem::builder().executors(2).seed(93).build();
    sys.register_script("p", LEAF_REPEAT_SCRIPT, "root")
        .unwrap();
    // Poll until the carried progress counter reaches 3 (Fig. 3's
    // Repeat1 transition, state carried through repeat objects).
    sys.bind_fn("refPoller", |ctx| {
        let progress: u32 = ctx
            .repeat_objects
            .get("progress")
            .map(|o| o.as_text().parse().unwrap_or(0))
            .unwrap_or(0);
        if progress < 3 {
            TaskBehavior::outcome("poll")
                .with_object(
                    "progress",
                    ObjectVal::text("Data", (progress + 1).to_string()),
                )
                .with_redo_after(SimDuration::from_millis(50))
        } else {
            TaskBehavior::outcome("ready").with_object(
                "out",
                ObjectVal::text("Data", format!("after-{progress}-polls")),
            )
        }
    });
    sys.start("p1", "p", "main", [("in", ObjectVal::text("Data", "x"))])
        .unwrap();
    sys.run();
    let outcome = sys.outcome("p1").expect("poller converges");
    assert_eq!(outcome.objects["out"].as_text(), "after-3-polls");
    assert_eq!(sys.stats().repeats, 3);
    // The redo delays are visible in virtual time (3 × 50ms + work).
    assert!(sys.now() >= SimTime::from_nanos(150_000_000));
}

#[test]
fn leaf_repeat_limit_enforced() {
    use flowscript_engine::coordinator::EngineConfig;
    let config = EngineConfig {
        max_repeats: 5,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .seed(94)
        .config(config)
        .build();
    sys.register_script("p", LEAF_REPEAT_SCRIPT, "root")
        .unwrap();
    // Never converges: the repeat bound must stop it.
    sys.bind_fn("refPoller", |_| {
        TaskBehavior::outcome("poll")
            .with_object("progress", ObjectVal::text("Data", "0"))
            .with_redo_after(SimDuration::from_millis(1))
    });
    sys.start("p1", "p", "main", [("in", ObjectVal::text("Data", "x"))])
        .unwrap();
    sys.run();
    match sys.status("p1").unwrap() {
        flowscript_engine::InstanceStatus::Stuck { reason } => {
            assert!(reason.contains("repeat limit"), "{reason}");
        }
        other => panic!("expected repeat-limit stuck, got {other:?}"),
    }
}
