//! Elastic fleet phase 2: planned drains and crash-driven adoption.
//!
//! A planned drain (`remove_coordinator`) must move the departing
//! shard's whole population to the survivors in *batched* 2PC rounds
//! and leave per-instance results byte-identical to a run that never
//! drained. Crash-driven adoption (`adopt_dead_shard`) must fence the
//! dead shard's storage so a zombie can never commit again, then land
//! every instance on its new owner with zero lost outcomes — even when
//! the chaos harness kills the shard at any point inside the protocol.

use std::collections::BTreeMap;

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{
    CbState, InstanceStatus, KillPoint, ObjectVal, ObsEventKind, ObserveLevel, TaskBehavior,
    WorkflowSystem,
};
use flowscript_sim::net::LinkConfig;
use flowscript_sim::{SimDuration, SimTime};
use flowscript_tx::{TxError, TxManager};

/// A fully deterministic link, so baseline and drained runs consume the
/// shared RNG identically.
fn det_link() -> LinkConfig {
    LinkConfig {
        base_latency: SimDuration::from_micros(200),
        jitter: SimDuration::ZERO,
        drop_prob: 0.0,
    }
}

fn det_config() -> EngineConfig {
    EngineConfig {
        dispatch_timeout: SimDuration::from_millis(400),
        retry_backoff: SimDuration::from_millis(20),
        max_retries: 8,
        record_dispatches: true,
        observe: ObserveLevel::Trace,
        ..EngineConfig::default()
    }
}

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

/// Fig. 7 bindings: pure functions of the invocation, with enough
/// simulated work (~100ms per order) that a mid-run drain catches
/// instances with tasks genuinely executing.
fn bind_order(sys: &WorkflowSystem) {
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(30))
            .with_object("paymentInfo", ObjectVal::text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_millis(45))
            .with_object("stockInfo", ObjectVal::text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(25))
            .with_object("dispatchNote", ObjectVal::text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
}

fn build(coordinators: usize) -> WorkflowSystem {
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .coordinators(coordinators)
        .seed(7)
        .link(det_link())
        .config(det_config())
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    bind_order(&sys);
    sys
}

fn population() -> Vec<String> {
    (0..24).map(|i| format!("order-{i}")).collect()
}

fn start_population(sys: &mut WorkflowSystem) {
    for name in population() {
        sys.start(&name, "order", "main", [("order", text("Order", &name))])
            .unwrap();
    }
}

/// Full per-instance fingerprint: the encoded terminal status (outcome
/// objects included) and every task's final state, attempts included.
/// Planned drains relay in-flight replies, so nothing — not even an
/// attempt count — may change.
type Fingerprint = (Vec<u8>, BTreeMap<String, CbState>);

fn fingerprint(sys: &WorkflowSystem, instance: &str) -> Fingerprint {
    let status = sys.status(instance).expect("instance known");
    assert!(status.is_terminal(), "{instance} not terminal: {status:?}");
    (
        flowscript_codec::to_bytes(&status),
        sys.task_states(instance),
    )
}

/// Outcome-only fingerprint for the crash arms: a kill mid-protocol
/// legitimately costs watchdog retries (attempt bumps), but outcomes
/// are pure functions of the invocation and must match exactly.
fn outcome_print(sys: &WorkflowSystem, instance: &str) -> Vec<u8> {
    let status = sys.status(instance).expect("instance known");
    assert!(status.is_terminal(), "{instance} not terminal: {status:?}");
    flowscript_codec::to_bytes(&status)
}

fn baseline<F: Fn(&WorkflowSystem, &str) -> T, T>(print: F) -> BTreeMap<String, T> {
    let mut sys = build(3);
    start_population(&mut sys);
    sys.run();
    population()
        .into_iter()
        .map(|name| {
            let p = print(&sys, &name);
            (name, p)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Planned drains.
// ---------------------------------------------------------------------

#[test]
fn planned_drain_preserves_every_outcome() {
    let expected = baseline(fingerprint);

    // Live run: drain a shard mid-flight (~20ms into ~100ms orders).
    let mut sys = build(3);
    start_population(&mut sys);
    sys.run_until(SimTime::from_nanos(20_000_000));
    let departing = sys.coord_handle(1);
    let drained_count = departing.instance_names().len();
    assert!(drained_count > 0, "the drain must have work to move");

    let report = sys.remove_coordinator("coordinator1").expect("drain");
    assert_eq!(report.moved, drained_count, "the whole population moves");
    assert!(
        report.rounds < report.moved,
        "batching must amortize: {} rounds for {} instances",
        report.rounds,
        report.moved
    );
    assert_eq!(report.rounds, report.pause_ns.len());
    assert_eq!(report.epoch, 2, "one membership change after epoch 1");
    assert_eq!(sys.shard_count(), 2);
    assert!(
        !sys.coordinator_nodes()
            .iter()
            .any(|&n| n == departing.node()),
        "the drained node must leave the map"
    );
    assert_eq!(
        sys.stats().handoffs,
        report.moved as u64,
        "every move counted exactly once, at its commit decision"
    );

    sys.run();

    // No outcome, task state or attempt count may differ from the
    // never-drained run: the retired relay forwarded every late reply.
    for name in population() {
        assert_eq!(
            fingerprint(&sys, &name),
            expected[&name],
            "{name} diverged from the no-drain run"
        );
    }
    assert_eq!(sys.stats().forward_loops, 0);

    // Observability: the system-level drain events and the pause
    // histogram both recorded.
    let kinds: Vec<ObsEventKind> = sys
        .trace("coordinator1")
        .into_iter()
        .map(|e| e.kind)
        .collect();
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, ObsEventKind::DrainBegin { remaining } if *remaining == drained_count as u64)),
        "DrainBegin must record the population: {kinds:?}"
    );
    assert!(
        kinds.iter().any(|k| matches!(
            k,
            ObsEventKind::DrainEnd { moved, rounds }
                if *moved == report.moved as u64 && *rounds == report.rounds as u64
        )),
        "DrainEnd must record the tally: {kinds:?}"
    );
    let snapshot = sys.metrics_snapshot();
    let pauses = snapshot
        .histogram("coord.drain_pause_ns")
        .expect("histogram");
    assert_eq!(pauses.count, report.rounds as u64);
}

#[test]
fn drain_refuses_the_last_coordinator() {
    let mut sys = build(1);
    let err = sys.remove_coordinator("coordinator").expect_err("refuse");
    assert!(err.to_string().contains("last coordinator"), "{err}");
    let err = sys.remove_coordinator("nonesuch").expect_err("unknown");
    assert!(err.to_string().contains("nonesuch"), "{err}");
}

/// Kill the draining shard at every point inside a batch round: the
/// call errors mid-protocol, the restarted node recovers (presumed
/// abort before the decision, committed verdict re-announcement after
/// it), and a re-run drains what is left. Zero lost outcomes.
#[test]
fn drain_killed_at_any_point_converges_on_rerun() {
    let expected = baseline(outcome_print);
    for point in [
        KillPoint::BeforeBegin,
        KillPoint::AfterBegin,
        KillPoint::AfterPrepare,
        KillPoint::AfterDecision,
    ] {
        let mut sys = build(3);
        start_population(&mut sys);
        sys.run_until(SimTime::from_nanos(20_000_000));
        let victim = sys.coord_handle(1).node();

        sys.arm_chaos_kill(point, 0);
        let err = sys
            .remove_coordinator("coordinator1")
            .expect_err("the armed kill must abort the drain");
        assert!(err.to_string().contains("chaos"), "{point:?}: {err}");
        assert_eq!(
            sys.shard_count(),
            3,
            "{point:?}: a failed drain must not retire the shard"
        );

        // The operator brings the node back and retries the drain.
        sys.restart_now(victim);
        sys.run_for(SimDuration::from_millis(100));
        let report = sys
            .remove_coordinator("coordinator1")
            .unwrap_or_else(|e| panic!("{point:?}: re-drain failed: {e}"));
        assert_eq!(sys.shard_count(), 2);
        // After the decision the first attempt's batch already moved:
        // the re-run only carries the remainder.
        if point == KillPoint::AfterDecision {
            assert!(report.moved < expected.len(), "{point:?}");
        }
        sys.run();

        for name in population() {
            assert_eq!(
                outcome_print(&sys, &name),
                expected[&name],
                "{point:?}: {name} lost or changed its outcome"
            );
        }
        assert_eq!(
            sys.stats().forward_loops,
            0,
            "{point:?}: relays must not loop"
        );
    }
}

// ---------------------------------------------------------------------
// Crash-driven adoption.
// ---------------------------------------------------------------------

#[test]
fn dead_shard_adoption_loses_no_outcomes() {
    let expected = baseline(outcome_print);

    let mut sys = build(3);
    start_population(&mut sys);
    sys.run_until(SimTime::from_nanos(20_000_000));
    let dead = sys.coord_handle(1);
    let dead_population = dead.instance_names().len();
    assert!(dead_population > 0);

    // The shard dies and never comes back: its instances are adopted
    // straight out of the surviving storage.
    sys.crash_now(dead.node());
    let report = sys.adopt_dead_shard("coordinator1").expect("failover");
    assert_eq!(report.adopted, dead_population);
    assert_eq!(report.epoch, 2);
    assert_eq!(sys.shard_count(), 2);

    sys.run();
    for name in population() {
        assert_eq!(
            outcome_print(&sys, &name),
            expected[&name],
            "{name} lost or changed its outcome in the failover"
        );
    }
    assert_eq!(sys.stats().adoptions, dead_population as u64);
    assert_eq!(
        sys.metrics_snapshot().counter("coord.adoptions"),
        dead_population as u64
    );

    // A formerly dead-shard instance carries the claim + adoption pair
    // in its trace, stamped with the dead shard and the claim epoch.
    let moved = population()
        .into_iter()
        .find(|name| {
            sys.trace(name)
                .iter()
                .any(|e| matches!(e.kind, ObsEventKind::Claim { .. }))
        })
        .expect("some instance was claimed");
    let kinds: Vec<ObsEventKind> = sys.trace(&moved).into_iter().map(|e| e.kind).collect();
    let from = dead.node().index() as u32;
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, ObsEventKind::Claim { from: f, epoch: 2 } if *f == from)),
        "{moved}: {kinds:?}"
    );
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, ObsEventKind::Adopted { from: f, epoch: 2 } if *f == from)),
        "{moved}: {kinds:?}"
    );
}

/// The false-positive scenario: the "dead" shard is actually alive.
/// The fence must muzzle it — it drops every message and timer, its
/// log never grows again, and a manager reopened under its identity is
/// refused on its first append.
#[test]
fn fenced_zombie_cannot_commit_after_storage_is_claimed() {
    let expected = baseline(outcome_print);

    let mut sys = build(3);
    start_population(&mut sys);
    sys.run_until(SimTime::from_nanos(20_000_000));
    let zombie = sys.coord_handle(0);
    let zombie_node = zombie.node();
    let storage = sys.storage();
    assert!(
        sys.world_mut().is_up(zombie_node),
        "the victim is deliberately alive: failure detection lied"
    );

    sys.adopt_dead_shard("coordinator0").expect("failover");
    let muzzled_at = zombie.log_size();

    // The live zombie keeps receiving executor replies and firing
    // watchdogs for the whole rest of the run — none of it may commit.
    sys.run();
    assert_eq!(
        zombie.log_size(),
        muzzled_at,
        "a fenced shard's log must never grow again"
    );
    for name in population() {
        assert_eq!(
            outcome_print(&sys, &name),
            expected[&name],
            "{name} lost or changed its outcome under the false positive"
        );
    }

    // Even reopening the storage under the zombie's identity is
    // refused: the fence survives in the log.
    let mut mgr = TxManager::open(zombie_node.index() as u32, storage).expect("replay");
    assert!(
        matches!(mgr.write_fence(99), Err(TxError::Fenced { epoch: 2, .. })),
        "a fenced manager must refuse its first append"
    );
}

/// Kill the driver mid-claim: some instances are claimed, the fence is
/// written, nothing was retired. The re-run is idempotent — it skips
/// what was claimed, claims the rest, and sweeps everything home.
#[test]
fn adoption_killed_mid_claim_converges_on_rerun() {
    let expected = baseline(outcome_print);

    let mut sys = build(3);
    start_population(&mut sys);
    sys.run_until(SimTime::from_nanos(20_000_000));
    let dead = sys.coord_handle(1);
    let dead_population = dead.instance_names().len();
    assert!(dead_population >= 2, "need at least two claims to split");

    sys.crash_now(dead.node());
    sys.arm_chaos_kill(KillPoint::MidClaim, 1);
    let err = sys
        .adopt_dead_shard("coordinator1")
        .expect_err("the armed kill must abort the adoption");
    assert!(err.to_string().contains("chaos"), "{err}");
    assert_eq!(sys.shard_count(), 3, "no retirement on a failed run");

    let report = sys.adopt_dead_shard("coordinator1").expect("re-run");
    assert_eq!(
        report.adopted,
        dead_population - 1,
        "the re-run must skip the already-claimed instance"
    );
    assert_eq!(sys.shard_count(), 2);

    sys.run();
    for name in population() {
        assert_eq!(
            outcome_print(&sys, &name),
            expected[&name],
            "{name} lost or changed its outcome across the interrupted failover"
        );
    }
    assert_eq!(sys.stats().adoptions, dead_population as u64);
}

// ---------------------------------------------------------------------
// Admission occupancy follows hand-offs.
// ---------------------------------------------------------------------

/// One long-running leaf, so occupancy is easy to stage.
const ONE_TASK: &str = r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
    task w of taskclass Work {
        implementation { "code" is "refWork" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    outputs { outcome done { notification from { task w if output done } } }
}
"#;

/// Draining into a shard near its admission cap must *queue* later
/// starts, not overrun the cap: adopted instances occupy admission
/// slots on their new shard, and release them when they terminate.
#[test]
fn drain_into_near_capacity_shard_queues_rather_than_overruns() {
    let config = EngineConfig {
        max_inflight_instances: Some(3),
        admission_queue_limit: 4,
        observe: ObserveLevel::Trace,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .coordinators(2)
        .seed(8)
        .link(det_link())
        .config(config)
        .build();
    sys.register_script("one", ONE_TASK, "root").unwrap();
    sys.bind_fn("refWork", |_| {
        TaskBehavior::outcome("done").with_work(SimDuration::from_millis(500))
    });

    // Stage occupancy: two live instances on each shard (cap 3 each).
    let mut names = (0..).map(|i| format!("job-{i}"));
    let mut on_shard = |sys: &WorkflowSystem, shard: usize, n: usize| -> Vec<String> {
        names
            .by_ref()
            .filter(|name| sys.shard_of(name) == shard)
            .take(n)
            .collect()
    };
    let src_jobs = on_shard(&sys, 0, 2);
    let dest_jobs = on_shard(&sys, 1, 2);
    for name in src_jobs.iter().chain(&dest_jobs) {
        sys.start(name, "one", "main", [("seed", text("Data", name))])
            .unwrap();
    }
    sys.run_for(SimDuration::from_millis(20));

    // The drain pushes shard 1 to four live instances — past its cap
    // of three. Internal moves are never admission-gated…
    let report = sys.remove_coordinator("coordinator0").expect("drain");
    assert_eq!(report.moved, 2);

    // …but the next start is: it must park in the admission queue
    // until TWO of the four drain away (4 → 3 is still at the cap),
    // not be admitted against a stale pre-drain occupancy.
    let admitted_at = sys.now();
    sys.start("late", "one", "main", [("seed", text("Data", "late"))])
        .unwrap();
    assert!(
        sys.now() >= admitted_at + SimDuration::from_millis(400),
        "the start must block on the adopted occupancy (blocked {} -> {})",
        admitted_at,
        sys.now()
    );
    assert_eq!(sys.stats().busy_rejections, 0, "queued, not rejected");
    let kinds: Vec<ObsEventKind> = sys.trace("late").into_iter().map(|e| e.kind).collect();
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, ObsEventKind::Parked { .. })),
        "the late start must park: {kinds:?}"
    );

    sys.run();
    for name in src_jobs
        .iter()
        .chain(&dest_jobs)
        .chain([&"late".to_string()])
    {
        assert!(
            matches!(sys.status(name).unwrap(), InstanceStatus::Completed(_)),
            "{name}: {:?}",
            sys.status(name)
        );
    }
}
