//! End-to-end reproductions of the paper's three example applications
//! (§5.1 network management, §5.2 order processing, §5.3 business trip)
//! plus the Fig. 1 dependency diamond and the Fig. 2 input-set semantics.

use std::cell::Cell;
use std::rc::Rc;

use flowscript_core::samples;
use flowscript_engine::{CbState, InstanceStatus, ObjectVal, TaskBehavior, WorkflowSystem};
use flowscript_sim::SimDuration;

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

// ---------------------------------------------------------------------
// Fig. 1: the four-task diamond.
// ---------------------------------------------------------------------

fn bind_diamond(sys: &WorkflowSystem) {
    sys.bind_fn("refT1", |ctx| {
        TaskBehavior::outcome("done").with_object(
            "out",
            ObjectVal::text("Data", format!("{}+t1", ctx.input_text("seed"))),
        )
    });
    sys.bind_fn("refT2", |_| {
        TaskBehavior::outcome("done").with_object("out", text("Data", "t2"))
    });
    sys.bind_fn("refT3", |ctx| {
        TaskBehavior::outcome("done").with_object(
            "out",
            ObjectVal::text("Data", format!("{}+t3", ctx.input_text("in"))),
        )
    });
    sys.bind_fn("refT4", |ctx| {
        TaskBehavior::outcome("done").with_object(
            "out",
            ObjectVal::text(
                "Data",
                format!("{}|{}", ctx.input_text("left"), ctx.input_text("right")),
            ),
        )
    });
}

#[test]
fn fig1_diamond_ordering_and_dataflow() {
    let mut sys = WorkflowSystem::builder().executors(3).seed(11).build();
    sys.register_script("diamond", samples::FIG1_DIAMOND, "diamond")
        .unwrap();
    bind_diamond(&sys);
    sys.start("d1", "diamond", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    let outcome = sys.outcome("d1").expect("diamond completes");
    assert_eq!(outcome.name, "done");
    // t4 joined t2's (notification-started) output with t3's dataflow.
    assert_eq!(outcome.objects["out"].as_text(), "t2|s+t1+t3");
    // All four tasks done.
    let states = sys.task_states("d1");
    for task in ["t1", "t2", "t3", "t4"] {
        assert!(
            matches!(states[&format!("diamond/{task}")], CbState::Done { .. }),
            "{task}: {:?}",
            states[&format!("diamond/{task}")]
        );
    }
}

#[test]
fn fig1_determinism_same_seed_same_trace() {
    fn run(seed: u64) -> String {
        let mut sys = WorkflowSystem::builder().executors(3).seed(seed).build();
        sys.register_script("diamond", samples::FIG1_DIAMOND, "diamond")
            .unwrap();
        bind_diamond(&sys);
        sys.start("d1", "diamond", "main", [("seed", text("Data", "s"))])
            .unwrap();
        sys.run();
        sys.sim_trace().render()
    }
    assert_eq!(run(42), run(42));
}

// ---------------------------------------------------------------------
// Fig. 2 semantics: alternative input sets with a timer.
// ---------------------------------------------------------------------

const TIMEOUT_SCRIPT: &str = r#"
class Data;
class Tick;

taskclass Slow {
    inputs { input main { seed of class Data } };
    outputs { outcome done { out of class Data } }
}

taskclass Timer {
    inputs { input main { seed of class Data } };
    outputs { outcome fired { } }
}

taskclass Consumer {
    inputs {
        input main { in of class Data };
        input fallback { }
    };
    outputs { outcome fromData { }; outcome fromTimeout { } }
}

taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome viaData { }; outcome viaTimeout { } }
}

compoundtask root of taskclass Root {
    task slow of taskclass Slow {
        implementation { "code" is "refSlow" };
        inputs { input main { inputobject seed from { seed of task root if input main } } }
    };
    task timeout of taskclass Timer {
        implementation { "code" is "builtin:timer"; "duration_ms" is "100" };
        inputs { input main { inputobject seed from { seed of task root if input main } } }
    };
    task consumer of taskclass Consumer {
        implementation { "code" is "refConsumer" };
        inputs {
            input main {
                inputobject in from { out of task slow if output done }
            };
            input fallback {
                notification from { task timeout if output fired }
            }
        }
    };
    outputs {
        outcome viaData { notification from { task consumer if output fromData } };
        outcome viaTimeout { notification from { task consumer if output fromTimeout } }
    }
}
"#;

#[test]
fn fig2_timer_set_wins_when_producer_is_slow() {
    let mut sys = WorkflowSystem::builder().executors(2).seed(5).build();
    sys.register_script("t", TIMEOUT_SCRIPT, "root").unwrap();
    // The slow producer takes 10 simulated seconds; the timer fires at
    // 100ms — the fallback set must win.
    sys.bind_fn("refSlow", |_| {
        TaskBehavior::outcome("done")
            .with_object("out", ObjectVal::text("Data", "late"))
            .with_work(SimDuration::from_secs(10))
    });
    sys.bind_fn("refConsumer", |ctx| {
        if ctx.set == "main" {
            TaskBehavior::outcome("fromData")
        } else {
            TaskBehavior::outcome("fromTimeout")
        }
    });
    sys.start("t1", "t", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    assert_eq!(sys.outcome("t1").unwrap().name, "viaTimeout");
}

#[test]
fn fig2_declared_set_order_wins_when_both_ready() {
    let mut sys = WorkflowSystem::builder().executors(2).seed(6).build();
    sys.register_script("t", TIMEOUT_SCRIPT, "root").unwrap();
    // Fast producer (1ms) against a 100ms timer: main set wins.
    sys.bind_fn("refSlow", |_| {
        TaskBehavior::outcome("done").with_object("out", ObjectVal::text("Data", "early"))
    });
    sys.bind_fn("refConsumer", |ctx| {
        if ctx.set == "main" {
            TaskBehavior::outcome("fromData")
        } else {
            TaskBehavior::outcome("fromTimeout")
        }
    });
    sys.start("t1", "t", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    assert_eq!(sys.outcome("t1").unwrap().name, "viaData");
}

// ---------------------------------------------------------------------
// §5.1 / Fig. 6: the service impact application.
// ---------------------------------------------------------------------

fn bind_service_impact(sys: &WorkflowSystem, resolvable: bool, analysis_fails: bool) {
    sys.bind_fn("refAlarmCorrelator", |ctx| {
        TaskBehavior::outcome("foundFault").with_object(
            "faultReport",
            ObjectVal::text(
                "FaultReport",
                format!("fault-from-{}", ctx.input_text("alarmSource")),
            ),
        )
    });
    if analysis_fails {
        sys.bind_fn("refServiceImpactAnalysis", |_| {
            TaskBehavior::outcome("serviceImpactAnalysisFailure")
        });
    } else {
        sys.bind_fn("refServiceImpactAnalysis", |ctx| {
            TaskBehavior::outcome("foundImpacts").with_object(
                "serviceImpactReports",
                ObjectVal::text(
                    "ServiceImpactReports",
                    format!("impacts({})", ctx.input_text("faultReport")),
                ),
            )
        });
    }
    if resolvable {
        sys.bind_fn("refServiceImpactResolution", |ctx| {
            TaskBehavior::outcome("foundResolution").with_object(
                "resolutionReport",
                ObjectVal::text(
                    "ResolutionReport",
                    format!("resolve({})", ctx.input_text("serviceImpactReports")),
                ),
            )
        });
    } else {
        sys.bind_fn("refServiceImpactResolution", |_| {
            TaskBehavior::outcome("foundNoResolution")
        });
    }
}

#[test]
fn fig6_service_impact_resolved_path() {
    let mut sys = WorkflowSystem::builder().executors(3).seed(21).build();
    sys.register_script("si", samples::SERVICE_IMPACT, "serviceImpactApplication")
        .unwrap();
    bind_service_impact(&sys, true, false);
    sys.start(
        "net1",
        "si",
        "main",
        [("alarmsSource", text("AlarmsSource", "linkdown-alarms"))],
    )
    .unwrap();
    sys.run();
    let outcome = sys.outcome("net1").expect("resolved");
    assert_eq!(outcome.name, "resolved");
    assert_eq!(
        outcome.objects["resolutionReport"].as_text(),
        "resolve(impacts(fault-from-linkdown-alarms))"
    );
}

#[test]
fn fig6_service_impact_not_resolved_path() {
    let mut sys = WorkflowSystem::builder().executors(3).seed(22).build();
    sys.register_script("si", samples::SERVICE_IMPACT, "serviceImpactApplication")
        .unwrap();
    bind_service_impact(&sys, false, false);
    sys.start(
        "net1",
        "si",
        "main",
        [("alarmsSource", text("AlarmsSource", "a"))],
    )
    .unwrap();
    sys.run();
    assert_eq!(sys.outcome("net1").unwrap().name, "notResolved");
}

#[test]
fn fig6_service_impact_failure_path() {
    let mut sys = WorkflowSystem::builder().executors(3).seed(23).build();
    sys.register_script("si", samples::SERVICE_IMPACT, "serviceImpactApplication")
        .unwrap();
    bind_service_impact(&sys, true, true);
    sys.start(
        "net1",
        "si",
        "main",
        [("alarmsSource", text("AlarmsSource", "a"))],
    )
    .unwrap();
    sys.run();
    let outcome = sys.outcome("net1").unwrap();
    assert_eq!(outcome.name, "serviceImpactApplicationFailure");
    // Resolution never ran: it was cancelled with the scope.
    let states = sys.task_states("net1");
    assert_eq!(
        states["serviceImpactApplication/serviceImpactResolution"],
        CbState::Cancelled
    );
}

// ---------------------------------------------------------------------
// §5.2 / Fig. 7: order processing.
// ---------------------------------------------------------------------

fn bind_order(sys: &WorkflowSystem, authorised: bool, in_stock: bool) {
    if authorised {
        sys.bind_fn("refPaymentAuthorisation", |ctx| {
            TaskBehavior::outcome("authorised").with_object(
                "paymentInfo",
                ObjectVal::text("PaymentInfo", format!("pay({})", ctx.input_text("order"))),
            )
        });
    } else {
        sys.bind_fn("refPaymentAuthorisation", |_| {
            TaskBehavior::outcome("notAuthorised")
        });
    }
    if in_stock {
        sys.bind_fn("refCheckStock", |ctx| {
            TaskBehavior::outcome("stockAvailable").with_object(
                "stockInfo",
                ObjectVal::text("StockInfo", format!("stock({})", ctx.input_text("order"))),
            )
        });
    } else {
        sys.bind_fn("refCheckStock", |_| {
            TaskBehavior::outcome("stockNotAvailable")
        });
    }
    sys.bind_fn("refDispatch", |ctx| {
        TaskBehavior::outcome("dispatchCompleted").with_object(
            "dispatchNote",
            ObjectVal::text(
                "DispatchNote",
                format!("note({})", ctx.input_text("stockInfo")),
            ),
        )
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
}

#[test]
fn fig7_order_completes() {
    let mut sys = WorkflowSystem::builder().executors(4).seed(31).build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    bind_order(&sys, true, true);
    sys.start("o1", "order", "main", [("order", text("Order", "order-7"))])
        .unwrap();
    sys.run();
    let outcome = sys.outcome("o1").expect("completes");
    assert_eq!(outcome.name, "orderCompleted");
    assert_eq!(
        outcome.objects["dispatchNote"].as_text(),
        "note(stock(order-7))"
    );
    // The full causal chain: all four tasks terminated.
    let states = sys.task_states("o1");
    for task in [
        "paymentAuthorisation",
        "checkStock",
        "dispatch",
        "paymentCapture",
    ] {
        assert!(matches!(
            states[&format!("processOrderApplication/{task}")],
            CbState::Done { .. }
        ));
    }
}

#[test]
fn fig7_order_cancelled_on_no_stock() {
    let mut sys = WorkflowSystem::builder().executors(4).seed(32).build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    bind_order(&sys, true, false);
    sys.start("o1", "order", "main", [("order", text("Order", "order-8"))])
        .unwrap();
    sys.run();
    assert_eq!(sys.outcome("o1").unwrap().name, "orderCancelled");
    // Dispatch and capture never ran.
    let states = sys.task_states("o1");
    assert_eq!(
        states["processOrderApplication/dispatch"],
        CbState::Cancelled
    );
    assert_eq!(
        states["processOrderApplication/paymentCapture"],
        CbState::Cancelled
    );
}

#[test]
fn fig7_order_cancelled_on_payment_refusal() {
    let mut sys = WorkflowSystem::builder().executors(4).seed(33).build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    bind_order(&sys, false, true);
    sys.start("o1", "order", "main", [("order", text("Order", "order-9"))])
        .unwrap();
    sys.run();
    assert_eq!(sys.outcome("o1").unwrap().name, "orderCancelled");
}

// ---------------------------------------------------------------------
// §5.3 / Figs. 8–9: the business trip with loop, compensation and mark.
// ---------------------------------------------------------------------

/// Binds the trip implementations. The hotel fails `hotel_failures`
/// times before succeeding; airline A never finds a flight, B and C do.
fn bind_trip(sys: &WorkflowSystem, hotel_failures: u32) {
    sys.bind_fn("refDataAcquisition", |ctx| {
        TaskBehavior::outcome("acquired").with_object(
            "tripData",
            ObjectVal::text("TripData", format!("trip({})", ctx.input_text("user"))),
        )
    });
    sys.bind_fn("refAirlineQueryA", |_| {
        TaskBehavior::outcome("notFound").with_work(SimDuration::from_millis(5))
    });
    sys.bind_fn("refAirlineQueryB", |ctx| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(12))
            .with_object(
                "flightList",
                ObjectVal::text(
                    "FlightList",
                    format!("fl-B({})", ctx.input_text("tripData")),
                ),
            )
    });
    sys.bind_fn("refAirlineQueryC", |ctx| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(30))
            .with_object(
                "flightList",
                ObjectVal::text(
                    "FlightList",
                    format!("fl-C({})", ctx.input_text("tripData")),
                ),
            )
    });
    sys.bind_fn("refFlightReservation", |ctx| {
        TaskBehavior::outcome("reserved")
            .with_object(
                "plane",
                ObjectVal::text("Plane", format!("plane({})", ctx.input_text("flightList"))),
            )
            .with_object("cost", ObjectVal::text("Cost", "420"))
    });
    let failures = Rc::new(Cell::new(hotel_failures));
    sys.bind_fn("refHotelReservation", move |_| {
        if failures.get() > 0 {
            failures.set(failures.get() - 1);
            TaskBehavior::outcome("failed")
        } else {
            TaskBehavior::outcome("hotelBooked")
                .with_object("hotel", ObjectVal::text("Hotel", "grand-hotel"))
        }
    });
    sys.bind_fn("refFlightCancellation", |_| {
        TaskBehavior::outcome("cancelled")
    });
    sys.bind_fn("refPrintTickets", |ctx| {
        TaskBehavior::outcome("printed").with_object(
            "tickets",
            ObjectVal::text(
                "Tickets",
                format!(
                    "tickets({}, {})",
                    ctx.input_text("plane"),
                    ctx.input_text("hotel")
                ),
            ),
        )
    });
}

#[test]
fn fig8_fig9_trip_books_first_time() {
    let mut sys = WorkflowSystem::builder().executors(4).seed(41).build();
    sys.register_script("trip", samples::BUSINESS_TRIP, "tripReservation")
        .unwrap();
    bind_trip(&sys, 0);
    sys.start("trip1", "trip", "main", [("user", text("User", "kim"))])
        .unwrap();
    sys.run();
    let outcome = sys.outcome("trip1").expect("booked");
    assert_eq!(outcome.name, "booked");
    assert!(outcome.objects["tickets"]
        .as_text()
        .contains("plane(fl-B(trip(kim)))"));
    // The redundant-source race: B (12ms) beat C (30ms), A found nothing.
    // The toPay mark was released.
    let mark = sys
        .output_fact("trip1", "tripReservation", "toPay")
        .expect("toPay mark");
    assert_eq!(mark["cost"].as_text(), "420");
    // No compensation was needed.
    let states = sys.task_states("trip1");
    assert!(matches!(
        states["tripReservation/businessReservation/flightCancellation"],
        CbState::Cancelled
    ));
}

#[test]
fn fig8_fig9_hotel_failures_compensate_and_retry() {
    let mut sys = WorkflowSystem::builder().executors(4).seed(42).build();
    sys.register_script("trip", samples::BUSINESS_TRIP, "tripReservation")
        .unwrap();
    bind_trip(&sys, 2);
    sys.start("trip1", "trip", "main", [("user", text("User", "kim"))])
        .unwrap();
    sys.run();
    let outcome = sys.outcome("trip1").expect("booked after retries");
    assert_eq!(outcome.name, "booked");
    // Two hotel failures ⇒ two compensations ⇒ two compound repeats.
    assert_eq!(sys.stats().repeats, 2, "stats: {:?}", sys.stats());
    // The mark from the final (successful) incarnation survives.
    assert!(sys
        .output_fact("trip1", "tripReservation", "toPay")
        .is_some());
}

#[test]
fn fig8_trip_fails_when_no_flight_exists() {
    let mut sys = WorkflowSystem::builder().executors(4).seed(43).build();
    sys.register_script("trip", samples::BUSINESS_TRIP, "tripReservation")
        .unwrap();
    bind_trip(&sys, 0);
    // Override all three airlines to find nothing.
    for reference in ["refAirlineQueryA", "refAirlineQueryB", "refAirlineQueryC"] {
        sys.bind_fn(reference, |_| TaskBehavior::outcome("notFound"));
    }
    sys.start("trip1", "trip", "main", [("user", text("User", "kim"))])
        .unwrap();
    sys.run();
    assert_eq!(sys.outcome("trip1").unwrap().name, "notBooked");
    // No mark: nothing to pay.
    assert!(sys
        .output_fact("trip1", "tripReservation", "toPay")
        .is_none());
}

#[test]
fn fig8_repeat_limit_bounds_infinite_hotel_failures() {
    use flowscript_engine::coordinator::EngineConfig;
    let config = EngineConfig {
        max_repeats: 4,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(4)
        .seed(44)
        .config(config)
        .build();
    sys.register_script("trip", samples::BUSINESS_TRIP, "tripReservation")
        .unwrap();
    bind_trip(&sys, u32::MAX); // the hotel never confirms
    sys.start("trip1", "trip", "main", [("user", text("User", "kim"))])
        .unwrap();
    sys.run();
    match sys.status("trip1").unwrap() {
        InstanceStatus::Stuck { reason } => {
            assert!(reason.contains("repeat limit"), "{reason}");
        }
        other => panic!("expected stuck on repeat limit, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// §4.3: a script as a task implementation.
// ---------------------------------------------------------------------

#[test]
fn script_bound_as_implementation_runs_nested_workflow() {
    let mut sys = WorkflowSystem::builder().executors(2).seed(51).build();
    sys.register_script("q", samples::QUICKSTART, "pipeline")
        .unwrap();
    // `refProduce` is implemented by a nested workflow: another full
    // pipeline whose producer/consumer are closures.
    sys.bind_script("refProduce", samples::QUICKSTART, "pipeline");
    sys.bind_fn("refConsume", |ctx| {
        TaskBehavior::outcome("consumed").with_object(
            "result",
            ObjectVal::text("Message", ctx.input_text("message")),
        )
    });
    // The nested pipeline needs its own leaf implementations; they share
    // the registry. Rebind refProduce inside the nested run would recurse,
    // so the nested script's produce leaf must bottom out: bind a plain
    // closure under a different name and rebind via the script? Instead,
    // the nested pipeline uses the same names — so we make refConsume
    // double as the nested consumer and let the nesting guard stop
    // run-away recursion if misused.
    //
    // For a clean demonstration: nested `refProduce` is the script itself,
    // whose own `refProduce` would recurse — the recursion guard converts
    // that into a bounded failure, so bind a terminating producer first.
    sys.bind_fn("refProduce", |ctx| {
        TaskBehavior::outcome("produced").with_object(
            "message",
            ObjectVal::text("Message", format!("<{}>", ctx.input_text("seed"))),
        )
    });
    sys.start("i1", "q", "main", [("seed", text("Message", "x"))])
        .unwrap();
    sys.run();
    let outcome = sys.outcome("i1").expect("completed");
    assert_eq!(outcome.objects["result"].as_text(), "<x>");
}
