//! The adaptive scheduling stack: weighted executor capacities with a
//! priority-ordered parked ready queue, observed-duration feedback
//! (per-code EWMA overriding lying `duration_ms` hints in watchdog
//! math), and per-shard admission control (queued starts, typed `Busy`
//! overflow, crash-safe occupancy accounting). Capacities and feedback
//! are **placement, not semantics**: per-instance outcomes, dispatch
//! traces and task states must not change, proven against the fig. 7 /
//! fig. 8 workloads across shard counts and by a randomized-capacity
//! proptest arm.

use std::collections::BTreeMap;

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{
    CbState, CommitBatch, EngineError, InstanceStatus, ObjectVal, ObsEventKind, ObserveLevel,
    SchedPolicy, TaskBehavior, WorkflowSystem,
};
use flowscript_sim::net::LinkConfig;
use flowscript_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

/// One leaf behind the root outcome — the smallest script that keeps an
/// instance alive exactly as long as its task runs.
const ONE_TASK: &str = r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
    task w of taskclass Work {
        implementation { "code" is "refWork" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    outputs { outcome done { notification from { task w if output done } } }
}
"#;

/// A `width`-way fan joined by an AND of notifications: the outcome is
/// independent of completion order, so any capacity-induced
/// serialization is observationally silent — exactly the property the
/// equivalence tests assert.
fn fan_join_source(width: usize) -> String {
    let mut source = String::from(
        r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
"#,
    );
    for i in 0..width {
        source.push_str(&format!(
            r#"    task w{i} of taskclass Work {{
        implementation {{ "code" is "refW{i}" }};
        inputs {{ input main {{ inputobject in from {{ seed of task root if input main }} }} }}
    }};
"#
        ));
    }
    source.push_str("    outputs { outcome done {\n");
    for i in 0..width {
        let sep = if i + 1 < width { ";" } else { "" };
        source.push_str(&format!(
            "        notification from {{ task w{i} if output done }}{sep}\n"
        ));
    }
    source.push_str("    } }\n}\n");
    source
}

// ---------------------------------------------------------------------
// Capacity parking: the per-shard ready queue.
// ---------------------------------------------------------------------

#[test]
fn saturated_capacity_parks_and_drains_by_priority() {
    // Three tasks become ready in one commit on ONE serial executor:
    // only the first dispatch fits, the rest park in the ready queue
    // and must drain highest declared priority first as completions
    // free the slot.
    let source = r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
    task low of taskclass Work {
        implementation { "code" is "refWork"; "priority" is "1" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    task high of taskclass Work {
        implementation { "code" is "refWork"; "priority" is "9" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    task mid of taskclass Work {
        implementation { "code" is "refWork"; "priority" is "5" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    outputs {
        outcome done {
            notification from { task low if output done };
            notification from { task high if output done };
            notification from { task mid if output done }
        }
    }
}
"#;
    let config = EngineConfig {
        scheduler: SchedPolicy::LeastLoaded,
        record_dispatches: true,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(1)
        .serial_executors(true)
        .seed(5)
        .config(config)
        .build();
    sys.register_script("prio", source, "root").unwrap();
    sys.bind_fn("refWork", |_| {
        TaskBehavior::outcome("done").with_work(SimDuration::from_millis(50))
    });
    sys.start("p1", "prio", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    assert!(sys.outcome("p1").is_some(), "{:?}", sys.status("p1"));
    let order: Vec<String> = sys
        .dispatch_trace_of("p1")
        .into_iter()
        .map(|d| d.path)
        .collect();
    assert_eq!(
        order,
        vec![
            "root/high".to_string(),
            "root/mid".to_string(),
            "root/low".to_string()
        ],
        "the parked ready queue must drain by declared priority"
    );
    let stats = sys.stats();
    assert_eq!(stats.dispatches, 3);
    assert_eq!(stats.retries, 0, "parking must not look like failure");
    assert_eq!(stats.dropped_dispatches, 0);
}

// ---------------------------------------------------------------------
// Admission control: queueing, typed overflow, post-crash accounting.
// ---------------------------------------------------------------------

fn admission_system(cap: usize, queue: usize, work_ms: u64) -> WorkflowSystem {
    let config = EngineConfig {
        max_inflight_instances: Some(cap),
        admission_queue_limit: queue,
        observe: ObserveLevel::Trace,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .seed(8)
        .config(config)
        .build();
    sys.register_script("one", ONE_TASK, "root").unwrap();
    sys.bind_fn("refWork", move |_| {
        TaskBehavior::outcome("done").with_work(SimDuration::from_millis(work_ms))
    });
    sys
}

#[test]
fn queued_start_blocks_until_capacity_frees_then_admits() {
    let mut sys = admission_system(1, 4, 300);
    sys.start("a", "one", "main", [("seed", text("Data", "s"))])
        .unwrap();
    assert!(
        sys.now() < SimTime::from_nanos(100_000_000),
        "a admits fast"
    );
    // The second start parks in the admission queue with its reply
    // token held open: the client call completes only once instance
    // "a" leaves the live set and the queue head is admitted.
    sys.start("b", "one", "main", [("seed", text("Data", "s"))])
        .unwrap();
    assert!(
        sys.now() >= SimTime::from_nanos(300_000_000),
        "b's start must block until a's 300ms of work frees the cap (now {})",
        sys.now()
    );
    sys.run();
    assert!(sys.outcome("a").is_some());
    assert!(sys.outcome("b").is_some());
    assert_eq!(sys.stats().busy_rejections, 0, "queue room means no Busy");
    // The queued instance's trace shows the park and the admit.
    let events = sys.trace("b");
    let kinds: Vec<&ObsEventKind> = events.iter().map(|e| &e.kind).collect();
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, ObsEventKind::Parked { queue_depth } if *queue_depth == 1)),
        "b must record Parked: {kinds:?}"
    );
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, ObsEventKind::Admitted { wait_ns } if *wait_ns > 0)),
        "b must record Admitted with a real wait: {kinds:?}"
    );
    let trace = sys.trace("b");
    drop(trace);
}

#[test]
fn full_admission_queue_returns_typed_busy() {
    let mut sys = admission_system(1, 0, 200);
    sys.start("a", "one", "main", [("seed", text("Data", "s"))])
        .unwrap();
    // Zero queue room: the overflow start is rejected immediately with
    // the typed, retryable error — not an input failure.
    let err = sys
        .start("b", "one", "main", [("seed", text("Data", "s"))])
        .expect_err("the cap is full");
    assert!(
        matches!(err, EngineError::Busy { queue_depth: 0 }),
        "expected Busy, got {err:?}"
    );
    assert_eq!(sys.stats().busy_rejections, 1);
    sys.run();
    assert!(sys.outcome("a").is_some());
    // After the live set drains the same start is admitted.
    sys.start("b", "one", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    assert!(sys.outcome("b").is_some());
}

#[test]
fn recovery_recounts_live_instances_for_admission() {
    let mut sys = admission_system(1, 0, 5_000);
    sys.start("a", "one", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run_for(SimDuration::from_millis(1_000));
    assert_eq!(sys.status("a").unwrap(), InstanceStatus::Running);
    // Crash and restart the coordinator mid-run: recovery must rebuild
    // the occupancy count from the persisted Running metas, so the cap
    // still holds against the recovered instance.
    let coordinator = sys.coordinator_node();
    sys.crash_now(coordinator);
    sys.restart_now(coordinator);
    sys.run_for(SimDuration::from_millis(100));
    let err = sys
        .start("b", "one", "main", [("seed", text("Data", "s"))])
        .expect_err("the recovered instance still occupies the cap");
    assert!(matches!(err, EngineError::Busy { .. }), "got {err:?}");
    sys.run();
    assert!(sys.outcome("a").is_some(), "{:?}", sys.status("a"));
    sys.start("b", "one", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    assert!(sys.outcome("b").is_some());
}

#[test]
fn crash_with_parked_dispatches_recovers_the_whole_fan() {
    // One serial executor, a 6-wide fan of 500ms tasks: 100ms in, one
    // task is executing and five sit in the parked ready queue. The
    // parked queue is volatile — the crash wipes it — so recovery must
    // re-derive every pending dispatch from the committed control
    // blocks alone.
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_secs(30),
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(1)
        .serial_executors(true)
        .seed(13)
        .config(config)
        .build();
    sys.register_script("fan", &fan_join_source(6), "root")
        .unwrap();
    for i in 0..6 {
        sys.bind_fn(&format!("refW{i}"), |_| {
            TaskBehavior::outcome("done").with_work(SimDuration::from_millis(500))
        });
    }
    sys.start("f1", "fan", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run_for(SimDuration::from_millis(100));
    let coordinator = sys.coordinator_node();
    sys.crash_now(coordinator);
    sys.restart_now(coordinator);
    sys.run();
    assert!(sys.outcome("f1").is_some(), "{:?}", sys.status("f1"));
    let states = sys.task_states("f1");
    assert!(
        states.values().all(|s| matches!(s, CbState::Done { .. })),
        "{states:?}"
    );
}

// ---------------------------------------------------------------------
// Observed-duration feedback vs lying hints.
// ---------------------------------------------------------------------

/// The probe→liar chain: two tasks share implementation code
/// `refShared` (400ms of real work); the probe declares 400ms honestly,
/// the downstream liar declares 1ms.
const LYING_CHAIN: &str = r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
    task probe of taskclass Work {
        implementation { "code" is "refShared"; "duration_ms" is "400" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    task liar of taskclass Work {
        implementation { "code" is "refShared"; "duration_ms" is "1" };
        inputs { input main { inputobject in from { out of task probe if output done } } }
    };
    outputs { outcome done { notification from { task liar if output done } } }
}
"#;

fn lying_chain_system(cost_feedback: bool) -> WorkflowSystem {
    let config = EngineConfig {
        scheduler: SchedPolicy::LeastLoaded,
        dispatch_timeout: SimDuration::from_millis(200),
        retry_backoff: SimDuration::from_millis(50),
        max_retries: 3,
        cost_feedback,
        record_dispatches: true,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .serial_executors(true)
        .seed(21)
        .config(config)
        .build();
    sys.register_script("lying", LYING_CHAIN, "root").unwrap();
    sys.bind_fn("refShared", |_| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(400))
            .with_object("out", text("Data", "d"))
    });
    sys
}

#[test]
fn declared_hints_alone_strand_the_lying_task() {
    let mut sys = lying_chain_system(false);
    sys.start("l1", "lying", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    // The liar's watchdog (base 200ms + declared 1ms) can never cover
    // its real 400ms execution: every attempt times out and relocates
    // until the budget is spent and the instance goes stuck.
    assert!(
        matches!(sys.status("l1").unwrap(), InstanceStatus::Stuck { .. }),
        "{:?}",
        sys.status("l1")
    );
    assert_eq!(sys.stats().retries, 3, "the whole retry budget burns");
    let liar_dispatches: Vec<_> = sys
        .dispatch_trace_of("l1")
        .into_iter()
        .filter(|d| d.path == "root/liar")
        .collect();
    assert_eq!(liar_dispatches.len(), 4, "initial attempt + 3 retries");
    let executors: std::collections::BTreeSet<_> =
        liar_dispatches.iter().map(|d| d.executor).collect();
    assert!(
        executors.len() > 1,
        "timed-out attempts must relocate across executors"
    );
}

#[test]
fn observed_durations_override_the_lying_watchdog() {
    let mut sys = lying_chain_system(true);
    sys.start("l1", "lying", "main", [("seed", text("Data", "s"))])
        .unwrap();
    sys.run();
    // The probe's completion teaches the per-code model ~400ms before
    // the liar dispatches; its watchdog stretches to cover the
    // observed duration (never below the declared floor), so the chain
    // completes without a single retry.
    assert_eq!(sys.outcome("l1").expect("chain completes").name, "done");
    assert_eq!(sys.stats().retries, 0);
    assert_eq!(sys.stats().dropped_dispatches, 0);
    assert_eq!(sys.dispatch_trace_of("l1").len(), 2, "one dispatch each");
}

// ---------------------------------------------------------------------
// Equivalence: capacities and feedback are placement, not semantics.
// ---------------------------------------------------------------------

type Fingerprint = (
    InstanceStatus,
    Vec<(String, u32)>,
    BTreeMap<String, CbState>,
);

fn fingerprint(sys: &WorkflowSystem, instance: &str) -> Fingerprint {
    let status = sys.status(instance).expect("instance known");
    assert!(status.is_terminal(), "{instance} not terminal: {status:?}");
    let trace = sys
        .dispatch_trace_of(instance)
        .into_iter()
        .map(|d| (d.path, d.attempt))
        .collect();
    (status, trace, sys.task_states(instance))
}

/// Fig. 7 + fig. 8 population under `coordinators` shards with the
/// observed-duration feedback toggled; executors stay unbounded so the
/// only degree of freedom feedback can move is *placement*.
fn run_paper_population(coordinators: usize, cost_feedback: bool) -> BTreeMap<String, Fingerprint> {
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_millis(400),
        retry_backoff: SimDuration::from_millis(20),
        record_dispatches: true,
        cost_feedback,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .coordinators(coordinators)
        .seed(7)
        .link(LinkConfig {
            base_latency: SimDuration::from_micros(200),
            jitter: SimDuration::ZERO,
            drop_prob: 0.0,
        })
        .config(config)
        .build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.register_script("trip", samples::BUSINESS_TRIP, "tripReservation")
        .unwrap();
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised")
            .with_work(SimDuration::from_millis(30))
            .with_object("paymentInfo", text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable")
            .with_work(SimDuration::from_millis(45))
            .with_object("stockInfo", text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_work(SimDuration::from_millis(25))
            .with_object("dispatchNote", text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
    sys.bind_fn("refDataAcquisition", |ctx| {
        TaskBehavior::outcome("acquired")
            .with_object("tripData", text("TripData", &ctx.input_text("user")))
    });
    sys.bind_fn("refAirlineQueryA", |_| {
        TaskBehavior::outcome("notFound").with_work(SimDuration::from_millis(5))
    });
    sys.bind_fn("refAirlineQueryB", |ctx| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(12))
            .with_object(
                "flightList",
                text("FlightList", &ctx.input_text("tripData")),
            )
    });
    sys.bind_fn("refAirlineQueryC", |ctx| {
        TaskBehavior::outcome("found")
            .with_work(SimDuration::from_millis(30))
            .with_object(
                "flightList",
                text("FlightList", &ctx.input_text("tripData")),
            )
    });
    sys.bind_fn("refFlightReservation", |ctx| {
        TaskBehavior::outcome("reserved")
            .with_object("plane", text("Plane", &ctx.input_text("flightList")))
            .with_object("cost", text("Cost", "c"))
    });
    sys.bind_fn("refHotelReservation", |_| {
        TaskBehavior::outcome("hotelBooked").with_object("hotel", text("Hotel", "h"))
    });
    sys.bind_fn("refFlightCancellation", |_| {
        TaskBehavior::outcome("cancelled")
    });
    sys.bind_fn("refPrintTickets", |_| {
        TaskBehavior::outcome("printed").with_object("tickets", text("Tickets", "tk"))
    });
    let mut names = Vec::new();
    for i in 0..6 {
        let name = format!("order-{i}");
        sys.start(&name, "order", "main", [("order", text("Order", &name))])
            .unwrap();
        names.push(name);
    }
    for i in 0..3 {
        let name = format!("trip-{i}");
        sys.start(&name, "trip", "main", [("user", text("User", &name))])
            .unwrap();
        names.push(name);
    }
    sys.run();
    names
        .into_iter()
        .map(|name| {
            let print = fingerprint(&sys, &name);
            (name, print)
        })
        .collect()
}

#[test]
fn feedback_preserves_paper_fingerprints_across_shards() {
    let baseline = run_paper_population(1, false);
    for (coordinators, cost_feedback) in [(1, true), (4, false), (4, true)] {
        assert_eq!(
            baseline,
            run_paper_population(coordinators, cost_feedback),
            "shards {coordinators}, feedback {cost_feedback}"
        );
    }
}

/// The AND-join fan under explicit executor capacities: outcome, task
/// states and the per-instance dispatch trace must match the
/// unbounded-fleet baseline no matter how hard capacities serialize
/// the fan.
fn run_fan_population(capacities: Option<Vec<u32>>, wave: usize) -> BTreeMap<String, Fingerprint> {
    let width = 6;
    let config = EngineConfig {
        scheduler: SchedPolicy::LeastLoaded,
        dispatch_timeout: SimDuration::from_secs(3600),
        record_dispatches: true,
        ..EngineConfig::default()
    };
    let mut builder = WorkflowSystem::builder()
        .executors(2)
        .seed(9)
        .config(config);
    if let Some(caps) = capacities {
        builder = builder.executors_weighted(caps);
    }
    let mut sys = builder.build();
    sys.register_script("fan", &fan_join_source(width), "root")
        .unwrap();
    for i in 0..width {
        let work = SimDuration::from_millis(40 + 30 * i as u64);
        sys.bind_fn(&format!("refW{i}"), move |_| {
            TaskBehavior::outcome("done").with_work(work)
        });
    }
    let mut names = Vec::new();
    for i in 0..wave {
        let name = format!("fan-{i}");
        sys.start(&name, "fan", "main", [("seed", text("Data", "s"))])
            .unwrap();
        names.push(name);
    }
    sys.run();
    assert_eq!(sys.stats().dropped_dispatches, 0);
    names
        .into_iter()
        .map(|name| {
            let print = fingerprint(&sys, &name);
            (name, print)
        })
        .collect()
}

#[test]
fn capacity_parking_preserves_fan_outcomes() {
    let baseline = run_fan_population(None, 4);
    for caps in [vec![1, 1], vec![1, 2], vec![3, 1], vec![2, 2, 1]] {
        assert_eq!(
            baseline,
            run_fan_population(Some(caps.clone()), 4),
            "capacities {caps:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized capacities (0 = unbounded) over randomized wave
    /// sizes: every instance must complete with a fingerprint
    /// byte-identical to the unbounded baseline.
    #[test]
    fn random_capacities_never_change_fan_outcomes(
        caps in proptest::collection::vec(0u32..4, 1..5),
        wave in 1usize..5,
    ) {
        let baseline = run_fan_population(None, wave);
        let parked = run_fan_population(Some(caps.clone()), wave);
        prop_assert_eq!(&baseline, &parked, "caps {:?} wave {}", caps, wave);
        for (name, (status, trace, _)) in &baseline {
            prop_assert!(status.is_terminal(), "{}: {:?}", name, status);
            prop_assert!(!trace.is_empty(), "{} never dispatched", name);
        }
    }
}

// ---------------------------------------------------------------------
// Adaptive commit windows: auto-tuning must not change behaviour and
// must not finish later than the static window.
// ---------------------------------------------------------------------

#[test]
fn adaptive_commit_window_is_no_worse_than_static() {
    let run = |adaptive: Option<SimDuration>| {
        let config = EngineConfig {
            commit_batch: CommitBatch {
                max_events: 64,
                max_window: SimDuration::from_millis(5),
            },
            adaptive_min_window: adaptive,
            ..EngineConfig::default()
        };
        let mut sys = WorkflowSystem::builder()
            .executors(3)
            .seed(17)
            .config(config)
            .build();
        sys.register_script("diamond", samples::FIG1_DIAMOND, "diamond")
            .unwrap();
        for code in ["refT1", "refT2", "refT3", "refT4"] {
            sys.bind_fn(code, |_| {
                TaskBehavior::outcome("done")
                    .with_work(SimDuration::from_millis(30))
                    .with_object("out", text("Data", "d"))
            });
        }
        let mut outcomes = Vec::new();
        for i in 0..8 {
            sys.start(
                &format!("d{i}"),
                "diamond",
                "main",
                [("seed", text("Data", "s"))],
            )
            .unwrap();
        }
        sys.run();
        for i in 0..8 {
            let name = format!("d{i}");
            outcomes.push((
                sys.outcome(&name).expect("diamond completes").name,
                sys.task_states(&name),
            ));
        }
        (outcomes, sys.now().since(SimTime::ZERO))
    };
    let (static_outcomes, static_makespan) = run(None);
    let (adaptive_outcomes, adaptive_makespan) = run(Some(SimDuration::from_millis(1)));
    assert_eq!(static_outcomes, adaptive_outcomes, "same behaviour");
    assert!(
        adaptive_makespan <= static_makespan,
        "narrowing the window under sparse arrivals must not finish later: \
         adaptive {adaptive_makespan:?} vs static {static_makespan:?}"
    );
}
