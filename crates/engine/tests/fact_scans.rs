//! Regression guards for the per-object fact layout.
//!
//! A readiness probe must be a **point read**: no uid prefix scan, no
//! fact range scan, no whole-record decode. The store counts both scan
//! families ([`TxManager::prefix_scan_count`],
//! [`TxManager::fact_range_scan_count`]); a clean run must leave both
//! flat. And a *corrupt* fact record must surface as a diagnosable
//! storage fault — never silently read as "fact absent" and
//! mis-evaluate readiness.
//!
//! [`TxManager::prefix_scan_count`]: flowscript_tx::TxManager::prefix_scan_count
//! [`TxManager::fact_range_scan_count`]: flowscript_tx::TxManager::fact_range_scan_count

use flowscript_core::samples;
use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{InstanceStatus, ObjectVal, TaskBehavior, WorkflowSystem};
use flowscript_sim::SimDuration;

fn text(class: &str, value: &str) -> ObjectVal {
    ObjectVal::text(class, value)
}

fn order_sys(seed: u64) -> WorkflowSystem {
    let mut sys = WorkflowSystem::builder().executors(2).seed(seed).build();
    sys.register_script(
        "order",
        samples::ORDER_PROCESSING,
        "processOrderApplication",
    )
    .unwrap();
    sys.bind_fn("refPaymentAuthorisation", |_| {
        TaskBehavior::outcome("authorised").with_object("paymentInfo", text("PaymentInfo", "p"))
    });
    sys.bind_fn("refCheckStock", |_| {
        TaskBehavior::outcome("stockAvailable").with_object("stockInfo", text("StockInfo", "s"))
    });
    sys.bind_fn("refDispatch", |_| {
        TaskBehavior::outcome("dispatchCompleted")
            .with_object("dispatchNote", text("DispatchNote", "n"))
    });
    sys.bind_fn("refPaymentCapture", |_| TaskBehavior::outcome("done"));
    sys
}

#[test]
fn per_object_probes_never_scan() {
    // A clean fig. 7 run: every readiness probe and every fact commit
    // is a point access. Subtree cancels, repeats, recovery and
    // reconfiguration are the only legitimate range scanners, and none
    // of them runs here.
    let mut sys = order_sys(1);
    for i in 0..4 {
        sys.start(
            &format!("o{i}"),
            "order",
            "main",
            [("order", text("Order", "o"))],
        )
        .unwrap();
    }
    let prefix_before = sys.store_prefix_scans();
    let range_before = sys.store_fact_range_scans();
    sys.run();
    for i in 0..4 {
        assert_eq!(
            sys.outcome(&format!("o{i}")).expect("completes").name,
            "orderCompleted"
        );
    }
    assert_eq!(
        sys.store_prefix_scans(),
        prefix_before,
        "probes must not scan uids by prefix"
    );
    assert_eq!(
        sys.store_fact_range_scans(),
        range_before,
        "per-object probes must be point reads, never fact range scans"
    );
}

/// A join of one fast and one slow producer: the window between their
/// completions is where fault injection can corrupt the fast fact.
const JOIN: &str = r#"
class Data;
taskclass Work {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}
taskclass Join {
    inputs { input main { left of class Data; right of class Data } };
    outputs { outcome done { } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
    task fast of taskclass Work {
        implementation { "code" is "refFast" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    task slow of taskclass Work {
        implementation { "code" is "refSlow" };
        inputs { input main { inputobject in from { seed of task root if input main } } }
    };
    task join of taskclass Join {
        implementation { "code" is "refJoin" };
        inputs { input main {
            inputobject left from { out of task fast if output done };
            inputobject right from { out of task slow if output done }
        } }
    };
    outputs { outcome done { notification from { task join if output done } } }
}
"#;

fn poisoned_run(whole_record_facts: bool) -> InstanceStatus {
    let config = EngineConfig {
        whole_record_facts,
        ..EngineConfig::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(2)
        .seed(7)
        .config(config)
        .build();
    sys.register_script("join", JOIN, "root").unwrap();
    sys.bind_fn("refFast", |_| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(5))
            .with_object("out", text("Data", "fast"))
    });
    sys.bind_fn("refSlow", |_| {
        TaskBehavior::outcome("done")
            .with_work(SimDuration::from_millis(200))
            .with_object("out", text("Data", "slow"))
    });
    sys.bind_fn("refJoin", |_| TaskBehavior::outcome("done"));
    sys.start("i", "join", "main", [("seed", text("Data", "s"))])
        .unwrap();
    // Let the fast producer commit, then corrupt its output fact while
    // the slow one is still executing.
    sys.run_for(SimDuration::from_millis(50));
    assert!(sys.poison_fact("i", "root/fast", "done"), "poison lands");
    sys.run();
    sys.status("i").unwrap()
}

#[test]
fn corrupt_fact_fails_the_instance_diagnosably() {
    // In both layouts the slow producer's commit re-evaluates the join,
    // whose probe hits the poisoned record: the drain must park the
    // instance with the storage fault — the old behaviour read the
    // corrupt fact as "absent" and left the instance waiting forever
    // with no explanation.
    for whole in [false, true] {
        match poisoned_run(whole) {
            InstanceStatus::Stuck { reason } => {
                assert!(
                    reason.contains("fact storage fault"),
                    "whole={whole}: undiagnosable reason: {reason}"
                );
            }
            other => panic!("whole={whole}: expected a storage-fault stop, got {other:?}"),
        }
    }
}
