//! Sharded / single-coordinator equivalence.
//!
//! Sharding instance ownership across `k` coordinator nodes is only
//! allowed to be a *placement* of the same execution — never a
//! different one. For randomized workflows (chains with alternative
//! and unconditioned `AnyOf` sources, attempt-keyed leaf repeat loops,
//! abort outcomes, a nested compound), random seeds and random
//! instance-name distributions, a `coordinators(1)` and a
//! `coordinators(k)` system must produce **identical per-instance
//! dispatch traces**, identical terminal statuses and identical task
//! states. Implementations are pure functions of the invocation
//! context (path, attempt, incarnation, inputs) so no hidden state can
//! leak between instances and break placement-independence; the link
//! is jitter-free so behaviour cannot depend on shared-RNG draw order.

use std::collections::BTreeMap;

use flowscript_engine::coordinator::EngineConfig;
use flowscript_engine::{CbState, InstanceStatus, ObjectVal, TaskBehavior, WorkflowSystem};
use flowscript_sim::net::LinkConfig;
use flowscript_sim::SimDuration;
use proptest::prelude::*;

/// Per-stage behaviour parameters, derived from the case seed.
#[derive(Debug, Clone, Copy)]
struct StageParams {
    /// Leaf repeat outcomes taken before completing (attempt-keyed).
    repeats: u32,
    /// Use an unconditioned source (compiles to `AnyOf` alternatives).
    any_of: bool,
    /// Complete with the `alt` outcome instead of `done`.
    alt: bool,
    /// Abort instead of completing (can leave the run stuck — all
    /// shard counts must agree on that too).
    abort: bool,
}

fn stage_params(seed: u64, i: usize) -> StageParams {
    let bits = seed >> ((i * 6) % 58);
    StageParams {
        repeats: (bits & 0b11) as u32 % 3,
        any_of: bits & 0b100 != 0,
        alt: bits & 0b1000 != 0,
        abort: bits & 0b11_0000 == 0b11_0000, // 1-in-4 per stage
    }
}

/// A chain of `n` stages plus a nested compound, all feeding the root's
/// `done` notification (the same shape the worklist equivalence
/// proptest uses).
fn generated_script(n: usize, seed: u64) -> String {
    let mut source = String::from(
        r#"class Data;
taskclass Stage {
    inputs { input main { in of class Data } };
    outputs {
        outcome done { out of class Data };
        outcome alt { out of class Data };
        abort outcome failed { };
        repeat outcome again { p of class Data }
    }
}
taskclass Inner {
    inputs { input main { in of class Data } };
    outputs { outcome done { out of class Data } }
}
taskclass Root {
    inputs { input main { seed of class Data } };
    outputs { outcome done { } }
}
compoundtask root of taskclass Root {
"#,
    );
    for i in 0..n {
        let from = if i == 0 {
            "inputobject in from { seed of task root if input main }".to_string()
        } else if stage_params(seed, i).any_of {
            format!(
                "inputobject in from {{ out of task t{prev}; seed of task root if input main }}",
                prev = i - 1
            )
        } else {
            format!(
                "inputobject in from {{ out of task t{prev} if output done; seed of task root if input main }}",
                prev = i - 1
            )
        };
        source.push_str(&format!(
            "    task t{i} of taskclass Stage {{\n        implementation {{ \"code\" is \"ref{i}\" }};\n        inputs {{ input main {{ {from} }} }}\n    }};\n"
        ));
    }
    source.push_str(&format!(
        r#"    compoundtask comp of taskclass Inner {{
        inputs {{ input main {{ inputobject in from {{ seed of task root if input main }} }} }};
        task inner of taskclass Inner {{
            implementation {{ "code" is "refInner" }};
            inputs {{ input main {{ inputobject in from {{ in of task comp if input main }} }} }}
        }};
        outputs {{
            outcome done {{ outputobject out from {{ out of task inner if output done }} }}
        }}
    }};
    outputs {{ outcome done {{ notification from {{ task t{last} if output done }}; notification from {{ task comp if output done }} }} }}
}}
"#,
        last = n - 1
    ));
    source
}

/// Binds every stage as a **pure** function of the invocation: repeat
/// loops key on `ctx.attempt`, everything else on the case parameters.
fn bind_stages(sys: &WorkflowSystem, n: usize, seed: u64) {
    for i in 0..n {
        let params = stage_params(seed, i);
        sys.bind_fn(&format!("ref{i}"), move |ctx| {
            if ctx.attempt < params.repeats {
                TaskBehavior::outcome("again")
                    .with_object("p", ObjectVal::text("Data", ctx.attempt.to_string()))
                    .with_redo_after(SimDuration::from_millis(20))
            } else if params.abort {
                TaskBehavior::outcome("failed")
            } else if params.alt {
                TaskBehavior::outcome("alt").with_object("out", ObjectVal::text("Data", "alt"))
            } else {
                TaskBehavior::outcome("done").with_object("out", ObjectVal::text("Data", "done"))
            }
        });
    }
    sys.bind_fn("refInner", |ctx| {
        TaskBehavior::outcome("done")
            .with_object("out", ObjectVal::text("Data", ctx.input_text("in")))
    });
}

type Fingerprint = (
    InstanceStatus,
    Vec<(String, u32)>,
    BTreeMap<String, CbState>,
);

fn run_population(
    coordinators: usize,
    n: usize,
    seed: u64,
    script: &str,
    names: &[String],
) -> BTreeMap<String, Fingerprint> {
    let config = EngineConfig {
        dispatch_timeout: SimDuration::from_millis(500),
        retry_backoff: SimDuration::from_millis(10),
        record_dispatches: true,
        ..Default::default()
    };
    let mut sys = WorkflowSystem::builder()
        .executors(3)
        .coordinators(coordinators)
        .seed(42) // identical virtual worlds; variation comes from `seed`
        .link(LinkConfig {
            base_latency: SimDuration::from_micros(200),
            jitter: SimDuration::ZERO,
            drop_prob: 0.0,
        })
        .config(config)
        .build();
    sys.register_script("g", script, "root")
        .expect("generated script compiles");
    bind_stages(&sys, n, seed);
    for name in names {
        sys.start(name, "g", "main", [("seed", ObjectVal::text("Data", "s"))])
            .expect("instance starts");
    }
    sys.run();
    names
        .iter()
        .map(|name| {
            let status = sys.status(name).expect("instance known");
            let trace = sys
                .dispatch_trace_of(name)
                .into_iter()
                .map(|d| (d.path, d.attempt))
                .collect();
            (name.clone(), (status, trace, sys.task_states(name)))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_execution_matches_single_coordinator(
        k in 2usize..9,
        n in 1usize..4,
        seed in any::<u64>(),
        salts in proptest::collection::vec(any::<u64>(), 2..7),
    ) {
        let script = generated_script(n, seed);
        // Random instance-name distribution (index prefix guarantees
        // uniqueness; the salt varies the rendezvous placement).
        let names: Vec<String> = salts
            .iter()
            .enumerate()
            .map(|(i, salt)| format!("wf{i}-{salt:016x}"))
            .collect();
        let single = run_population(1, n, seed, &script, &names);
        let sharded = run_population(k, n, seed, &script, &names);
        prop_assert_eq!(&single, &sharded, "k={} n={} seed={}", k, n, seed);
        // Every instance reached a terminal verdict in both worlds and
        // actually dispatched something.
        for (name, (status, trace, _)) in &single {
            prop_assert!(status.is_terminal(), "{}: {:?}", name, status);
            prop_assert!(!trace.is_empty(), "{} never dispatched", name);
        }
    }
}
