//! Instance sharding across coordinator nodes.
//!
//! The paper separates the script repository from the execution service
//! precisely so the execution service can scale out (§3, Fig. 4). This
//! module supplies the missing piece: a [`ShardMap`] assigning every
//! workflow instance — by **name** — to exactly one coordinator node.
//! Each coordinator owns its instances' facts, control blocks,
//! write-ahead log, interned key tables and worklists; the repository
//! (and its per-version plan cache) stays shared by all shards.
//!
//! Ownership is decided by **rendezvous (highest-random-weight)
//! hashing**: every shard computes a weight from `(shard index,
//! instance name)` and the highest weight wins. Compared with a mod-N
//! ring this gives
//!
//! - a deterministic, coordination-free mapping every node (and every
//!   client) can compute locally from the same coordinator list, and
//! - minimal disruption under growth: appending a coordinator only
//!   moves the instances the new shard now wins — everything else
//!   stays put (see `growth_moves_only_to_the_new_shard`).
//!
//! The map is no longer static: it carries an **epoch** that bumps on
//! every membership change ([`ShardMap::add_node`] /
//! [`ShardMap::remove_node`]). Every coordinator of a system starts
//! from the same epoch-1 map; a rebalance installs a successor map on
//! all of them after the hand-off protocol (see
//! [`crate::coordinator::CoordHandle`]) has 2PC'd the moving
//! instances' facts to their new owners. Requests landing on the wrong
//! shard are forwarded to the owner, stamped with the forwarder's
//! epoch, and a hop cap breaks the ping-pong two disagreeing maps
//! could otherwise sustain mid-flip.
//!
//! Each shard's rendezvous weight is keyed by a **stable seed**
//! assigned when the shard joins (not by its current index), so
//! removing a shard re-indexes the survivors without re-hashing them:
//! only the removed shard's instances move (see
//! `shrink_moves_only_from_the_removed_shard`).

use flowscript_sim::NodeId;

/// Seed for the per-(shard, instance) weight (an arbitrary odd
/// constant; any fixed value works, it just decorrelates the weights
/// from other FNV uses in the codebase).
const WEIGHT_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// The instance → coordinator-node assignment, shared verbatim by every
/// coordinator of one workflow system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    nodes: Vec<NodeId>,
    /// Stable per-shard rendezvous seed, parallel to `nodes`. A fresh
    /// map seeds shard `i` with `i` (identical placement to the old
    /// index-keyed scheme); later joins draw fresh seeds so removals
    /// never re-key survivors.
    seeds: Vec<u64>,
    /// Bumps on every membership change; starts at 1.
    epoch: u64,
    next_seed: u64,
}

impl ShardMap {
    /// Builds an epoch-1 map over the given coordinator nodes (shard
    /// `i` is `nodes[i]`).
    ///
    /// # Panics
    ///
    /// Panics on an empty node list — a system always has at least one
    /// coordinator.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "a shard map needs at least one node");
        let seeds = (0..nodes.len() as u64).collect();
        let next_seed = nodes.len() as u64;
        Self {
            nodes,
            seeds,
            epoch: 1,
            next_seed,
        }
    }

    /// Number of shards (= coordinator nodes).
    pub fn shard_count(&self) -> usize {
        self.nodes.len()
    }

    /// The coordinator nodes, in shard order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The membership epoch. Starts at 1 and bumps on every
    /// [`add_node`](Self::add_node) / [`remove_node`](Self::remove_node);
    /// requests and executor reports carry it so stale routing is
    /// diagnosable.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Appends a coordinator as a new shard, bumps the epoch, and
    /// returns the new shard's index. Only instances the new shard
    /// wins move (rendezvous growth property).
    ///
    /// # Panics
    ///
    /// Panics if `node` is already a shard.
    pub fn add_node(&mut self, node: NodeId) -> usize {
        assert!(
            !self.nodes.contains(&node),
            "node is already a shard of this map"
        );
        self.nodes.push(node);
        self.seeds.push(self.next_seed);
        self.next_seed += 1;
        self.epoch += 1;
        self.nodes.len() - 1
    }

    /// Removes a coordinator and bumps the epoch. Survivors keep their
    /// seeds, so only the removed shard's instances move (rendezvous
    /// shrink property).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a shard, or if removing it would leave
    /// the map empty.
    pub fn remove_node(&mut self, node: NodeId) {
        let idx = self
            .nodes
            .iter()
            .position(|&n| n == node)
            .expect("node is not a shard of this map");
        assert!(self.nodes.len() > 1, "a shard map needs at least one node");
        self.nodes.remove(idx);
        self.seeds.remove(idx);
        self.epoch += 1;
    }

    /// The rendezvous weight of `instance` on the shard with stable
    /// seed `seed`: an FNV-1a hash over the seed and the instance
    /// name, mixed once more so short names still spread.
    fn weight(seed: u64, instance: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ WEIGHT_SEED;
        for byte in seed.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        for byte in instance.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        // Final avalanche (splitmix64 tail).
        hash ^= hash >> 30;
        hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        hash ^= hash >> 27;
        hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
        hash ^ (hash >> 31)
    }

    /// The shard index owning `instance` (highest weight wins; ties —
    /// astronomically unlikely — break toward the lower index).
    pub fn shard_of(&self, instance: &str) -> usize {
        let mut best = 0usize;
        let mut best_weight = Self::weight(self.seeds[0], instance);
        for shard in 1..self.nodes.len() {
            let weight = Self::weight(self.seeds[shard], instance);
            if weight > best_weight {
                best = shard;
                best_weight = weight;
            }
        }
        best
    }

    /// The coordinator node owning `instance`.
    pub fn node_of(&self, instance: &str) -> NodeId {
        self.nodes[self.shard_of(instance)]
    }

    /// Whether `node` is the owner of `instance`.
    pub fn owns(&self, node: NodeId, instance: &str) -> bool {
        self.node_of(instance) == node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        // NodeId's internals are sim-crate private; fabricate ids via a
        // throwaway world.
        let mut world = flowscript_sim::World::new(0);
        (0..n).map(|i| world.add_node(format!("c{i}"))).collect()
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(nodes(1));
        for name in ["a", "order-17", "", "漢字"] {
            assert_eq!(map.shard_of(name), 0);
            assert_eq!(map.node_of(name), map.nodes()[0]);
        }
    }

    #[test]
    fn mapping_is_deterministic_and_total() {
        let map_a = ShardMap::new(nodes(8));
        let map_b = ShardMap::new(nodes(8));
        for i in 0..500 {
            let name = format!("instance{i}");
            let shard = map_a.shard_of(&name);
            assert!(shard < 8);
            assert_eq!(shard, map_b.shard_of(&name), "{name}");
            assert!(map_a.owns(map_a.node_of(&name), &name));
        }
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let map = ShardMap::new(nodes(8));
        let mut counts = [0usize; 8];
        for i in 0..4000 {
            counts[map.shard_of(&format!("wf-{i}"))] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            // Perfect balance is 500; accept a generous band.
            assert!(
                (300..=700).contains(&count),
                "shard {shard} got {count} of 4000: {counts:?}"
            );
        }
    }

    #[test]
    fn growth_moves_only_to_the_new_shard() {
        // The rendezvous property: appending a shard never moves an
        // instance between two pre-existing shards.
        let eight = nodes(9);
        let map_small = ShardMap::new(eight[..8].to_vec());
        let map_grown = ShardMap::new(eight.clone());
        let mut moved = 0usize;
        for i in 0..2000 {
            let name = format!("wf-{i}");
            let before = map_small.shard_of(&name);
            let after = map_grown.shard_of(&name);
            if before != after {
                assert_eq!(after, 8, "{name} moved between old shards");
                moved += 1;
            }
        }
        assert!(moved > 0, "the new shard should win some instances");
        // Roughly 1/9th of the keyspace moves.
        assert!(moved < 2000 / 4, "moved {moved}: far more than expected");
    }

    #[test]
    fn shrink_moves_only_from_the_removed_shard() {
        // The other half of the rendezvous guarantee: removing a shard
        // never moves an instance between two surviving shards.
        let nine = nodes(9);
        let map_full = ShardMap::new(nine.clone());
        let removed = 3usize;
        let mut map_shrunk = map_full.clone();
        map_shrunk.remove_node(nine[removed]);
        let mut moved = 0usize;
        for i in 0..2000 {
            let name = format!("wf-{i}");
            let before = map_full.node_of(&name);
            let after = map_shrunk.node_of(&name);
            if before != after {
                assert_eq!(before, nine[removed], "{name} moved off a surviving shard");
                moved += 1;
            }
        }
        assert!(moved > 0, "the removed shard owned some instances");
        // Roughly 1/9th of the keyspace moves.
        assert!(moved < 2000 / 4, "moved {moved}: far more than expected");
    }

    #[test]
    fn add_then_remove_round_trips_ownership() {
        let ten = nodes(10);
        let map_before = ShardMap::new(ten[..9].to_vec());
        let mut map = map_before.clone();
        let idx = map.add_node(ten[9]);
        assert_eq!(idx, 9);
        map.remove_node(ten[9]);
        for i in 0..500 {
            let name = format!("wf-{i}");
            assert_eq!(map.node_of(&name), map_before.node_of(&name), "{name}");
        }
    }

    #[test]
    #[should_panic(expected = "already a shard")]
    fn duplicate_add_rejected() {
        let two = nodes(2);
        let mut map = ShardMap::new(two.clone());
        map.add_node(two[0]);
    }

    #[test]
    #[should_panic(expected = "not a shard")]
    fn absent_remove_rejected() {
        let three = nodes(3);
        let mut map = ShardMap::new(three[..2].to_vec());
        map.remove_node(three[2]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn remove_to_empty_rejected() {
        let one = nodes(1);
        let mut map = ShardMap::new(one.clone());
        map.remove_node(one[0]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_map_rejected() {
        let _ = ShardMap::new(Vec::new());
    }

    mod epoch_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The epoch strictly increases across any add/remove
            /// sequence, and survivors never re-key on shrink.
            #[test]
            fn epoch_is_strictly_monotonic(ops in proptest::collection::vec(any::<bool>(), 1..20)) {
                let pool = nodes(24);
                let mut used = 2usize; // nodes 0..used are in the map
                let mut map = ShardMap::new(pool[..used].to_vec());
                let mut last_epoch = map.epoch();
                prop_assert_eq!(last_epoch, 1);
                for &grow in &ops {
                    if grow && used < pool.len() {
                        map.add_node(pool[used]);
                        used += 1;
                    } else if !grow && map.shard_count() > 1 {
                        let victim = *map.nodes().last().unwrap();
                        let before: Vec<_> = (0..64)
                            .map(|i| map.node_of(&format!("p{i}")))
                            .collect();
                        map.remove_node(victim);
                        for (i, owner) in before.into_iter().enumerate() {
                            if owner != victim {
                                prop_assert_eq!(map.node_of(&format!("p{i}")), owner);
                            }
                        }
                    } else {
                        continue;
                    }
                    prop_assert!(map.epoch() > last_epoch);
                    prop_assert_eq!(map.epoch(), last_epoch + 1);
                    last_epoch = map.epoch();
                }
            }
        }
    }
}
