//! Instance sharding across coordinator nodes.
//!
//! The paper separates the script repository from the execution service
//! precisely so the execution service can scale out (§3, Fig. 4). This
//! module supplies the missing piece: a [`ShardMap`] assigning every
//! workflow instance — by **name** — to exactly one coordinator node.
//! Each coordinator owns its instances' facts, control blocks,
//! write-ahead log, interned key tables and worklists; the repository
//! (and its per-version plan cache) stays shared by all shards.
//!
//! Ownership is decided by **rendezvous (highest-random-weight)
//! hashing**: every shard computes a weight from `(shard index,
//! instance name)` and the highest weight wins. Compared with a mod-N
//! ring this gives
//!
//! - a deterministic, coordination-free mapping every node (and every
//!   client) can compute locally from the same coordinator list, and
//! - minimal disruption under growth: appending a coordinator only
//!   moves the instances the new shard now wins — everything else
//!   stays put (see `growth_moves_only_to_the_new_shard`).
//!
//! The map is deliberately *static per system*: all coordinators are
//! built with the same list, so a request landing on the wrong shard is
//! simply forwarded to the owner (see
//! [`crate::coordinator::CoordHandle`]). Dynamic rebalancing (changing
//! the list under live instances) is future work — it needs a fact
//! hand-off protocol, not just a different hash.

use flowscript_sim::NodeId;

/// Seed for the per-(shard, instance) weight (an arbitrary odd
/// constant; any fixed value works, it just decorrelates the weights
/// from other FNV uses in the codebase).
const WEIGHT_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// The instance → coordinator-node assignment, shared verbatim by every
/// coordinator of one workflow system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    nodes: Vec<NodeId>,
}

impl ShardMap {
    /// Builds a map over the given coordinator nodes (shard `i` is
    /// `nodes[i]`).
    ///
    /// # Panics
    ///
    /// Panics on an empty node list — a system always has at least one
    /// coordinator.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        assert!(!nodes.is_empty(), "a shard map needs at least one node");
        Self { nodes }
    }

    /// Number of shards (= coordinator nodes).
    pub fn shard_count(&self) -> usize {
        self.nodes.len()
    }

    /// The coordinator nodes, in shard order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The rendezvous weight of `instance` on shard `shard`: an FNV-1a
    /// hash over the shard index and the instance name, mixed once more
    /// so short names still spread.
    fn weight(shard: usize, instance: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64 ^ WEIGHT_SEED;
        for byte in (shard as u64).to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        for byte in instance.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        // Final avalanche (splitmix64 tail).
        hash ^= hash >> 30;
        hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        hash ^= hash >> 27;
        hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
        hash ^ (hash >> 31)
    }

    /// The shard index owning `instance` (highest weight wins; ties —
    /// astronomically unlikely — break toward the lower index).
    pub fn shard_of(&self, instance: &str) -> usize {
        let mut best = 0usize;
        let mut best_weight = Self::weight(0, instance);
        for shard in 1..self.nodes.len() {
            let weight = Self::weight(shard, instance);
            if weight > best_weight {
                best = shard;
                best_weight = weight;
            }
        }
        best
    }

    /// The coordinator node owning `instance`.
    pub fn node_of(&self, instance: &str) -> NodeId {
        self.nodes[self.shard_of(instance)]
    }

    /// Whether `node` is the owner of `instance`.
    pub fn owns(&self, node: NodeId, instance: &str) -> bool {
        self.node_of(instance) == node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        // NodeId's internals are sim-crate private; fabricate ids via a
        // throwaway world.
        let mut world = flowscript_sim::World::new(0);
        (0..n).map(|i| world.add_node(format!("c{i}"))).collect()
    }

    #[test]
    fn single_shard_owns_everything() {
        let map = ShardMap::new(nodes(1));
        for name in ["a", "order-17", "", "漢字"] {
            assert_eq!(map.shard_of(name), 0);
            assert_eq!(map.node_of(name), map.nodes()[0]);
        }
    }

    #[test]
    fn mapping_is_deterministic_and_total() {
        let map_a = ShardMap::new(nodes(8));
        let map_b = ShardMap::new(nodes(8));
        for i in 0..500 {
            let name = format!("instance{i}");
            let shard = map_a.shard_of(&name);
            assert!(shard < 8);
            assert_eq!(shard, map_b.shard_of(&name), "{name}");
            assert!(map_a.owns(map_a.node_of(&name), &name));
        }
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let map = ShardMap::new(nodes(8));
        let mut counts = [0usize; 8];
        for i in 0..4000 {
            counts[map.shard_of(&format!("wf-{i}"))] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            // Perfect balance is 500; accept a generous band.
            assert!(
                (300..=700).contains(&count),
                "shard {shard} got {count} of 4000: {counts:?}"
            );
        }
    }

    #[test]
    fn growth_moves_only_to_the_new_shard() {
        // The rendezvous property: appending a shard never moves an
        // instance between two pre-existing shards.
        let eight = nodes(9);
        let map_small = ShardMap::new(eight[..8].to_vec());
        let map_grown = ShardMap::new(eight.clone());
        let mut moved = 0usize;
        for i in 0..2000 {
            let name = format!("wf-{i}");
            let before = map_small.shard_of(&name);
            let after = map_grown.shard_of(&name);
            if before != after {
                assert_eq!(after, 8, "{name} moved between old shards");
                moved += 1;
            }
        }
        assert!(moved > 0, "the new shard should win some instances");
        // Roughly 1/9th of the keyspace moves.
        assert!(moved < 2000 / 4, "moved {moved}: far more than expected");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_map_rejected() {
        let _ = ShardMap::new(Vec::new());
    }
}
