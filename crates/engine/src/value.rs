use std::fmt;

use flowscript_codec::{ByteReader, ByteWriter, CodecError, Decode, Encode};

/// A runtime object reference flowing between tasks.
///
/// The scripting language routes object *references*, never touching
/// member operations (paper §4.1); the engine likewise treats the payload
/// as opaque bytes tagged with the object's class and provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectVal {
    /// The object's class name (checked against the script's dataflow).
    pub class: String,
    /// Opaque payload.
    pub data: Vec<u8>,
    /// Path of the task that produced it (empty for external inputs).
    pub produced_by: String,
}

impl ObjectVal {
    /// Creates an object with raw bytes.
    pub fn new(class: impl Into<String>, data: Vec<u8>) -> Self {
        Self {
            class: class.into(),
            data,
            produced_by: String::new(),
        }
    }

    /// Creates an object whose payload is UTF-8 text (the common case in
    /// examples and tests).
    pub fn text(class: impl Into<String>, text: impl Into<String>) -> Self {
        Self::new(class, text.into().into_bytes())
    }

    /// The payload as text (lossy for non-UTF-8 payloads).
    pub fn as_text(&self) -> String {
        String::from_utf8_lossy(&self.data).into_owned()
    }

    /// Returns a copy stamped with the producing task's path.
    pub fn produced_by(mut self, path: impl Into<String>) -> Self {
        self.produced_by = path.into();
        self
    }
}

impl fmt::Display for ObjectVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.class, self.as_text())
    }
}

impl Encode for ObjectVal {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.class);
        w.put_len_prefixed(&self.data);
        w.put_str(&self.produced_by);
    }
}

impl Decode for ObjectVal {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let class = r.get_str()?.to_owned();
        let data = r.get_len_prefixed()?.to_vec();
        let produced_by = r.get_str()?.to_owned();
        Ok(ObjectVal {
            class,
            data,
            produced_by,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_helpers_roundtrip() {
        let v = ObjectVal::text("Order", "order-42").produced_by("root/source");
        assert_eq!(v.as_text(), "order-42");
        assert_eq!(v.class, "Order");
        assert_eq!(v.produced_by, "root/source");
        assert_eq!(v.to_string(), "Order(order-42)");
    }

    #[test]
    fn codec_roundtrip() {
        let v = ObjectVal::new("Blob", vec![0, 159, 146, 150]).produced_by("a/b");
        let bytes = flowscript_codec::to_bytes(&v);
        assert_eq!(
            flowscript_codec::from_bytes::<ObjectVal>(&bytes).unwrap(),
            v
        );
    }
}
