//! The Workflow Repository Service.
//!
//! Stores workflow scripts (schema, in the paper's terminology) with
//! versioning, validates them on registration, and serves them to the
//! execution service (paper §3, Fig. 4: "The repository service stores
//! workflow scripts and provides operations for initializing, modifying
//! and inspecting scripts"). Scripts are stored in the canonical
//! formatter's normal form.
//!
//! Registration also *compiles* each version once: the validated schema
//! is lowered to a [`Plan`] and cached per version, and `RepoGet`
//! replies carry the encoded plan so coordinators start instances
//! without re-running the front end (compile-once, execute-many).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use flowscript_core::{fmt as script_fmt, schema};
use flowscript_plan::Plan;
use flowscript_sim::{Envelope, NodeId, World};

use crate::error::EngineError;
use crate::msg::EngineMsg;

/// One stored script version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptVersion {
    /// Canonical source text.
    pub source: String,
    /// Root compound task name.
    pub root: String,
    /// The compiled execution plan (lowered once at registration).
    pub plan: Rc<Plan>,
}

/// The repository state.
#[derive(Debug, Default)]
pub struct Repository {
    scripts: BTreeMap<String, Vec<ScriptVersion>>,
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates and stores a script, returning its (1-based) version.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidScript`] when the script fails the front-end
    /// pipeline (parse, templates, sema, compile for the given root).
    pub fn register(&mut self, name: &str, source: &str, root: &str) -> Result<u32, EngineError> {
        // Validate through the complete front end.
        let script = flowscript_core::parse(source)?;
        let expanded = flowscript_core::template::expand(&script)?;
        let checked = flowscript_core::sema::check(&expanded)?;
        let compiled = schema::compile(&checked, root)?;
        // Store in canonical form (repository normal form), and cache
        // the plan lowered from the *canonical* text so it is exactly
        // what a coordinator recompiling the stored source would get.
        let canonical = script_fmt::format_script(&script);
        let plan = match schema::compile_source(&canonical, root) {
            Ok(schema) => Plan::lower(&schema),
            // The canonical form round-trips by construction; fall back
            // to the original schema should the formatter ever regress.
            Err(_) => Plan::lower(&compiled),
        };
        let versions = self.scripts.entry(name.to_string()).or_default();
        versions.push(ScriptVersion {
            source: canonical,
            root: root.to_string(),
            plan: Rc::new(plan),
        });
        Ok(versions.len() as u32)
    }

    /// Fetches a script version (latest when `None`).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownScript`] for missing names or versions.
    pub fn get(&self, name: &str, version: Option<u32>) -> Result<&ScriptVersion, EngineError> {
        let versions = self
            .scripts
            .get(name)
            .ok_or_else(|| EngineError::UnknownScript(name.to_string()))?;
        let index = match version {
            None => versions.len() - 1,
            Some(v) if v >= 1 && (v as usize) <= versions.len() => (v - 1) as usize,
            Some(v) => {
                return Err(EngineError::UnknownScript(format!("{name} v{v}")));
            }
        };
        Ok(&versions[index])
    }

    /// The cached compiled plan of a script version (latest when
    /// `None`) — the per-version plan cache serving coordinators.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownScript`] for missing names or versions.
    pub fn plan(&self, name: &str, version: Option<u32>) -> Result<Rc<Plan>, EngineError> {
        self.get(name, version).map(|stored| stored.plan.clone())
    }

    /// Number of versions stored for `name`.
    pub fn version_count(&self, name: &str) -> u32 {
        self.scripts.get(name).map(|v| v.len() as u32).unwrap_or(0)
    }

    /// Names of all stored scripts.
    pub fn script_names(&self) -> Vec<String> {
        self.scripts.keys().cloned().collect()
    }
}

/// Shared handle to a repository installed on a sim node.
#[derive(Clone, Default)]
pub struct RepoHandle {
    inner: Rc<RefCell<Repository>>,
}

impl RepoHandle {
    /// Creates a handle over an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs the RPC handler on `node`.
    pub fn install(&self, world: &mut World, node: NodeId) {
        let handle = self.clone();
        world.set_handler(node, move |world, envelope| {
            handle.handle(world, envelope);
        });
    }

    /// Direct (non-RPC) access for tests and monitoring.
    pub fn with<R>(&self, f: impl FnOnce(&mut Repository) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }

    fn handle(&self, world: &mut World, envelope: &Envelope) {
        let Ok(msg) = flowscript_codec::from_bytes::<EngineMsg>(&envelope.payload) else {
            return;
        };
        if !envelope.is_request() {
            return;
        }
        let reply = match msg {
            EngineMsg::RepoRegister { name, source, root } => {
                let result = self
                    .inner
                    .borrow_mut()
                    .register(&name, &source, &root)
                    .map_err(|e| e.to_string());
                EngineMsg::RepoReply {
                    result,
                    source: String::new(),
                    root: String::new(),
                    plan: Vec::new(),
                }
            }
            EngineMsg::RepoGet { name, version } => {
                let repository = self.inner.borrow();
                match repository.get(&name, version) {
                    Ok(stored) => EngineMsg::RepoReply {
                        result: Ok(version.unwrap_or_else(|| repository.version_count(&name))),
                        source: stored.source.clone(),
                        root: stored.root.clone(),
                        plan: flowscript_codec::to_bytes(stored.plan.as_ref()),
                    },
                    Err(err) => EngineMsg::RepoReply {
                        result: Err(err.to_string()),
                        source: String::new(),
                        root: String::new(),
                        plan: Vec::new(),
                    },
                }
            }
            _ => return,
        };
        world.rpc_reply(envelope, flowscript_codec::to_bytes(&reply));
    }
}

impl std::fmt::Debug for RepoHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RepoHandle({} scripts)",
            self.inner.borrow().scripts.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowscript_core::samples;

    #[test]
    fn register_validates_and_versions() {
        let mut repo = Repository::new();
        let v1 = repo
            .register(
                "order",
                samples::ORDER_PROCESSING,
                "processOrderApplication",
            )
            .unwrap();
        assert_eq!(v1, 1);
        let v2 = repo
            .register(
                "order",
                samples::ORDER_PROCESSING,
                "processOrderApplication",
            )
            .unwrap();
        assert_eq!(v2, 2);
        assert_eq!(repo.version_count("order"), 2);
        assert_eq!(repo.script_names(), vec!["order".to_string()]);
    }

    #[test]
    fn register_rejects_invalid_scripts() {
        let mut repo = Repository::new();
        let err = repo.register("bad", "class ;;", "x").unwrap_err();
        assert!(matches!(err, EngineError::InvalidScript(_)));
        // Valid script, wrong root.
        let err = repo
            .register("order", samples::ORDER_PROCESSING, "ghost")
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidScript(_)));
    }

    #[test]
    fn get_latest_and_specific_versions() {
        let mut repo = Repository::new();
        repo.register("s", samples::QUICKSTART, "pipeline").unwrap();
        repo.register("s", samples::FIG1_DIAMOND, "diamond")
            .unwrap();
        assert_eq!(repo.get("s", None).unwrap().root, "diamond");
        assert_eq!(repo.get("s", Some(1)).unwrap().root, "pipeline");
        assert!(repo.get("s", Some(3)).is_err());
        assert!(repo.get("missing", None).is_err());
    }

    #[test]
    fn plans_are_compiled_once_and_cached_per_version() {
        let mut repo = Repository::new();
        repo.register("s", samples::QUICKSTART, "pipeline").unwrap();
        repo.register("s", samples::ORDER_PROCESSING, "processOrderApplication")
            .unwrap();
        let v1 = repo.plan("s", Some(1)).unwrap();
        let v2 = repo.plan("s", None).unwrap();
        assert_eq!(repo.get("s", Some(1)).unwrap().plan.as_ref(), v1.as_ref());
        assert_eq!(v1.str(v1.root().name), "pipeline");
        assert_eq!(v2.str(v2.root().name), "processOrderApplication");
        // The cached plan equals a fresh lowering of the stored source.
        let stored = repo.get("s", None).unwrap();
        let fresh = Plan::lower(&schema::compile_source(&stored.source, &stored.root).unwrap());
        assert_eq!(fresh, *v2);
        assert_eq!(fresh.fingerprint, v2.fingerprint);
        assert!(repo.plan("s", Some(3)).is_err());
    }

    #[test]
    fn stored_source_is_canonical() {
        let mut repo = Repository::new();
        repo.register("q", samples::QUICKSTART, "pipeline").unwrap();
        let stored = repo.get("q", None).unwrap();
        // Canonical form re-parses and re-formats to itself.
        let script = flowscript_core::parse(&stored.source).unwrap();
        assert_eq!(script_fmt::format_script(&script), stored.source);
    }
}
